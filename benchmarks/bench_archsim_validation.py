"""Section 6.2: the packet-based architecture simulator versus theory.

The simulator validates the CB block design under varying external
bandwidth: measured cycles must track ``max(compute, IO/BW)`` across the
Eq. 2 crossover, and the streamed result must equal A @ B exactly.
"""

from .conftest import run_and_emit


def test_archsim_validation(benchmark):
    report = run_and_emit(benchmark, "archsim")
    errors = report.data["errors"]

    # Measured time within 15% of the closed form at every bandwidth.
    for bw, err in errors.items():
        assert abs(err) < 0.15, (bw, err)
