"""Ablation: the Equation 3 internal-bandwidth floor, measured.

Section 3.3: internal bandwidth must be at least ``R*k + 2*p*k``
tiles/cycle — CAKE trades external bandwidth for internal bandwidth, so a
machine that cannot grow its LLC-to-core port with core count stops
scaling (the mechanism the paper uses to explain the Intel and ARM
deviations in Figures 10 and 11). Here the packet simulator's local
memory port is throttled through the floor: below it, throughput tracks
the port rate; above it, compute binds and extra internal bandwidth buys
nothing.
"""

import numpy as np

from repro.archsim import CakeSystem
from repro.bench.report import ExperimentReport

from .conftest import RESULTS_DIR


def _internal_bw_report() -> ExperimentReport:
    rep = ExperimentReport(
        "ablation-internal-bw",
        "Measured throughput vs internal bandwidth (Eq. 3, Section 3.3)",
    )
    rows, cols = 4, 4
    # Steady-state port demand: cols B-tiles + 2*rows partial transfers
    # per cycle — the Eq. 3 floor for this grid.
    floor = cols + 2 * rows
    rng = np.random.default_rng(8)
    size = 24
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))

    out_rows = []
    data = {}
    for frac in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0):
        int_bw = floor * frac
        system = CakeSystem(
            rows, cols, ext_bw_tiles_per_cycle=64.0,
            int_bw_tiles_per_cycle=int_bw,
        )
        report = system.run_matmul(a, b)
        np.testing.assert_allclose(report.c, a @ b, rtol=1e-10)
        throughput = size**3 / report.total_cycles
        data[frac] = {
            "throughput": throughput,
            "grid_utilisation": report.grid_utilisation,
        }
        out_rows.append(
            [
                f"{frac:.2f}x floor ({int_bw:.0f} tiles/cyc)",
                f"{report.total_cycles:.0f}",
                f"{throughput:.2f}",
                f"{report.grid_utilisation:.0%}",
            ]
        )
    rep.add_table(
        ["internal bandwidth", "cycles", "MACs/cycle", "grid busy"], out_rows
    )
    rep.add_line(f"Eq. 3 floor for a {rows}x{cols} grid: {floor} tiles/cycle")
    rep.data["points"] = data
    rep.data["floor"] = floor
    return rep


def test_internal_bandwidth_floor(benchmark):
    report = benchmark.pedantic(_internal_bw_report, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation-internal-bw.txt").write_text(report.text())
    print()
    print(report.text())
    pts = report.data["points"]

    # Starved region: throughput roughly proportional to the port rate.
    assert pts[0.5]["throughput"] > 1.7 * pts[0.25]["throughput"]
    # Past the floor (with queueing headroom): saturation.
    assert pts[4.0]["throughput"] < 1.15 * pts[1.5]["throughput"]
    # And a saturated grid is compute-busy, a starved one is not.
    assert pts[4.0]["grid_utilisation"] > 0.9
    assert pts[0.25]["grid_utilisation"] < 0.35
