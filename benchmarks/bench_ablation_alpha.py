"""Ablation: the alpha-from-bandwidth rule of Section 3.2.

On a DRAM-starved machine, throughput first rises with alpha (wider
blocks amortise input IO) and then falls (the LRU rule shrinks mc);
the analytically selected alpha must land near the sweep's optimum.
"""

from .conftest import run_and_emit


def test_ablation_alpha(benchmark):
    report = run_and_emit(benchmark, "ablation-alpha")
    gflops = report.data["gflops"]
    auto = report.data["auto"]

    best = max(gflops.values())
    worst = min(gflops.values())
    # Alpha genuinely matters on a starved machine.
    assert best > worst * 1.1
    # The analytic choice achieves ~the best swept throughput without
    # any search (the paper's "no design search" claim).
    assert auto.gflops >= best * 0.9
    # And alpha=1 (the plentiful-bandwidth default) is NOT optimal here.
    assert gflops[1.0] < best * 0.98
