"""Compute-backend benchmark: the schedule/compute seam measured.

Runs the CAKE engine (plus one GOTO row per backend, which shares the
strip-group executor) through every *available* registered backend
(:mod:`repro.gemm.backends`) on two shapes: a cube and the skewed
Figure 8-style shape (short M, deep K) where whole-group panel products
pay off most. The per-strip ``numpy`` oracle is the baseline.

Every measured run is asserted **exact** — at every scale, on every
host:

* deterministic backends must be bit-identical to the oracle
  (``np.array_equal`` on C);
* non-deterministic backends must agree within their declared
  ABFT-shaped band (``8 * eps * (k + 2)`` scaled by ``|A| @ |B|``);
* traffic counters must be equal for all backends (the schedule is
  backend-invariant by construction).

The wall-clock floor is the acceptance criterion of the backend
subsystem: at full scale, ``blas-group`` must beat the per-strip numpy
path on the skewed shape by ``FULL_SCALE_FLOOR``; at reduced scale the
CI smoke sets ``CAKE_BACKEND_BENCH_FLOOR`` explicitly.

A verified self-healing row closes the loop on the headline ABFT
scenario: ``blas-group`` with an injected strip corruption must heal
back to the bit-identical clean blas-group product.

Results land in ``benchmarks/results/BENCH_backends.json``
(cake-bench/v1), one row per (shape, engine, backend) plus the verified
row, each with wall seconds and the speedup over the oracle baseline.

Environment knobs:

``CAKE_BACKEND_BENCH_N``
    Cube edge (default 1536; the skewed shape is derived as
    ``N/4 x N x 2N``). Below 1536 the full-scale floor is off.
``CAKE_BACKEND_BENCH_FLOOR``
    Explicit blas-group-over-numpy floor on the skewed shape (used by
    the CI smoke step).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.gemm.backends import available_backends, backend_spec
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.verify import VerifyConfig
from repro.machines import intel_i9_10900k
from repro.runtime import write_bench_json
from repro.runtime.faults import NumericFaultPlan, NumericFaultRule

from .conftest import RESULTS_DIR

FULL_N = 1536
N = int(os.environ.get("CAKE_BACKEND_BENCH_N", str(FULL_N)))

#: Acceptance floor: on the full-scale skewed shape, the whole-group
#: BLAS backend must beat the per-strip numpy oracle.
FULL_SCALE_FLOOR = 1.2

REPEATS = 2
_BAND_SAFETY = 8.0


def _timed_multiply(engine, a, b):
    best, run = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = engine.multiply(a, b)
        best = min(best, time.perf_counter() - start)
    return run, best


def _assert_exact(label, name, run, oracle, band):
    spec = backend_spec(name)
    if spec.capabilities.deterministic:
        assert np.array_equal(run.c, oracle.c), (
            f"{label}: deterministic backend {name!r} drifted from the oracle"
        )
    else:
        worst = float(np.abs(run.c - oracle.c).max())
        assert worst <= band, (
            f"{label}: backend {name!r} error {worst:.3e} exceeds its "
            f"agreement band {band:.3e}"
        )
    assert run.counters == oracle.counters, (
        f"{label}: backend {name!r} changed the traffic accounting"
    )


def _bench_shape(machine, label, m, n, k, rows):
    rng = np.random.default_rng(20217 + m)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    # ABFT-shaped elementwise agreement bound for non-deterministic
    # backends, collapsed to its worst cell.
    band = float(
        _BAND_SAFETY
        * np.finfo(a.dtype).eps
        * (k + 2)
        * (np.abs(a) @ np.abs(b)).max()
    )

    oracle_engine = CakeGemm(machine, backend="numpy")
    oracle, oracle_s = _timed_multiply(oracle_engine, a, b)
    goto_oracle, goto_oracle_s = _timed_multiply(
        GotoGemm(machine, backend="numpy"), a, b
    )

    speedups: dict[str, float] = {}
    for name in available_backends():
        run, seconds = (
            (oracle, oracle_s)
            if name == "numpy"
            else _timed_multiply(CakeGemm(machine, backend=name), a, b)
        )
        _assert_exact(label, name, run, oracle, band)
        speedups[name] = oracle_s / seconds
        rows.append(
            {
                "shape": label, "engine": "cake", "backend": name,
                "m": m, "n": n, "k": k,
                "seconds": seconds, "speedup": speedups[name],
                "deterministic": backend_spec(name).capabilities.deterministic,
                "phases": dict(run.phase_seconds),
            }
        )

        g_run, g_seconds = (
            (goto_oracle, goto_oracle_s)
            if name == "numpy"
            else _timed_multiply(GotoGemm(machine, backend=name), a, b)
        )
        _assert_exact(f"{label}/goto", name, g_run, goto_oracle, band)
        rows.append(
            {
                "shape": label, "engine": "goto", "backend": name,
                "m": m, "n": n, "k": k,
                "seconds": g_seconds, "speedup": goto_oracle_s / g_seconds,
                "deterministic": backend_spec(name).capabilities.deterministic,
                "phases": dict(g_run.phase_seconds),
            }
        )
    return speedups


def _bench_verified_healing(machine, rows):
    """The headline ABFT row: non-oracle backend, injected fault, healed."""
    n = max(N // 2, 64)
    rng = np.random.default_rng(31415)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    clean, clean_s = _timed_multiply(CakeGemm(machine, backend="blas-group"), a, b)
    plan = NumericFaultPlan(
        rules=(NumericFaultRule(block=0, strip=0, kind="scale", factor=3.0),)
    )
    healed_engine = CakeGemm(
        machine, backend="blas-group", verify=VerifyConfig(inject=plan)
    )
    healed, healed_s = _timed_multiply(healed_engine, a, b)
    assert np.array_equal(healed.c, clean.c), (
        "injected corruption on blas-group was not healed bit-exactly"
    )
    assert healed.verify.mismatches >= 1
    assert healed.verify.retry_recoveries + healed.verify.oracle_recoveries >= 1
    rows.append(
        {
            "shape": "cube-verified", "engine": "cake", "backend": "blas-group",
            "m": n, "n": n, "k": n,
            "seconds": healed_s, "speedup": clean_s / healed_s,
            "deterministic": False,
            "verify": healed.verify.as_dict(),
        }
    )


def test_backends(benchmark):
    machine = intel_i9_10900k()
    rows: list[dict] = []
    speedups: dict[str, dict[str, float]] = {}

    def run():
        rows.clear()
        speedups["cube"] = _bench_shape(machine, "cube", N, N, N, rows)
        speedups["skewed"] = _bench_shape(
            machine, "skewed", max(N // 4, 1), N, 2 * N, rows
        )
        _bench_verified_healing(machine, rows)
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    scale = "full" if N >= FULL_N else "quick"
    env_floor = os.environ.get("CAKE_BACKEND_BENCH_FLOOR")
    floor = float(env_floor) if env_floor else (
        FULL_SCALE_FLOOR if scale == "full" else None
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "backends",
        rows,
        wall_seconds=wall,
        scale=scale,
        extra={
            "backends": list(available_backends()),
            "speedup_floor": floor,
            "floor_shape": "skewed",
        },
    )
    for row in rows:
        print(
            f"\n{row['shape']:>13} {row['engine']}/{row['backend']:<11} "
            f"{row['seconds']:.3f}s ({row['speedup']:.2f}x vs oracle)"
        )

    if floor is not None:
        got = speedups["skewed"]["blas-group"]
        assert got >= floor, (
            f"skewed shape: blas-group at {got:.2f}x over the per-strip "
            f"numpy oracle; the floor is {floor:.1f}x"
        )
