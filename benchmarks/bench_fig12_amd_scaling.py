"""Figure 12: AMD Ryzen 9 5950X, 23040x23040 MM — the unconstrained case.

Paper claims: with ample internal bandwidth (~50 GB/s per core, linear)
and DRAM headroom, both CAKE and OpenBLAS scale with cores and reach
similar peak throughput — but OpenBLAS burns several times more DRAM
bandwidth to get there.
"""

from .conftest import run_and_emit


def test_fig12_amd_scaling(benchmark):
    report = run_and_emit(benchmark, "fig12")
    points = {pt.cores: pt for pt in report.data["points"]}
    measured = [pt for pt in report.data["points"] if not pt.extrapolated]

    # Both engines scale roughly linearly through 16 cores.
    assert points[16].cake.gflops > points[4].cake.gflops * 3.0
    assert points[16].goto.gflops > points[4].goto.gflops * 3.0
    # ... to similar peaks (parity within 15%).
    ratio = points[16].cake.gflops / points[16].goto.gflops
    assert 0.85 < ratio < 1.2

    # OpenBLAS uses several times CAKE's DRAM bandwidth to do it.
    assert points[16].goto.dram_gb_per_s > 4.0 * points[16].cake.dram_gb_per_s
    # CAKE's DRAM usage stays in a narrow band past ~9 cores (paper
    # text: "stays constant past 9 cores"; our run-average includes the
    # packing burst, whose share grows with throughput, so allow 1.7x).
    cake_late = [pt.cake.dram_gb_per_s for pt in measured if pt.cores >= 10]
    assert max(cake_late) / min(cake_late) < 1.7

    # Internal bandwidth grows ~linearly (Figure 12c) — never the binder.
    assert points[16].internal_bw_gb_per_s > 700
    for pt in measured:
        assert pt.cake.bound_blocks.get("internal", 0) <= pt.cake.bound_blocks.get(
            "compute", 0
        )

    # Extrapolated to 32 cores both keep scaling (DRAM still unsaturated).
    assert points[32].cake.gflops > points[16].cake.gflops * 1.5
    assert points[32].goto.gflops > points[16].goto.gflops * 1.4
