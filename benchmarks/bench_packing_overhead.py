"""Section 5.2.1: packing overhead, negligible for square, large for skewed."""

from .conftest import run_and_emit


def test_packing_overhead(benchmark):
    report = run_and_emit(benchmark, "packing")
    frac = report.data["fractions"]

    # Big square problems amortise packing to a few percent.
    assert frac["square large"] < 0.06
    # Shapes skewed in M or N pay a significantly larger packing
    # fraction (the paper's caveat). Skewed K is excluded: there the
    # *packed operands themselves* shrink with K, so packing stays cheap
    # while the overall problem is still memory-unfriendly.
    for label in ("skewed M", "skewed N"):
        assert frac[label] > 3 * frac["square large"], label
    # At least one skewed shape spends >10% of its runtime packing.
    assert max(frac["skewed M"], frac["skewed N"]) > 0.10
    # The DNN conv layers (intro workload) land in the skewed regime too.
    conv_fracs = [v for k, v in frac.items() if k.startswith("conv")]
    assert max(conv_fracs) > 0.10
