"""Parallel experiment runtime: correctness and wall-clock contrast.

Runs a Figure 8-style shape sweep (every CAKE-vs-GOTO cell of one panel)
through the experiment runtime twice — serial and process-parallel —
and asserts the two produce byte-identical grids. Wall-clock for both
modes lands in ``benchmarks/results/BENCH_runtime_parallel.json``; on a
multi-core box the parallel sweep must be measurably faster (the
assertion is skipped on single-CPU machines, where a process pool can
only add overhead).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.sweep import relative_throughput_grid
from repro.machines import intel_i9_10900k
from repro.runtime import ExperimentRuntime, ExperimentTask, write_bench_json

from .conftest import RESULTS_DIR

#: Full Figure 8 panel axes — 64 cells, 128 engine predictions: enough
#: work for the pool to amortise its startup on a multi-core box.
GRID = tuple(range(1000, 8001, 1000))

PARALLEL_WORKERS = min(4, os.cpu_count() or 1)


def _sweep_seconds(workers: int) -> tuple[float, object, ExperimentRuntime]:
    runtime = ExperimentRuntime(workers=workers)
    start = time.perf_counter()
    panel = relative_throughput_grid(
        intel_i9_10900k(),
        aspect=1.0,
        m_values=GRID,
        k_values=GRID,
        runtime=runtime,
    )
    return time.perf_counter() - start, panel, runtime


def test_runtime_parallel_sweep(benchmark):
    serial_s, serial_panel, serial_rt = _sweep_seconds(workers=1)
    parallel_s, parallel_panel, parallel_rt = benchmark.pedantic(
        _sweep_seconds,
        kwargs={"workers": PARALLEL_WORKERS},
        rounds=1,
        iterations=1,
    )

    # Parallel execution is an implementation detail: same grid, exactly.
    assert np.array_equal(serial_panel.ratio, parallel_panel.ratio)
    assert serial_rt.last_stats.tasks == parallel_rt.last_stats.tasks

    speedup = serial_s / parallel_s
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "runtime_parallel",
        [
            {
                "mode": "serial",
                "workers": 1,
                "tasks": serial_rt.last_stats.tasks,
                "wall_seconds": serial_s,
            },
            {
                "mode": "parallel",
                "workers": PARALLEL_WORKERS,
                "tasks": parallel_rt.last_stats.tasks,
                "wall_seconds": parallel_s,
            },
        ],
        wall_seconds=serial_s + parallel_s,
        extra={"speedup": speedup, "cpus": os.cpu_count()},
    )
    print(
        f"\nserial {serial_s:.2f}s, parallel({PARALLEL_WORKERS}) "
        f"{parallel_s:.2f}s, speedup {speedup:.2f}x"
    )

    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-CPU machine: parallel wall-clock win impossible")
    assert parallel_s < serial_s, (
        f"parallel sweep ({parallel_s:.2f}s) not faster than serial "
        f"({serial_s:.2f}s) on {os.cpu_count()} CPUs"
    )


def test_runtime_cache_short_circuits(benchmark, tmp_path):
    """A warm cache answers the whole grid without executing anything."""
    tasks = [
        ExperimentTask(
            kind="predict", engine=engine, machine="Intel i9-10900K",
            m=m, n=m, k=2000,
        )
        for m in GRID
        for engine in ("cake", "goto")
    ]
    warm = ExperimentRuntime(cache_dir=tmp_path)
    first = warm.run(tasks)
    assert warm.last_stats.executed == len(tasks)

    second = benchmark.pedantic(warm.run, args=(tasks,), rounds=1, iterations=1)
    assert second == first
    assert warm.last_stats.cache_hits == len(tasks)
    assert warm.last_stats.executed == 0
