"""Plan-autotuner benchmark: tuned plans must actually be faster.

Runs the :class:`~repro.tune.PlanTuner` pipeline end to end on two
shapes — a cube and the skewed Figure 8-style shape (short M, deep K)
where coarser host granularity pays off most — against a throwaway plan
cache, then *re-executes* the winning override head-to-head with the
analytic plan:

* the tuned product is asserted **bit-identical** to the analytic
  engine's C (`np.array_equal`) on every shape — the tuner's contract
  is speed without a single differing bit;
* the second resolution of every key must be a pure cache hit
  (``source == "cache"``), i.e. the search is paid once and amortized;
* at full scale, the best shape's re-measured tuned-over-analytic
  speedup must clear ``FULL_SCALE_FLOOR`` (the subsystem's acceptance
  criterion); CI relaxes it via ``CAKE_AUTOTUNE_BENCH_FLOOR=1.0``.

Results land in ``benchmarks/results/BENCH_autotune.json``
(cake-bench/v1): one row per shape with the re-measured analytic and
tuned seconds, the winning override, the cold-tune cost, and the
cache-hit cost it amortizes down to.

Environment knobs:

``CAKE_AUTOTUNE_BENCH_N``
    Cube edge (default 512; the skewed shape is derived as
    ``N/4 x N x 2N``). Below 512 the full-scale floor is off.
``CAKE_AUTOTUNE_BENCH_FLOOR``
    Explicit tuned-over-analytic floor on the best shape (used by the
    CI smoke step, which sets 1.0: no regression, floor not enforced).
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.gemm.cake import CakeGemm
from repro.machines import intel_i9_10900k
from repro.runtime import write_bench_json
from repro.tune import PlanTuner, TuneConfig, TuneKey

from .conftest import RESULTS_DIR

FULL_N = 512
N = int(os.environ.get("CAKE_AUTOTUNE_BENCH_N", str(FULL_N)))

#: Acceptance floor: at full scale the best shape's tuned execution must
#: beat the analytic plan by at least this re-measured factor.
FULL_SCALE_FLOOR = 1.05

REPEATS = 3


def _timed_multiply(engine, a, b):
    best, run = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = engine.multiply(a, b)
        best = min(best, time.perf_counter() - start)
    return run, best


def _bench_shape(machine, tuner, label, m, n, k, rows):
    key = TuneKey(
        engine="cake", m=m, n=n, k=k, dtype="<f4",
        machine=machine.name, cores=None, backend="numpy", processes=1,
    )
    start = time.perf_counter()
    cold = tuner.tune(key)
    cold_seconds = time.perf_counter() - start
    assert cold.source == "search", f"{label}: first tune was not a search"

    start = time.perf_counter()
    hit = tuner.tune(key)
    hit_seconds = time.perf_counter() - start
    assert hit.source == "cache", (
        f"{label}: second resolution re-searched instead of hitting the cache"
    )
    assert hit.override == cold.override, (
        f"{label}: cached winner differs from the searched one"
    )

    rng = np.random.default_rng(20219 + m)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)

    analytic, analytic_s = _timed_multiply(
        CakeGemm(machine, tuned=False), a, b
    )
    tuned, tuned_s = _timed_multiply(
        CakeGemm(machine, plan=cold.override, tuned=False), a, b
    )
    assert np.array_equal(tuned.c, analytic.c), (
        f"{label}: tuned product drifted from the analytic plan"
    )
    speedup = analytic_s / tuned_s
    rows.append(
        {
            "shape": label, "engine": "cake",
            "m": m, "n": n, "k": k,
            "analytic_seconds": analytic_s,
            "tuned_seconds": tuned_s,
            "speedup": speedup,
            "override": (
                None if cold.override is None else cold.override.as_dict()
            ),
            "cold_tune_seconds": cold_seconds,
            "cache_hit_seconds": hit_seconds,
            "amortization": cold_seconds / hit_seconds if hit_seconds else None,
        }
    )
    return speedup


def test_autotune(benchmark):
    machine = intel_i9_10900k()
    rows: list[dict] = []
    speedups: dict[str, float] = {}

    def run():
        rows.clear()
        speedups.clear()
        with tempfile.TemporaryDirectory(prefix="cake-tune-bench-") as root:
            tuner = PlanTuner(
                machine, TuneConfig(cache_root=root, repeats=REPEATS)
            )
            speedups["cube"] = _bench_shape(
                machine, tuner, "cube", N, N, N, rows
            )
            speedups["skewed"] = _bench_shape(
                machine, tuner, "skewed", max(N // 4, 1), N, 2 * N, rows
            )
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    scale = "full" if N >= FULL_N else "quick"
    env_floor = os.environ.get("CAKE_AUTOTUNE_BENCH_FLOOR")
    floor = float(env_floor) if env_floor else (
        FULL_SCALE_FLOOR if scale == "full" else None
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "autotune",
        rows,
        wall_seconds=wall,
        scale=scale,
        extra={
            "speedup_floor": floor,
            "floor_shape": "best",
        },
    )
    for row in rows:
        print(
            f"\n{row['shape']:>7} {row['m']}x{row['n']}x{row['k']:<6} "
            f"analytic {row['analytic_seconds']:.3f}s -> tuned "
            f"{row['tuned_seconds']:.3f}s ({row['speedup']:.2f}x), "
            f"cold tune {row['cold_tune_seconds']:.2f}s, "
            f"cache hit {row['cache_hit_seconds'] * 1e3:.2f}ms"
        )

    if floor is not None:
        best = max(speedups.values())
        assert best >= floor, (
            f"best tuned speedup {best:.2f}x is under the {floor:.2f}x floor "
            f"(per-shape: { {s: round(v, 2) for s, v in speedups.items()} })"
        )
