"""Table 2: the evaluated CPU specs, regenerated from the presets."""

from .conftest import run_and_emit


def test_table2_machines(benchmark):
    report = run_and_emit(benchmark, "table2")
    rows = report.data["machines"]
    assert len(rows) == 3
    names = {r[0] for r in rows}
    assert names == {"Intel i9-10900K", "AMD Ryzen 9 5950X", "ARM v8 Cortex-A53"}
