"""Figure 7b: cache and DRAM access counts on the ARM Cortex-A53.

Paper claims: CAKE shifts memory demand to internal levels; ARMPL
performs ~2.5x more DRAM requests.
"""

from .conftest import run_and_emit


def test_fig7b_access_profile(benchmark):
    report = run_and_emit(benchmark, "fig7b")
    cake = report.data["cake"]
    goto = report.data["goto"]

    # The paper's ~2.5x DRAM-request multiplier (we accept >= 2x).
    assert report.data["dram_ratio"] >= 2.0
    # CAKE serves more requests from the shared L2 (the ARM LLC).
    assert cake.l2_hits > goto.l2_hits
    # And fewer of CAKE's requests fall through to DRAM overall.
    assert cake.dram_accesses < goto.dram_accesses
