"""Figure 8: relative throughput of CAKE vs MKL(GOTO) over matrix shapes.

Paper claims: as any dimension shrinks, the MM becomes memory-bound and
CAKE's advantage grows; the darkest (>=2x) contours sit at the smallest
sizes, and large near-square problems approach parity.
"""

from .conftest import run_and_emit


def test_fig8_shape_regions(benchmark):
    report = run_and_emit(benchmark, "fig8")
    panels = report.data["panels"]

    square = panels[1.0]
    # Small matrices: a clear CAKE win (paper: 1.25-2x contour region).
    assert square.ratio_at(1000, 1000) >= 1.3
    # The advantage at the smallest size exceeds the largest-size ratio.
    assert square.ratio_at(1000, 1000) > square.ratio_at(8000, 8000)
    # Large sizes approach parity (within the paper's 1.0-1.25 band).
    assert 0.9 <= square.ratio_at(8000, 8000) <= 1.3

    # Every panel keeps a region where CAKE wins by >= 1.25x, and CAKE
    # wins outright over most of every panel's grid.
    for aspect, panel in panels.items():
        assert panel.fraction_above(1.25) > 0.0, f"aspect {aspect}"
        assert panel.fraction_above(1.0) > 0.5, f"aspect {aspect}"
