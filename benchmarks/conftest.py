"""Shared helpers for the benchmark harness.

Each bench runs one experiment generator (the exact code behind a paper
table/figure) through the parallel experiment runtime, times it with
pytest-benchmark, writes the paper-style rows to
``benchmarks/results/<id>.txt`` plus machine-readable rows to
``benchmarks/results/BENCH_<id>.json``, prints them, and asserts the
figure's qualitative claims (who wins, by what factor, where crossovers
fall).

Environment knobs:

``CAKE_BENCH_WORKERS``
    Worker processes for grid fan-out (default 1: serial, so CI timing
    is not at the mercy of the box's core count).
``CAKE_BENCH_CACHE``
    Directory for the on-disk result cache (default: no memoization, so
    every bench run measures real work).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.bench import ExperimentReport, run_experiment
from repro.runtime import ExperimentRuntime, rows_from_report, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"


def _runtime_from_env() -> ExperimentRuntime:
    workers = int(os.environ.get("CAKE_BENCH_WORKERS", "1"))
    cache_dir = os.environ.get("CAKE_BENCH_CACHE") or None
    return ExperimentRuntime(workers=workers, cache_dir=cache_dir)


def run_and_emit(benchmark, experiment_id: str, scale: str = "full") -> ExperimentReport:
    """Benchmark one experiment generator and persist its report + rows."""
    runtime = _runtime_from_env()
    start = time.perf_counter()
    report = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, scale),
        kwargs={"runtime": runtime},
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(report.text())
    rows = runtime.drain_rows()
    write_bench_json(
        RESULTS_DIR,
        experiment_id,
        rows or rows_from_report(report),
        wall_seconds=wall,
        scale=scale,
        runtime_stats=runtime.last_stats if rows else None,
    )
    print()
    print(report.text())
    return report
