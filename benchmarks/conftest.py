"""Shared helpers for the benchmark harness.

Each bench runs one experiment generator (the exact code behind a paper
table/figure), times it with pytest-benchmark, writes the paper-style
rows to ``benchmarks/results/<id>.txt``, prints them, and asserts the
figure's qualitative claims (who wins, by what factor, where crossovers
fall).
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import ExperimentReport, run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def run_and_emit(benchmark, experiment_id: str, scale: str = "full") -> ExperimentReport:
    """Benchmark one experiment generator and persist its report."""
    report = benchmark.pedantic(
        run_experiment, args=(experiment_id, scale), rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(report.text())
    print()
    print(report.text())
    return report
