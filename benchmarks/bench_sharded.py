"""Process-sharded execution benchmark: CAKE-on-CAKE measured.

Runs the CAKE engine (plus GOTO rows, which share the shard runner)
with the M x N grid of CB blocks partitioned across worker processes
(:mod:`repro.gemm.sharded`): packed operands live in shared-memory
segments the workers attach zero-copy, each shard executes the
threaded strip-group executor on its disjoint C panel, and the parent
reassembles nothing — C is written in place.

Two shapes: a cube and the skewed Figure 8-style shape (short M, deep
K) where the near-square shard grid departs most from the naive
row-split. Process counts 1, 2 and 4 per shape.

Every measured run is asserted **exact** — at every scale, on every
host:

* the sharded product must be bit-identical to the 1-process run
  (``np.array_equal`` on C) for every process count;
* the schedule-derived traffic counters must be equal once the
  IPC term is masked (``TrafficCounters.without_ipc``) — sharding may
  add inter-process traffic but must not change the schedule;
* the measured inter-process bytes must sit within
  ``IPC_SLACK_FACTOR`` of the memory-independent communication lower
  bound ``2*K*sqrt(M*N*P) + M*N`` elements, and never below it.

The wall-clock floor is the acceptance criterion of the shard
subsystem: at full scale on a host with at least 2 physical cores,
2 processes must beat the 1-process threaded path on the skewed shape
by ``FULL_SCALE_FLOOR``. Single-core hosts (and reduced scales) record
the speedup without enforcing it; CI sets ``CAKE_SHARDED_BENCH_FLOOR``
explicitly on its multi-core runners.

Results land in ``benchmarks/results/BENCH_sharded.json``
(cake-bench/v1), one row per (shape, engine, processes), each with the
shard grid, wall seconds, speedup over the 1-process baseline, and the
measured-vs-bound IPC traffic.

Environment knobs:

``CAKE_SHARDED_BENCH_N``
    Cube edge (default 1024; the skewed shape is derived as
    ``N/4 x N x 2N``). Below 1024 the full-scale floor is off.
``CAKE_SHARDED_BENCH_FLOOR``
    Explicit 2-process-over-1-process floor on the skewed shape (used
    by the CI smoke step); enforced regardless of scale but still
    gated on the host core count.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.sharded import IPC_SLACK_FACTOR
from repro.machines import intel_i9_10900k
from repro.runtime import write_bench_json

from .conftest import RESULTS_DIR

FULL_N = 1024
N = int(os.environ.get("CAKE_SHARDED_BENCH_N", str(FULL_N)))

#: Acceptance floor: on the full-scale skewed shape, 2 shard processes
#: must beat the 1-process threaded path (needs >= 2 host cores).
FULL_SCALE_FLOOR = 1.2

#: Shard-speedup floors only make sense when the host can actually run
#: the shards concurrently.
MIN_CORES_FOR_FLOOR = 2

PROCESS_COUNTS = (1, 2, 4)
REPEATS = 2


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _timed_multiply(engine, a, b):
    best, run = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = engine.multiply(a, b)
        best = min(best, time.perf_counter() - start)
    return run, best


def _engine(kind, processes):
    # cores=1 keeps CB blocks small enough that the block grid has
    # several rows/columns to shard; multi-core plans grow blocks until
    # one covers these problem sizes whole.
    cls = CakeGemm if kind == "cake" else GotoGemm
    return cls(intel_i9_10900k(), cores=1, processes=processes)


def _bench_shape(label, m, n, k, rows):
    rng = np.random.default_rng(20219 + m)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)

    speedups: dict[str, dict[int, float]] = {}
    for kind in ("cake", "goto"):
        base, base_s = _timed_multiply(_engine(kind, 1), a, b)
        assert base.shards is None and base.processes == 1
        speedups[kind] = {1: 1.0}
        rows.append(
            {
                "shape": label, "engine": kind, "processes": 1,
                "m": m, "n": n, "k": k, "grid": "1x1",
                "seconds": base_s, "speedup": 1.0,
                "ipc_bytes": 0, "ipc_lower_bound_bytes": 0.0,
                "phases": dict(base.phase_seconds),
            }
        )
        for processes in PROCESS_COUNTS[1:]:
            run, seconds = _timed_multiply(_engine(kind, processes), a, b)
            assert np.array_equal(run.c, base.c), (
                f"{label}/{kind}: P={processes} product drifted from the "
                "1-process run"
            )
            assert (
                run.counters.without_ipc() == base.counters.without_ipc()
            ), (
                f"{label}/{kind}: P={processes} changed the schedule-derived "
                "traffic accounting"
            )
            report = run.shards
            assert report is not None
            bound = report.ipc_lower_bound_bytes
            assert bound <= report.ipc_bytes <= IPC_SLACK_FACTOR * bound, (
                f"{label}/{kind}: P={processes} IPC traffic "
                f"{report.ipc_bytes}B outside [1, {IPC_SLACK_FACTOR}]x of "
                f"the lower bound {bound:.0f}B"
            )
            speedups[kind][processes] = base_s / seconds
            rows.append(
                {
                    "shape": label, "engine": kind, "processes": processes,
                    "m": m, "n": n, "k": k,
                    "grid": f"{report.rows}x{report.cols}",
                    "seconds": seconds,
                    "speedup": speedups[kind][processes],
                    "ipc_bytes": report.ipc_bytes,
                    "ipc_lower_bound_bytes": bound,
                    "ipc_slack": report.slack,
                    "pool_rebuilds": report.pool_rebuilds,
                    "phases": dict(run.phase_seconds),
                }
            )
    return speedups


def test_sharded(benchmark):
    rows: list[dict] = []
    speedups: dict[str, dict[str, dict[int, float]]] = {}

    def run():
        rows.clear()
        speedups["cube"] = _bench_shape("cube", N, N, N, rows)
        speedups["skewed"] = _bench_shape(
            "skewed", max(N // 4, 1), N, 2 * N, rows
        )
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    cores = _host_cores()
    scale = "full" if N >= FULL_N else "quick"
    env_floor = os.environ.get("CAKE_SHARDED_BENCH_FLOOR")
    floor = float(env_floor) if env_floor else (
        FULL_SCALE_FLOOR if scale == "full" else None
    )
    if cores < MIN_CORES_FOR_FLOOR:
        floor = None  # a single core cannot run two shards concurrently

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "sharded",
        rows,
        wall_seconds=wall,
        scale=scale,
        extra={
            "host_cores": cores,
            "speedup_floor": floor,
            "floor_shape": "skewed",
            "floor_processes": 2,
            "ipc_slack_factor": IPC_SLACK_FACTOR,
        },
    )
    for row in rows:
        print(
            f"\n{row['shape']:>7} {row['engine']}/P={row['processes']} "
            f"grid {row['grid']:>3}  {row['seconds']:.3f}s "
            f"({row['speedup']:.2f}x vs 1-process)"
        )

    if floor is not None:
        got = speedups["skewed"]["cake"][2]
        assert got >= floor, (
            f"skewed shape: 2 shard processes at {got:.2f}x over the "
            f"1-process threaded path; the floor is {floor:.1f}x"
        )
