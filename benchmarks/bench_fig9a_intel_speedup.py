"""Figure 9a: speedup vs cores for square matrices on the Intel i9.

Paper claims: CAKE's speedup improvement over MKL is more pronounced for
small matrices; MKL approaches CAKE as size grows.
"""

from .conftest import run_and_emit


def test_fig9a_intel_speedup(benchmark):
    report = run_and_emit(benchmark, "fig9a")
    series = report.data["series"]

    for n, (cake, goto) in series.items():
        # At full core count CAKE's speedup beats or matches the
        # GOTO baseline (small wave-fit flukes allowed up to 5%).
        assert cake.speedups[-1] >= goto.speedups[-1] * 0.95, n
        # Both engines actually scale (speedup > 1.5 at full cores).
        assert cake.speedups[-1] > 1.5

    # The advantage shrinks with size: MKL approaches CAKE.
    def advantage(n):
        cake, goto = series[n]
        return cake.speedups[-1] / goto.speedups[-1]

    sizes = sorted(series)
    assert advantage(sizes[0]) >= advantage(sizes[-1]) * 0.95
    # At the smallest size, MKL's fixed strips leave cores idle and its
    # speedup is far from ideal while CAKE's keeps climbing.
    cake_small, goto_small = series[sizes[0]]
    assert goto_small.speedups[-1] < 0.75 * cake_small.cores[-1]
    assert cake_small.speedups[-1] > goto_small.speedups[-1] * 1.3
