"""GEMM-as-a-service benchmark: the serving layer under load and faults.

Three phases, all audited bit-for-bit:

* **Concurrency sweep.** Closed-loop clients (1, 2, 4 by default)
  stream Fig-8 skewed multiplies through one
  :class:`~repro.serve.server.MultiplyServer` per level. Every
  successful response is checked ``np.array_equal`` against a direct
  ``cake_matmul`` reference — the server may coalesce, retry, and
  degrade, but it may not change bits. With a deadline configured,
  the p99 latency of admitted-and-completed requests must sit under
  it (the deadline machinery would have expired anything slower).
* **Fleet sweep.** The same closed-loop load driven through the
  supervised multi-process :class:`~repro.serve.fleet.FleetServer` at
  one or more worker-process counts (``workers`` axis) — same contract
  assertions, plus zero worker restarts expected under fault-free load.
* **Fault soak.** A short :func:`~repro.serve.soak.run_soak` with
  kill/hang/bitflip/transient rules firing while traffic flows. Zero
  silent wrong answers and zero deadlocks are hard assertions; the
  hang variant must expire via its deadline rather than stall the run.

Results land in ``benchmarks/results/BENCH_serve.json``
(cake-bench/v1), one row per concurrency level plus one soak row.

Environment knobs:

``CAKE_SERVE_BENCH_N``
    Fig-8 scale (default 256: the skewed shape is ``N/4 x N x 2N``).
``CAKE_SERVE_CLIENTS``
    Comma-separated concurrency levels (default ``1,2,4``).
``CAKE_SERVE_REQUESTS``
    Requests per client per level (default 6).
``CAKE_SERVE_DEADLINE_MS``
    Per-request deadline for the sweep (default 30000 ms — generous,
    so admitted work completes and the p99-under-deadline assertion is
    about the *accounting*, not the host's speed).
``CAKE_SERVE_SOAK_SECONDS``
    Fault-soak duration (default 6 s; CI's dedicated soak step runs
    longer).
``CAKE_SERVE_WORKERS``
    Comma-separated worker-process counts for the fleet phase
    (default ``1,2``).
"""

from __future__ import annotations

import os
import time

from repro.machines import intel_i9_10900k
from repro.runtime import write_bench_json
from repro.serve.fleet import FleetServer
from repro.serve.loadgen import OperandSet, run_load
from repro.serve.server import MultiplyServer
from repro.serve.soak import run_soak

from .conftest import RESULTS_DIR

FULL_N = 256
N = int(os.environ.get("CAKE_SERVE_BENCH_N", str(FULL_N)))
CLIENT_LEVELS = tuple(
    int(part)
    for part in os.environ.get("CAKE_SERVE_CLIENTS", "1,2,4").split(",")
    if part.strip()
)
REQUESTS_PER_CLIENT = int(os.environ.get("CAKE_SERVE_REQUESTS", "6"))
DEADLINE_SECONDS = (
    float(os.environ.get("CAKE_SERVE_DEADLINE_MS", "30000")) / 1000.0
)
SOAK_SECONDS = float(os.environ.get("CAKE_SERVE_SOAK_SECONDS", "6"))
WORKER_LEVELS = tuple(
    int(part)
    for part in os.environ.get("CAKE_SERVE_WORKERS", "1,2").split(",")
    if part.strip()
)
FLEET_CLIENTS = 2


def test_serve(benchmark):
    machine = intel_i9_10900k()
    rows: list[dict] = []
    soak_report: dict = {}

    def run():
        rows.clear()
        operands = OperandSet.figure8_skewed(N, machine=machine)
        for clients in CLIENT_LEVELS:
            with MultiplyServer(
                machine,
                capacity=max(64, 4 * clients),
                executors=2,
                default_deadline=DEADLINE_SECONDS,
            ) as server:
                report = run_load(
                    server,
                    operands,
                    clients=clients,
                    requests_per_client=REQUESTS_PER_CLIENT,
                    deadline=DEADLINE_SECONDS,
                )
                stats = server.stats()
            rows.append(
                {
                    "phase": "sweep",
                    **report.as_dict(),
                    "deadline_seconds": DEADLINE_SECONDS,
                    "batches": stats.batches,
                    "coalesced": stats.coalesced,
                    "retries": stats.retries,
                    "degradations": stats.degradations,
                    "pool_hits": stats.pool.get("hits", 0),
                    "pool_misses": stats.pool.get("misses", 0),
                }
            )
        for workers in WORKER_LEVELS:
            with FleetServer(
                machine,
                workers=workers,
                capacity=max(64, 4 * FLEET_CLIENTS),
                worker_capacity=max(64, 4 * FLEET_CLIENTS),
                default_deadline=DEADLINE_SECONDS,
            ) as fleet:
                report = run_load(
                    fleet,
                    operands,
                    clients=FLEET_CLIENTS,
                    requests_per_client=REQUESTS_PER_CLIENT,
                    deadline=DEADLINE_SECONDS,
                )
                fleet_stats = fleet.stats()
            rows.append(
                {
                    "phase": "fleet",
                    "workers": workers,
                    **report.as_dict(),
                    "deadline_seconds": DEADLINE_SECONDS,
                    "redispatched": fleet_stats.redispatched,
                    "worker_restarts": fleet_stats.worker_restarts,
                    "worker_crashes": fleet_stats.worker_crashes,
                    "live_workers": fleet_stats.live_workers,
                }
            )
        soak_report.clear()
        soak_report.update(
            run_soak(
                seconds=SOAK_SECONDS,
                clients=3,
                n=max(N // 2, 64),
                machine=machine,
            )
        )
        rows.append(
            {
                "phase": "soak",
                "clients": soak_report["clients"],
                "requests": soak_report["requests"],
                "ok": soak_report["ok"],
                "shed": soak_report["shed"],
                "deadline_exceeded": soak_report["deadline_exceeded"],
                "expected_deadlines": soak_report["expected_deadlines"],
                "silent_wrong": soak_report["silent_wrong"],
                "unstructured_failures": soak_report[
                    "unstructured_failures"
                ],
                "unresolved": soak_report["unresolved"],
                "deadlocked": soak_report["deadlocked"],
                "wall_seconds": soak_report["wall_seconds"],
            }
        )
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    sweep = [row for row in rows if row["phase"] == "sweep"]
    fleet_rows = [row for row in rows if row["phase"] == "fleet"]
    soak = next(row for row in rows if row["phase"] == "soak")

    # -- the serving contract, asserted at every scale ----------------------
    for row in sweep + fleet_rows:
        # Every response either succeeded bit-identically or terminated
        # with a structured shed/deadline error; nothing else is legal.
        assert row["mismatches"] == 0, f"{row['phase']}: bit drift"
        assert row["failed"] == 0, f"{row['clients']} clients: {row['errors']}"
        assert row["unresolved"] == 0, (
            f"{row['clients']} clients: stranded handles"
        )
        assert (
            row["ok"] + row["shed"] + row["deadline_exceeded"]
            == row["requests"]
        )
        assert row["ok"] > 0, f"{row['clients']} clients: nothing succeeded"
        # Admitted-and-completed p99 sits under the configured deadline
        # (anything slower would have been expired, not returned).
        assert row["p99_seconds"] <= DEADLINE_SECONDS, (
            f"{row['clients']} clients: p99 {row['p99_seconds']:.3f}s "
            f"exceeds the {DEADLINE_SECONDS:.3f}s deadline"
        )

    # The process boundary is transparent under fault-free load: no
    # crashes to recover from, so no restarts and no re-dispatches.
    for row in fleet_rows:
        assert row["worker_crashes"] == 0, row
        assert row["live_workers"] == row["workers"], row

    # -- fault soak: the two unforgivable outcomes --------------------------
    assert soak["silent_wrong"] == 0, "soak returned a silently wrong product"
    assert soak["unstructured_failures"] == 0
    assert not soak["deadlocked"], "soak stranded a request"
    assert soak["ok"] > 0, "soak never completed a request"
    # The hang variant exists to prove deadlines preempt stalls.
    assert soak["expected_deadlines"] == soak["deadline_exceeded"], (
        "a request without an injected hang lost its deadline race"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "serve",
        rows,
        wall_seconds=wall,
        scale="full" if N >= FULL_N else "quick",
        extra={
            "n": N,
            "client_levels": list(CLIENT_LEVELS),
            "requests_per_client": REQUESTS_PER_CLIENT,
            "deadline_seconds": DEADLINE_SECONDS,
            "soak_seconds": SOAK_SECONDS,
            "worker_levels": list(WORKER_LEVELS),
            "soak_variants": soak_report.get("variants", {}),
        },
    )
    for row in sweep:
        print(
            f"\nclients={row['clients']:<3d} ok={row['ok']:<4d} "
            f"shed={row['shed']:<3d} "
            f"p50={1e3 * row['p50_seconds']:7.1f}ms "
            f"p99={1e3 * row['p99_seconds']:7.1f}ms "
            f"{row['throughput_rps']:6.1f} req/s "
            f"coalesced={row['coalesced']} pool_hits={row['pool_hits']}"
        )
    for row in fleet_rows:
        print(
            f"\nworkers={row['workers']:<2d} clients={row['clients']:<3d} "
            f"ok={row['ok']:<4d} shed={row['shed']:<3d} "
            f"p50={1e3 * row['p50_seconds']:7.1f}ms "
            f"p99={1e3 * row['p99_seconds']:7.1f}ms "
            f"{row['throughput_rps']:6.1f} req/s "
            f"restarts={row['worker_restarts']}"
        )
    print(
        f"\n   soak ok={soak['ok']}/{soak['requests']} "
        f"expired={soak['deadline_exceeded']} "
        f"silent_wrong={soak['silent_wrong']} "
        f"deadlocked={soak['deadlocked']}"
    )
