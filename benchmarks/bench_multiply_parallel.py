"""Thread-scaling benchmark for the parallel numeric execution engine.

Measures ``multiply()`` wall-clock for the CAKE engine (plus one GOTO
row, which shares the executor) against the **serial legacy path** —
``workers=1`` with ``exact_pack=True``, i.e. the inline per-strip walk
with nested-loop packing that predates ``repro.gemm.parallel``. Two
shapes run: a cube and a skewed Figure 8-style shape (short M, deep K,
where CAKE's per-block M-decomposition is the interesting case).

Every measured run is asserted **bit-identical** to the serial baseline
(``np.array_equal`` on C, equal traffic counters) — at every scale, on
every host. The wall-clock speedup floor is additionally asserted when
the host can express it:

* full scale (``N >= 1536``): the 4-worker run must be >= 2x the serial
  path, asserted when the host grants >= 4 usable cores;
* reduced scale (CI smoke): ``CAKE_MULT_BENCH_FLOOR`` sets the floor
  (the workflow asserts >= 1.2x at 2 workers), gated on the host
  granting at least as many cores as the floor's worker count.

Thread scaling cannot exist on hardware without cores: a 1-CPU container
still runs everything (exactness always asserted) but records the curve
without failing on physics.

Results land in ``benchmarks/results/BENCH_multiply_parallel.json``
(cake-bench/v1), one row per (shape, engine, workers) with the speedup
and the pack/compute/reduce phase breakdown from ``GemmRun``.

Environment knobs:

``CAKE_MULT_BENCH_N``
    Cube edge (default 1536; the skewed shape is derived as
    ``N/4 x N x 2N``). Below 1536 the 2x full-scale floor is off.
``CAKE_MULT_BENCH_WORKERS``
    Comma-separated worker counts for the curve (default ``1,2,4``).
``CAKE_MULT_BENCH_FLOOR``
    Explicit speedup floor applied to the largest measured worker count
    (used by the CI smoke step).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.machines import intel_i9_10900k
from repro.runtime import write_bench_json

from .conftest import RESULTS_DIR

FULL_N = 1536
N = int(os.environ.get("CAKE_MULT_BENCH_N", str(FULL_N)))
WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("CAKE_MULT_BENCH_WORKERS", "1,2,4").split(",")
)

#: Acceptance floor: 4 workers on the full-scale cube must halve the
#: serial wall-clock (requires a host with >= 4 usable cores).
FULL_SCALE_FLOOR = 2.0
FULL_SCALE_WORKERS = 4

REPEATS = 2


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_multiply(engine, a, b):
    best, run = float("inf"), None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = engine.multiply(a, b)
        best = min(best, time.perf_counter() - start)
    return run, best


def _bench_shape(machine, label, m, n, k, rows):
    rng = np.random.default_rng(20210 + m)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)

    serial = CakeGemm(machine, exact_pack=True)  # the pre-engine legacy path
    serial_run, serial_s = _timed_multiply(serial, a, b)
    rows.append(
        {
            "shape": label, "engine": "cake", "path": "serial-legacy",
            "m": m, "n": n, "k": k, "workers": 1,
            "seconds": serial_s, "speedup": 1.0,
            "phases": dict(serial_run.phase_seconds),
        }
    )

    speedups: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        engine = CakeGemm(machine, workers=workers)
        run, seconds = _timed_multiply(engine, a, b)
        assert np.array_equal(run.c, serial_run.c), (
            f"{label}: workers={workers} drifted from the serial product"
        )
        assert run.counters == serial_run.counters, (
            f"{label}: workers={workers} changed the traffic accounting"
        )
        speedups[workers] = serial_s / seconds
        rows.append(
            {
                "shape": label, "engine": "cake", "path": "parallel",
                "m": m, "n": n, "k": k, "workers": workers,
                "seconds": seconds, "speedup": speedups[workers],
                "phases": dict(run.phase_seconds),
            }
        )

    # One GOTO row at the top worker count: both engines share the
    # executor; this keeps the shared path measured release to release.
    goto_serial = GotoGemm(machine, exact_pack=True)
    goto_serial_run, goto_serial_s = _timed_multiply(goto_serial, a, b)
    goto = GotoGemm(machine, workers=max(WORKER_COUNTS))
    goto_run, goto_s = _timed_multiply(goto, a, b)
    assert np.array_equal(goto_run.c, goto_serial_run.c)
    assert goto_run.counters == goto_serial_run.counters
    rows.append(
        {
            "shape": label, "engine": "goto", "path": "parallel",
            "m": m, "n": n, "k": k, "workers": max(WORKER_COUNTS),
            "seconds": goto_s, "speedup": goto_serial_s / goto_s,
            "phases": dict(goto_run.phase_seconds),
        }
    )
    return speedups


def test_multiply_parallel(benchmark):
    machine = intel_i9_10900k()
    host_cores = _host_cores()
    rows: list[dict] = []
    speedups: dict[str, dict[int, float]] = {}

    def run():
        rows.clear()
        speedups["cube"] = _bench_shape(machine, "cube", N, N, N, rows)
        speedups["skewed"] = _bench_shape(
            machine, "skewed", max(N // 4, 1), N, 2 * N, rows
        )
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    scale = "full" if N >= FULL_N else "quick"
    env_floor = os.environ.get("CAKE_MULT_BENCH_FLOOR")
    floor = float(env_floor) if env_floor else (
        FULL_SCALE_FLOOR if scale == "full" else None
    )
    floor_workers = (
        max(WORKER_COUNTS) if env_floor
        else (FULL_SCALE_WORKERS if scale == "full" else None)
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "multiply_parallel",
        rows,
        wall_seconds=wall,
        scale=scale,
        extra={
            "host_cores": host_cores,
            "worker_counts": list(WORKER_COUNTS),
            "speedup_floor": floor,
            "floor_workers": floor_workers,
        },
    )
    for row in rows:
        print(
            f"\n{row['shape']:>6} {row['engine']}/{row['path']:<13} "
            f"workers={row['workers']}: {row['seconds']:.3f}s "
            f"({row['speedup']:.2f}x) phases={{"
            f"pack {row['phases']['pack']:.3f}, "
            f"compute {row['phases']['compute']:.3f}, "
            f"reduce {row['phases']['reduce']:.3f}}}"
        )

    if floor is not None and floor_workers in speedups["cube"]:
        if host_cores >= min(floor_workers, 4):
            got = speedups["cube"][floor_workers]
            assert got >= floor, (
                f"cube {N}^3 at {floor_workers} workers: {got:.2f}x over the "
                f"serial path; the floor is {floor:.1f}x "
                f"(host grants {host_cores} cores)"
            )
        else:
            print(
                f"\nspeedup floor skipped: host grants {host_cores} core(s), "
                f"thread scaling needs >= {min(floor_workers, 4)}"
            )
