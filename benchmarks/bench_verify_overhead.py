"""Overhead benchmark for ABFT verified execution.

Measures ``multiply()`` wall-clock with verification off vs on
(``repro.gemm.verify``: pack-time checksums, per-group identity checks
at the barrier) for the CAKE engine across worker counts, plus one GOTO
row and one fault-injected recovery row.

Always asserted, at every scale and on every host:

* the verified product and traffic counters are **bit-identical** to the
  unverified run (clean verification is observationally free);
* the verify-on / verify-off wall-clock ratio stays under the overhead
  ceiling — checksum identities cost ``O(n^2)`` against the ``O(n^3)``
  they protect, so the premium must be a bounded constant factor;
* a deterministically corrupted strip self-heals back to the bit-exact
  clean product, with the recovery visible in the run's VerifyReport.

Results land in ``benchmarks/results/BENCH_verify_overhead.json``
(cake-bench/v1), one row per (engine, workers, mode) with the overhead
ratio and the verify/recover phase breakdown.

Environment knobs:

``CAKE_VERIFY_BENCH_N``
    Cube edge (default 1536).
``CAKE_VERIFY_BENCH_WORKERS``
    Comma-separated worker counts (default ``1,4``).
``CAKE_VERIFY_BENCH_RATIO``
    Overhead ceiling on the verify-on/off ratio (default 1.35; the CI
    smoke step asserts the same ceiling at reduced shape).
``CAKE_VERIFY_BENCH_REPEATS``
    Best-of repeat count per (engine, workers, mode) cell (default 7).

The ratio assertion compares two wall-clock medians of ~100ms, so it
needs a quiet machine. On shared or single-core hosts the serial cells
are the noisiest; ``CAKE_VERIFY_BENCH_WORKERS=2`` is the most stable
configuration there and is what the CI perf-smoke step pins.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.verify import VerifyConfig
from repro.machines import intel_i9_10900k
from repro.runtime import NumericFaultPlan, NumericFaultRule, write_bench_json

from .conftest import RESULTS_DIR

N = int(os.environ.get("CAKE_VERIFY_BENCH_N", "1536"))
WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("CAKE_VERIFY_BENCH_WORKERS", "1,4").split(",")
)
#: Verified wall-clock must stay within this factor of unverified.
RATIO_CEILING = float(os.environ.get("CAKE_VERIFY_BENCH_RATIO", "1.35"))

REPEATS = int(os.environ.get("CAKE_VERIFY_BENCH_REPEATS", "7"))


def _timed_multiply(engine, a, b, repeats=REPEATS):
    best, run = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        run = engine.multiply(a, b)
        best = min(best, time.perf_counter() - start)
    return run, best


class _Cell:
    """One (engine, workers) measurement cell: paired off/on engines.

    Cells are timed round-robin — one off/on pair per round across every
    cell — so each cell's best-of-REPEATS samples the whole bench
    window. A transient machine stall then inflates one round of every
    cell instead of swallowing a single cell's entire sample, which is
    what makes a worst-cell ratio assertion stable on shared hardware.
    """

    def __init__(self, engine_cls, label, machine, workers):
        self.label = label
        self.workers = workers
        self.base_engine = engine_cls(machine, workers=workers)
        self.ver_engine = engine_cls(machine, workers=workers, verify=True)
        self.base_s = self.ver_s = float("inf")
        self.base_run = self.ver_run = None

    def measure(self, a, b):
        start = time.perf_counter()
        self.base_run = self.base_engine.multiply(a, b)
        self.base_s = min(self.base_s, time.perf_counter() - start)
        start = time.perf_counter()
        self.ver_run = self.ver_engine.multiply(a, b)
        self.ver_s = min(self.ver_s, time.perf_counter() - start)

    @property
    def ratio(self):
        return self.ver_s / self.base_s


def _bench_cells(cells, machine, a, b, rows):
    for _ in range(REPEATS):
        for cell in cells:
            cell.measure(a, b)
    worst = 0.0
    for cell in cells:
        label, workers = cell.label, cell.workers
        base_run, ver_run = cell.base_run, cell.ver_run
        assert np.array_equal(base_run.c, ver_run.c), (
            f"{label} workers={workers}: verified product drifted"
        )
        assert base_run.counters == ver_run.counters, (
            f"{label} workers={workers}: verified counters drifted"
        )
        assert ver_run.verify.mismatches == 0, (
            f"{label} workers={workers}: false positive mismatches "
            f"{ver_run.verify.as_dict()}"
        )
        worst = max(worst, cell.ratio)
        for mode, seconds, run in (
            ("off", cell.base_s, base_run),
            ("on", cell.ver_s, ver_run),
        ):
            rows.append(
                {
                    "engine": label, "workers": workers, "verify": mode,
                    "n": N, "seconds": seconds,
                    "overhead": cell.ratio if mode == "on" else 1.0,
                    "blocks": (
                        run.verify.blocks if run.verify is not None else 0
                    ),
                    "checksum_bytes": (
                        run.verify.checksum_bytes(machine.element_bytes)
                        if run.verify is not None else 0
                    ),
                    "phases": dict(run.phase_seconds),
                }
            )
    return worst


def test_verify_overhead(benchmark):
    machine = intel_i9_10900k()
    rng = np.random.default_rng(20210)
    a = rng.standard_normal((N, N)).astype(np.float32)
    b = rng.standard_normal((N, N)).astype(np.float32)
    rows: list[dict] = []
    worst = {"ratio": 0.0}

    def run():
        rows.clear()
        cells = [
            _Cell(engine_cls, label, machine, workers)
            for engine_cls, label in ((CakeGemm, "cake"), (GotoGemm, "goto"))
            for workers in WORKER_COUNTS
        ]
        worst["ratio"] = _bench_cells(cells, machine, a, b, rows)
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    # Self-healing row: corrupt the first strip of the first block, run
    # verified, and require the bit-exact clean product back.
    plan = NumericFaultPlan(
        rules=(NumericFaultRule(block=0, strip=0, kind="scale", factor=3.0),)
    )
    clean = CakeGemm(machine, workers=max(WORKER_COUNTS)).multiply(a, b)
    healed_run, healed_s = _timed_multiply(
        CakeGemm(
            machine,
            workers=max(WORKER_COUNTS),
            verify=VerifyConfig(inject=plan),
        ),
        a,
        b,
    )
    assert np.array_equal(clean.c, healed_run.c), (
        "injected corruption did not heal to the bit-exact clean product"
    )
    assert healed_run.verify.mismatches == 1
    assert (
        healed_run.verify.retry_recoveries
        + healed_run.verify.oracle_recoveries
        == 1
    )
    rows.append(
        {
            "engine": "cake", "workers": max(WORKER_COUNTS),
            "verify": "on+fault", "n": N, "seconds": healed_s,
            "overhead": None,
            "blocks": healed_run.verify.blocks,
            "checksum_bytes": healed_run.verify.checksum_bytes(
                machine.element_bytes
            ),
            "phases": dict(healed_run.phase_seconds),
            "report": healed_run.verify.as_dict(),
        }
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        RESULTS_DIR,
        "verify_overhead",
        rows,
        wall_seconds=wall,
        scale="full" if N >= 1536 else "quick",
        extra={
            "worker_counts": list(WORKER_COUNTS),
            "ratio_ceiling": RATIO_CEILING,
            "worst_ratio": worst["ratio"],
        },
    )
    for row in rows:
        print(
            f"\n{row['engine']:>5} workers={row['workers']} "
            f"verify={row['verify']:<9} {row['seconds']:.3f}s "
            f"(overhead {row['overhead'] if row['overhead'] else '-'}) "
            f"verify-phase {row['phases']['verify']:.3f}s "
            f"recover-phase {row['phases']['recover']:.3f}s"
        )

    assert worst["ratio"] <= RATIO_CEILING, (
        f"verified execution costs {worst['ratio']:.2f}x over unverified; "
        f"the ceiling is {RATIO_CEILING:.2f}x at N={N}"
    )
