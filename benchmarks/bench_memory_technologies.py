"""Extension bench: the memory-technology spectrum of the introduction.

Section 1 motivates CAKE with emerging memory technologies — 3D DRAM
stacking on one end (bandwidth to spare) and high-capacity NVM on the
other (a towering memory wall). Sweeping the same compute complex across
HBM / DDR / NVM external memories shows the claim's structure: the
scarcer external bandwidth is, the larger CAKE's win over GOTO.
"""

from repro.bench.report import ExperimentReport
from repro.machines import MEMORY_TECHNOLOGIES
from repro.perfmodel import predict_cake, predict_goto

from .conftest import RESULTS_DIR


def _technology_report() -> ExperimentReport:
    rep = ExperimentReport(
        "memtech", "GEMM across memory technologies (extension)"
    )
    n = 8064
    rows = []
    data = {}
    for key in ("hbm", "ddr", "nvm"):
        machine = MEMORY_TECHNOLOGIES[key]()
        cake = predict_cake(machine, n, n, n)
        goto = predict_goto(machine, n, n, n)
        data[key] = (cake, goto)
        rows.append(
            [
                machine.name,
                f"{machine.dram_gb_per_s:.0f}",
                f"{cake.gflops:.0f}",
                f"{goto.gflops:.0f}",
                f"{cake.gflops / goto.gflops:.2f}x",
                f"{cake.plan_summary['alpha']:.1f}",
            ]
        )
    rep.add_table(
        ["system", "DRAM GB/s", "CAKE GFLOP/s", "GOTO GFLOP/s",
         "CAKE/GOTO", "alpha"],
        rows,
    )
    rep.data["results"] = data
    return rep


def test_memory_technology_sweep(benchmark):
    report = benchmark.pedantic(_technology_report, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "memtech.txt").write_text(report.text())
    print()
    print(report.text())
    res = report.data["results"]

    def ratio(key):
        cake, goto = res[key]
        return cake.gflops / goto.gflops

    # The scarcer the external bandwidth, the bigger CAKE's advantage.
    assert ratio("nvm") > ratio("ddr") >= ratio("hbm") * 0.95
    # With HBM the wall is gone: near parity (what edge/imbalance noise
    # remains is not a bandwidth effect).
    assert 0.9 < ratio("hbm") < 1.3
    # On NVM, GOTO hits the wall hard: CAKE wins by a wide margin.
    assert ratio("nvm") > 2.0
    # Degradation across the spectrum: moving from HBM to NVM costs CAKE
    # a modest fraction but costs GOTO most of its throughput.
    cake_retention = res["nvm"][0].gflops / res["hbm"][0].gflops
    goto_retention = res["nvm"][1].gflops / res["hbm"][1].gflops
    assert cake_retention > 0.6
    assert goto_retention < 0.35
    # And GOTO on NVM is squarely external-bandwidth-bound.
    goto_nvm = res["nvm"][1]
    assert goto_nvm.bound_blocks["external"] > goto_nvm.bound_blocks["compute"]