"""Figure 4: CB blocks hold external bandwidth constant as cores grow."""

from .conftest import run_and_emit


def test_fig4_constant_bandwidth(benchmark):
    report = run_and_emit(benchmark, "fig4")
    bws = report.data["bandwidths"]
    ais = report.data["intensities"]
    mems = report.data["memories"]

    # The headline: required external bandwidth identical at every scale.
    assert len(set(bws)) == 1
    # Arithmetic intensity strictly increases with core count ...
    assert all(b > a for a, b in zip(ais, ais[1:]))
    # ... and local memory grows superlinearly (the p^2 term of Eq. 1).
    growth = [b / a for a, b in zip(mems, mems[1:])]
    assert all(g > 2.0 for g in growth)  # cores double each step
