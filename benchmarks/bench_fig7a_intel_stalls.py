"""Figure 7a: memory-request stalls per level on the Intel i9.

Paper claims: with CAKE the CPU is most often stalled on *local* memory
levels; with MKL, on main memory — even though MKL's total throughput at
this size is comparable.
"""

from .conftest import run_and_emit


def test_fig7a_stall_profile(benchmark):
    report = run_and_emit(benchmark, "fig7a")
    cake = report.data["cake"]
    goto = report.data["goto"]

    # CAKE stalls mostly locally; GOTO mostly on DRAM.
    assert cake.local_stall_fraction > 0.5
    assert goto.local_stall_fraction < 0.3
    # GOTO spends several times longer stalled on main memory.
    assert goto.stall_profile["DRAM"] > 2 * cake.stall_profile["DRAM"]
    # CAKE spends more absolute time stalled on local memory than GOTO
    # spends on local memory (the demand shifted inward, not vanished).
    cake_local = sum(v for k, v in cake.stall_profile.items() if k != "DRAM")
    goto_local = sum(v for k, v in goto.stall_profile.items() if k != "DRAM")
    assert cake_local > goto_local
