"""Figure 4, measured: constant-bandwidth scaling in the packet simulator.

The analytic Figure 4 bench shows Eq. 2's bandwidth floor is independent
of core count. This bench *measures* the same claim on the discrete-event
machine: grids of 4, 8 and 16 cores run proportionally larger CB blocks
(Figure 4's (a)->(c) growth) against the SAME external link, and
throughput (MACs/cycle) must scale with the grid while the link stays
below saturation. This also exercises Section 6.2's reconfigurability
point — growing the machine is just a constructor argument.
"""

import numpy as np

from repro.bench.report import ExperimentReport
from repro.archsim import CakeSystem

from .conftest import RESULTS_DIR


def _scaling_report() -> ExperimentReport:
    rep = ExperimentReport(
        "archsim-scaling",
        "Measured CB scaling at fixed external bandwidth (Figure 4 in the DES)",
    )
    k = 2
    ext_bw = 2.0 * (1.0 + 1.0) * k  # twice Eq. 2's floor for alpha=1
    rng = np.random.default_rng(2)
    size = 48
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))

    rows_list = (2, 4, 8)
    rows_out = []
    data = {}
    for rows in rows_list:
        system = CakeSystem(
            rows, k, ext_bw_tiles_per_cycle=ext_bw, n_block=rows
        )
        report = system.run_matmul(a, b)
        np.testing.assert_allclose(report.c, a @ b, rtol=1e-10)
        throughput = size**3 / report.total_cycles  # MACs per cycle
        data[rows] = {
            "cores": rows * k,
            "throughput": throughput,
            "link_utilisation": report.external_link_utilisation,
            "grid_utilisation": report.grid_utilisation,
            "cycles": report.total_cycles,
        }
        rows_out.append(
            [
                rows * k,
                f"{rows} x {rows} x {k}",
                f"{report.total_cycles:.0f}",
                f"{throughput:.2f}",
                f"{report.external_link_utilisation:.0%}",
                f"{report.grid_utilisation:.0%}",
            ]
        )
    rep.add_table(
        ["cores", "CB block (tiles)", "cycles", "MACs/cycle",
         "ext link busy", "grid busy"],
        rows_out,
    )
    rep.add_line(
        f"external link fixed at {ext_bw:g} tiles/cycle for every grid"
    )
    rep.data["points"] = data
    return rep


def test_measured_constant_bandwidth_scaling(benchmark):
    report = benchmark.pedantic(_scaling_report, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "archsim-scaling.txt").write_text(report.text())
    print()
    print(report.text())
    pts = report.data["points"]

    # Throughput grows with the grid (at least 1.6x per doubling) ...
    assert pts[4]["throughput"] > 1.6 * pts[2]["throughput"]
    assert pts[8]["throughput"] > 1.6 * pts[4]["throughput"]
    # ... while the SAME external link never saturates: the measured
    # constant-bandwidth property.
    for rows, p in pts.items():
        assert p["link_utilisation"] < 1.0, rows
    # The largest grid still keeps its cores mostly busy.
    assert pts[8]["grid_utilisation"] > 0.6
