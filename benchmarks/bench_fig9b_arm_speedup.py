"""Figure 9b: speedup vs cores for square matrices on the ARM A53.

Paper claims: CAKE outperforms ARMPL consistently for *all* problem
sizes; ARMPL cannot scale with cores because DRAM bandwidth saturates.
"""

from .conftest import run_and_emit


def test_fig9b_arm_speedup(benchmark):
    report = run_and_emit(benchmark, "fig9b")
    series = report.data["series"]

    for n, (cake, goto) in series.items():
        # CAKE wins at every multi-core point, for every size.
        for p_idx in range(1, len(cake.cores)):
            assert cake.speedups[p_idx] >= goto.speedups[p_idx], (n, p_idx)
        # ARMPL saturates: its 4-core speedup stays close to 2-core.
        assert goto.speedups[-1] < goto.speedups[1] * 1.25, n
        # CAKE keeps scaling toward 3x at 4 cores (paper's curve).
        assert cake.speedups[-1] > 2.5, n
