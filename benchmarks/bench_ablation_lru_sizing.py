"""Ablation: the LRU sizing rule ``C + 2(A+B) <= S`` of Section 4.3.

Blocks sized to the rule keep DRAM traffic near the operand minimum;
oversizing (filling the cache completely) triggers LRU thrash and a
measurable jump in DRAM traffic in the trace-driven hierarchy.
"""

from .conftest import run_and_emit


def test_ablation_lru_sizing(benchmark):
    report = run_and_emit(benchmark, "ablation-lru")
    dram = report.data["dram"]

    rule = dram["rule (Sec 4.3)"]
    # Oversized blocks thrash: external traffic jumps well above rule.
    assert dram["rule x1.5"] > rule * 1.3
    # Undersized blocks are safe but not catastrophic either way.
    assert dram["half rule"] < dram["rule x1.5"]
