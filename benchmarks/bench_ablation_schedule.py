"""Ablation: external IO of the K-first schedule vs alternatives (Sec 2.2)."""

from .conftest import run_and_emit


def test_ablation_schedule(benchmark):
    report = run_and_emit(benchmark, "ablation-schedule")
    totals = report.data["totals"]

    # K-first is the minimum among all implemented orders.
    assert totals["k-first"] == min(totals.values())
    # Non-reduction-first orders pay for partial-result round-trips.
    assert totals["m-first"] > totals["k-first"] * 1.2
    assert totals["n-first"] > totals["k-first"] * 1.2
    # The naive (non-flipping) order loses only the turn reuses.
    assert totals["k-first"] < totals["naive"] <= totals["m-first"]
