"""Extension bench: the energy side of the constant-bandwidth trade.

The paper's conclusion argues for the CAKE trade partly on power: "DRAM
has relatively high latency and power consumption". This bench quantifies
it with the data-movement energy model: across the three platforms, CAKE
buys its constant DRAM bandwidth with internal traffic that costs an
order of magnitude less per byte.
"""

import pytest

from repro.bench.report import ExperimentReport
from repro.gemm import CakeGemm, GotoGemm
from repro.machines import amd_ryzen_9_5950x, arm_cortex_a53, intel_i9_10900k
from repro.perfmodel import estimate_energy

from .conftest import RESULTS_DIR


def _energy_report() -> ExperimentReport:
    rep = ExperimentReport(
        "energy", "Data-movement energy, CAKE vs GOTO (extension)"
    )
    rows = []
    data = {}
    for machine, n in (
        (intel_i9_10900k(), 4608),
        (amd_ryzen_9_5950x(), 4608),
        (arm_cortex_a53(), 1536),
    ):
        cake = estimate_energy(CakeGemm(machine).analyze(n, n, n))
        goto = estimate_energy(GotoGemm(machine).analyze(n, n, n))
        data[machine.name] = (cake, goto)
        rows.append(
            [
                machine.name,
                n,
                f"{cake.total_joules:.2f}",
                f"{goto.total_joules:.2f}",
                f"{cake.dram_fraction:.0%}",
                f"{goto.dram_fraction:.0%}",
                f"{cake.gflops_per_watt:.1f}",
                f"{goto.gflops_per_watt:.1f}",
            ]
        )
    rep.add_table(
        [
            "machine", "n",
            "CAKE J", "GOTO J",
            "CAKE DRAM share", "GOTO DRAM share",
            "CAKE GF/W", "GOTO GF/W",
        ],
        rows,
    )
    rep.data["energy"] = data
    return rep


def test_energy_trade(benchmark):
    report = benchmark.pedantic(_energy_report, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "energy.txt").write_text(report.text())
    print()
    print(report.text())

    for name, (cake, goto) in report.data["energy"].items():
        # CAKE always spends less on DRAM and less in total.
        assert cake.dram_joules < goto.dram_joules, name
        assert cake.total_joules < goto.total_joules, name
        # GOTO's energy is dominated by DRAM far more than CAKE's.
        assert cake.dram_fraction < goto.dram_fraction, name
