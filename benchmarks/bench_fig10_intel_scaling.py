"""Figure 10: Intel i9-10900K, 23040x23040 MM — the headline Intel result.

Paper claims: (a) CAKE's DRAM bandwidth stays near the Eq. 4 optimum
(~4.5 GB/s observed of 40 available) while MKL's climbs toward 25 GB/s;
(b) CAKE reaches within a few percent of MKL's throughput; extrapolated
beyond 10 cores with fixed DRAM bandwidth, MKL plateaus while CAKE keeps
scaling; (c) internal bandwidth stops scaling past ~6 cores, nudging
CAKE's DRAM usage slightly above optimal at 9-10 cores.
"""

from .conftest import run_and_emit


def test_fig10_intel_scaling(benchmark):
    report = run_and_emit(benchmark, "fig10")
    points = {pt.cores: pt for pt in report.data["points"]}
    measured = [pt for pt in report.data["points"] if not pt.extrapolated]

    # (a) CAKE DRAM bandwidth ~constant; MKL's grows with cores.
    cake_bws = [pt.cake.dram_gb_per_s for pt in measured]
    goto_bws = [pt.goto.dram_gb_per_s for pt in measured]
    assert max(cake_bws) / min(cake_bws) < 2.0
    assert goto_bws[-1] / goto_bws[0] > 5.0
    # Absolute scale matches the paper's panel: CAKE a few GB/s, MKL ~25.
    assert 2.0 < points[10].cake.dram_gb_per_s < 8.0
    assert 18.0 < points[10].goto.dram_gb_per_s < 32.0

    # (b) throughput parity at 10 cores (paper: within 3%; we allow 15%).
    ratio = points[10].cake.gflops / points[10].goto.gflops
    assert 0.85 < ratio < 1.25
    # Extrapolated to 20 cores: MKL is DRAM-capped, CAKE keeps scaling.
    assert points[20].cake.gflops > points[20].goto.gflops * 1.15
    assert points[20].cake.gflops > points[10].cake.gflops * 1.6

    # (c) CAKE's observed bandwidth sits at or above the Eq. 4 optimum,
    # drifting further above it at high core counts (internal-BW knee).
    for pt in measured:
        assert pt.cake.dram_gb_per_s >= pt.cake_optimal_dram_gb_per_s * 0.95
    excess_10 = points[10].cake.dram_gb_per_s / points[10].cake_optimal_dram_gb_per_s
    excess_4 = points[4].cake.dram_gb_per_s / points[4].cake_optimal_dram_gb_per_s
    assert excess_10 > excess_4
