"""Batch analyzer vs. scalar schedule walk: equivalence and speedup.

Runs both engines' ``analyze()`` twice per shape — once through the
scalar per-block walk (``exact_walk=True``) and once through the
vectorized batch path — asserts the two are bit-for-bit identical, and
records the wall-clock of each in
``benchmarks/results/BENCH_analyze_vectorized.json``.

At the full scale (the Figure 10 Intel problem, 23040 x 23040 x 23040)
the CAKE batch path must be at least 10x faster than the scalar walk —
that is this PR's acceptance number. The CI perf-smoke step runs a
reduced shape via ``CAKE_ANALYZE_BENCH_N``; at reduced scale only the
equivalence assertions apply (absolute timing on shared runners is
noise, correctness is not).

Environment knobs:

``CAKE_ANALYZE_BENCH_N``
    Square problem edge (default 23040, the Figure 10 Intel scale).
    Values below the default skip the speedup floor assertion.
"""

from __future__ import annotations

import os
import time

from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.machines import intel_i9_10900k
from repro.runtime import write_bench_json

from .conftest import RESULTS_DIR

FULL_N = 23040  # Figure 10's Intel problem edge
N = int(os.environ.get("CAKE_ANALYZE_BENCH_N", str(FULL_N)))

#: The CAKE analyze() speedup the batch path must deliver at full scale.
SPEEDUP_FLOOR = 10.0

COUNTER_FIELDS = (
    "ext_a_read", "ext_b_read", "ext_c_write", "ext_c_spill",
    "ext_c_read", "ext_pack", "internal", "tile_cycles", "macs",
)


def _assert_identical(scalar, batch, label):
    for field in COUNTER_FIELDS:
        got, want = getattr(batch.counters, field), getattr(scalar.counters, field)
        assert got == want, f"{label}.{field}: batch {got} != scalar {want}"
    assert batch.time.seconds == scalar.time.seconds, label
    assert batch.time.compute_seconds == scalar.time.compute_seconds, label
    assert batch.time.external_seconds == scalar.time.external_seconds, label
    assert batch.time.internal_seconds == scalar.time.internal_seconds, label
    assert batch.bound_blocks == scalar.bound_blocks, label
    assert batch.plan_summary == scalar.plan_summary, label


#: Timing repeats per path; the row records the minimum (standard
#: practice for deterministic compute — the min is the least-noise run).
REPEATS = 3


def _measure(engine_cls, machine, n, **kwargs):
    scalar_engine = engine_cls(machine, exact_walk=True, **kwargs)
    batch_engine = engine_cls(machine, **kwargs)
    batch_engine.analyze(n, n, n)  # warm plan memo + numpy for both paths
    scalar_s = batch_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        scalar_run = scalar_engine.analyze(n, n, n)
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        batch_run = batch_engine.analyze(n, n, n)
        batch_s = min(batch_s, time.perf_counter() - start)
    return scalar_run, batch_run, scalar_s, batch_s


def test_analyze_vectorized(benchmark):
    machine = intel_i9_10900k()
    rows = []

    def run():
        rows.clear()
        for engine_name, engine_cls in (("cake", CakeGemm), ("goto", GotoGemm)):
            scalar_run, batch_run, scalar_s, batch_s = _measure(
                engine_cls, machine, N
            )
            _assert_identical(scalar_run, batch_run, f"{engine_name}@{N}")
            rows.append(
                {
                    "engine": engine_name,
                    "machine": machine.name,
                    "n": N,
                    "blocks": int(
                        scalar_run.plan_summary.get("blocks", 0)
                        or scalar_run.plan_summary.get("m_strips", 0)
                    ),
                    "scalar_seconds": scalar_s,
                    "batch_seconds": batch_s,
                    "speedup": scalar_s / batch_s,
                }
            )
        return rows

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start

    RESULTS_DIR.mkdir(exist_ok=True)
    scale = "full" if N >= FULL_N else "quick"
    write_bench_json(
        RESULTS_DIR,
        "analyze_vectorized",
        rows,
        wall_seconds=wall,
        scale=scale,
        extra={"speedup_floor": SPEEDUP_FLOOR if scale == "full" else None},
    )
    for row in rows:
        print(
            f"\n{row['engine']} n={row['n']}: scalar {row['scalar_seconds']:.4f}s, "
            f"batch {row['batch_seconds']:.4f}s, speedup {row['speedup']:.1f}x"
        )

    if scale == "full":
        cake_row = rows[0]
        assert cake_row["speedup"] >= SPEEDUP_FLOOR, (
            f"CAKE batch analyze() only {cake_row['speedup']:.1f}x faster than "
            f"the scalar walk at n={N}; the acceptance floor is "
            f"{SPEEDUP_FLOOR:.0f}x"
        )
