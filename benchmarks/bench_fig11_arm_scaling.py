"""Figure 11: ARM Cortex-A53, 3000x3000 MM — the bandwidth-starved case.

Paper claims: ARMPL must grow DRAM usage to add cores and hits the 2 GB/s
wall, so it stops scaling; CAKE holds DRAM usage near optimal and keeps
scaling, limited only by the flat internal bandwidth at 3-4 cores.
"""

from .conftest import run_and_emit


def test_fig11_arm_scaling(benchmark):
    report = run_and_emit(benchmark, "fig11")
    points = {pt.cores: pt for pt in report.data["points"]}

    # ARMPL saturates by ~2 cores: adding the 3rd/4th barely helps.
    assert points[4].goto.gflops < points[2].goto.gflops * 1.15
    # CAKE keeps scaling to 4 cores and clearly outperforms ARMPL there.
    assert points[4].cake.gflops > points[4].goto.gflops * 1.3
    assert points[4].cake.gflops > points[2].cake.gflops * 1.3

    # Bandwidth panels: ARMPL pushes toward the 2 GB/s wall; CAKE stays
    # a small constant share near the optimum.
    assert points[4].goto.dram_gb_per_s > 2.0 * points[4].cake.dram_gb_per_s
    assert points[4].cake.dram_gb_per_s < 1.0
    # CAKE drifts above optimal at 3-4 cores (flat internal bandwidth).
    excess_4 = points[4].cake.dram_gb_per_s / points[4].cake_optimal_dram_gb_per_s
    assert excess_4 >= 0.8  # near or above optimal, never far below

    # Extrapolated to 8 cores (internal BW linearised): CAKE continues.
    assert points[8].cake.gflops > points[4].cake.gflops * 1.5
    assert points[8].goto.gflops < points[8].cake.gflops
