"""Shared fixtures and the pinned hypothesis profile for the test suite.

Property tests must be reproducible run-to-run: the ``default`` profile
below pins the derandomized seed and disables per-example deadlines (CI
boxes have noisy clocks; the models under test are deterministic, so a
deadline only adds flakes). The ``ci`` profile keeps the same seed but
multiplies the example budget for scheduled deep runs — select it with
``HYPOTHESIS_PROFILE=ci``. Per-test ``@settings`` decorators still apply
on top (they override the profile's ``max_examples``/``deadline``).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.machines import (
    amd_ryzen_9_5950x,
    arm_cortex_a53,
    intel_i9_10900k,
)

settings.register_profile(
    "default",
    derandomize=True,
    deadline=None,
    max_examples=25,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=100,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20210)


@pytest.fixture
def intel():
    return intel_i9_10900k()


@pytest.fixture
def amd():
    return amd_ryzen_9_5950x()


@pytest.fixture
def arm():
    return arm_cortex_a53()


@pytest.fixture(params=["intel", "amd", "arm"])
def machine(request):
    return {
        "intel": intel_i9_10900k,
        "amd": amd_ryzen_9_5950x,
        "arm": arm_cortex_a53,
    }[request.param]()


def assert_product_close(c, a, b):
    """Tolerance appropriate for re-associated blocked summation."""
    expected = a @ b
    scale = max(np.abs(expected).max(), 1.0)
    np.testing.assert_allclose(c, expected, rtol=1e-8, atol=1e-9 * scale)
