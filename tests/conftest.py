"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import (
    amd_ryzen_9_5950x,
    arm_cortex_a53,
    intel_i9_10900k,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20210)


@pytest.fixture
def intel():
    return intel_i9_10900k()


@pytest.fixture
def amd():
    return amd_ryzen_9_5950x()


@pytest.fixture
def arm():
    return arm_cortex_a53()


@pytest.fixture(params=["intel", "amd", "arm"])
def machine(request):
    return {
        "intel": intel_i9_10900k,
        "amd": amd_ryzen_9_5950x,
        "arm": arm_cortex_a53,
    }[request.param]()


def assert_product_close(c, a, b):
    """Tolerance appropriate for re-associated blocked summation."""
    expected = a @ b
    scale = max(np.abs(expected).max(), 1.0)
    np.testing.assert_allclose(c, expected, rtol=1e-8, atol=1e-9 * scale)
