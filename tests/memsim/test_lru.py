"""Tests for the LRU cache models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim import LRUCache, SetAssociativeCache


class TestLRUCacheBasics:
    def test_miss_then_hit(self):
        c = LRUCache(100)
        assert not c.access("a", 10)
        assert c.access("a", 10)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_eviction_is_lru_order(self):
        c = LRUCache(30)
        c.access("a", 10)
        c.access("b", 10)
        c.access("c", 10)
        c.access("a", 10)  # refresh a
        c.access("d", 10)  # evicts b (LRU), not a
        assert "a" in c and "c" in c and "d" in c
        assert "b" not in c

    def test_capacity_respected(self):
        c = LRUCache(25)
        for key in "abcde":
            c.access(key, 10)
        assert c.used_bytes <= 25

    def test_oversized_entry_streams_through(self):
        c = LRUCache(10)
        assert not c.access("big", 100)
        assert "big" not in c
        assert not c.access("big", 100)  # still a miss: never retained

    def test_dirty_eviction_counts_writeback(self):
        c = LRUCache(10)
        c.access("a", 10, write=True)
        c.access("b", 10)
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = LRUCache(10)
        c.access("a", 10)
        c.access("b", 10)
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 0

    def test_invalidate(self):
        c = LRUCache(100)
        c.access("a", 10)
        c.invalidate("a")
        assert "a" not in c
        assert c.used_bytes == 0
        assert c.stats.evictions == 0

    def test_hit_rate(self):
        c = LRUCache(100)
        assert c.stats.hit_rate == 0.0
        c.access("a", 10)
        c.access("a", 10)
        assert c.stats.hit_rate == 0.5

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(100).access("a", 0)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 40)), min_size=1,
            max_size=200,
        ),
        st.integers(32, 256),
    )
    def test_invariants_under_random_traces(self, trace, capacity):
        c = LRUCache(capacity)
        for key, size in trace:
            c.access(key, size)
            assert c.used_bytes <= capacity
        assert c.stats.accesses == len(trace)


class TestSetAssociativeCache:
    def test_geometry_checked(self):
        with pytest.raises(ValueError, match="not divisible"):
            SetAssociativeCache(1000, line_bytes=64, ways=8)

    def test_line_hit_after_fill(self):
        c = SetAssociativeCache(1024, line_bytes=64, ways=2)
        assert not c.access_line(0)
        assert c.access_line(32)  # same line as address 0

    def test_way_conflict_eviction(self):
        c = SetAssociativeCache(1024, line_bytes=64, ways=2)  # 8 sets
        stride = 64 * 8  # same set every time
        c.access_line(0 * stride)
        c.access_line(1 * stride)
        c.access_line(2 * stride)  # evicts line 0
        assert not c.access_line(0 * stride)

    def test_range_access_counts_lines(self):
        c = SetAssociativeCache(4096, line_bytes=64, ways=8)
        hits = c.access(0, 256)  # 4 lines, all cold
        assert hits == 0
        assert c.access(0, 256) == 4  # all hot now

    def test_negative_address_rejected(self):
        c = SetAssociativeCache(1024, line_bytes=64, ways=2)
        with pytest.raises(ValueError):
            c.access_line(-64)

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300))
    def test_full_associativity_agreement(self, addresses):
        """A 1-set set-associative cache must behave exactly like an
        object-LRU cache over line ids — the two models cross-validate."""
        line = 64
        ways = 16
        sa = SetAssociativeCache(line * ways, line_bytes=line, ways=ways)
        lru = LRUCache(line * ways)
        for a in addresses:
            sa_hit = sa.access_line(a)
            lru_hit = lru.access((a // line), line)
            assert sa_hit == lru_hit
