"""Bit-for-bit equivalence of the vectorized batch replay engine.

The vectorized path (:mod:`repro.memsim.vectorized`) must be an *exact*
reimplementation of the scalar line-by-line hierarchy — same serves
breakdown, same DRAM bytes, for the same op stream. These tests pin that
over both engines' schedules, random op soups, chunk boundaries, and
every machine preset.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import amd_ryzen_9_5950x, arm_cortex_a53, intel_i9_10900k
from repro.memsim.linear import (
    LineHierarchy,
    cake_line_ops,
    goto_line_ops,
    line_profile_cake,
    line_profile_goto,
)
from repro.memsim.vectorized import (
    VectorizedLineHierarchy,
    expand_ranges,
)


def _scalar_replay(machine, cores, ops):
    hier = LineHierarchy(machine, cores)
    for core, base, nbytes, write in ops:
        hier.access_range(core, base, nbytes, write=write)
    return hier


class TestExpandRanges:
    def test_single_range_covers_every_line(self):
        cores, lines, writes = expand_ranges(
            np.array([3]), np.array([100]), np.array([200]), np.array([1]), 64
        )
        # bytes [100, 300) touch lines 1..4 inclusive.
        assert lines.tolist() == [1, 2, 3, 4]
        assert cores.tolist() == [3, 3, 3, 3]
        assert writes.tolist() == [1, 1, 1, 1]

    def test_concatenates_in_op_order(self):
        cores, lines, _ = expand_ranges(
            np.array([0, 1]),
            np.array([0, 64]),
            np.array([64, 128]),
            np.array([0, 0]),
            64,
        )
        assert lines.tolist() == [0, 1, 2]
        assert cores.tolist() == [0, 1, 1]

    def test_matches_scalar_line_walk(self):
        rng = np.random.default_rng(7)
        bases = rng.integers(0, 10_000, 50)
        sizes = rng.integers(1, 500, 50)
        _, lines, _ = expand_ranges(
            np.zeros(50, dtype=np.int64), bases, sizes, np.zeros(50, np.int64), 64
        )
        expected = []
        for b, s in zip(bases.tolist(), sizes.tolist()):
            first, last = b // 64, (b + s - 1) // 64
            expected.extend(range(first, last + 1))
        assert lines.tolist() == expected


class TestBitForBitEquivalence:
    @pytest.mark.parametrize("preset", [intel_i9_10900k, amd_ryzen_9_5950x, arm_cortex_a53])
    @pytest.mark.parametrize("ops_fn", [cake_line_ops, goto_line_ops])
    def test_schedule_streams(self, preset, ops_fn):
        machine = preset()
        cores = min(4, machine.cores)
        ops = list(ops_fn(machine, 96, 96, 96, cores=cores))
        scalar = _scalar_replay(machine, cores, ops)
        vec = VectorizedLineHierarchy(machine, cores).replay(ops)
        assert vec.serves == scalar.serves
        assert vec.dram_bytes == scalar.dram_bytes
        assert vec.dram_fraction == scalar.dram_fraction

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 1 << 16),
                st.integers(1, 4096),
                st.booleans(),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_random_op_soup(self, raw_ops):
        """Arbitrary interleaved op streams agree too — hot re-touches,
        cross-core sharing, arbitrary alignment."""
        machine = intel_i9_10900k()
        ops = [(c, b, s, w) for c, b, s, w in raw_ops]
        scalar = _scalar_replay(machine, 4, ops)
        vec = VectorizedLineHierarchy(machine, 4).replay(ops)
        assert vec.serves == scalar.serves
        assert vec.dram_bytes == scalar.dram_bytes

    def test_chunk_boundaries_preserve_state(self):
        """Replaying in tiny chunks must equal one big batch — the LRU
        state carries across chunk boundaries exactly."""
        machine = intel_i9_10900k()
        ops = list(cake_line_ops(machine, 64, 64, 64, cores=2))
        whole = VectorizedLineHierarchy(machine, 2).replay(ops)
        chunked = VectorizedLineHierarchy(machine, 2).replay(ops, chunk_ops=3)
        assert whole.serves == chunked.serves
        assert whole.dram_bytes == chunked.dram_bytes

    def test_profiles_agree_end_to_end(self, intel):
        for fn in (line_profile_cake, line_profile_goto):
            scalar = fn(intel, 128, 128, 128, cores=4, vectorized=False)
            vec = fn(intel, 128, 128, 128, cores=4, vectorized=True)
            assert scalar.serves == vec.serves
            assert scalar.dram_bytes == vec.dram_bytes
            assert scalar.dram_fraction == vec.dram_fraction
            assert scalar.engine == vec.engine


class TestVectorizedBehaviour:
    def test_l1_hit_on_immediate_retouch(self, intel):
        vec = VectorizedLineHierarchy(intel, 1)
        vec.replay([(0, 0, 64, False), (0, 0, 64, False)])
        assert vec.serves["L1"] == 1
        assert vec.serves["DRAM"] == 1

    def test_cold_stream_misses_to_dram(self, intel):
        # One touch each of many distinct lines: everything is compulsory.
        n_lines = 1000
        vec = VectorizedLineHierarchy(intel, 1)
        vec.replay([(0, 0, n_lines * 64, False)])
        assert vec.serves["DRAM"] == n_lines
        assert vec.dram_bytes == n_lines * 64

    def test_working_set_larger_than_l1_falls_to_l2(self, intel):
        # Stream twice over a buffer bigger than L1 but smaller than L2:
        # second pass hits in L2, not L1.
        nbytes = intel.l1_bytes * 4
        assert nbytes < intel.l2_bytes
        vec = VectorizedLineHierarchy(intel, 1)
        vec.replay([(0, 0, nbytes, False), (0, 0, nbytes, False)])
        assert vec.serves["L2"] == nbytes // 64
        assert vec.serves["L1"] == 0
