"""Tests for dirty-eviction write-back accounting."""

import pytest

from repro.memsim import LRUCache, MemoryHierarchy


class TestLRUWritebackBytes:
    def test_dirty_eviction_counts_bytes(self):
        c = LRUCache(10)
        c.access("a", 10, write=True)
        c.access("b", 10)
        assert c.stats.writeback_bytes == 10

    def test_clean_eviction_counts_nothing(self):
        c = LRUCache(10)
        c.access("a", 10)
        c.access("b", 10)
        assert c.stats.writeback_bytes == 0

    def test_size_growth_on_rehit_stays_consistent(self):
        """The hypothesis-found edge case: re-access with a larger size
        must keep byte accounting consistent and never corrupt eviction."""
        c = LRUCache(32)
        c.access(0, 1)
        c.access(0, 34)  # grows beyond capacity: uncached after eviction
        assert c.used_bytes <= 32


class TestHierarchyWriteback:
    def test_dirty_llc_eviction_reaches_dram(self, intel):
        import dataclasses

        tiny = dataclasses.replace(
            intel, llc_bytes=1000, l1_bytes=100, l2_bytes=100
        )
        h = MemoryHierarchy(tiny, cores=1)
        h.access(0, "a", 800, write=True)
        fills = h.dram_bytes
        h.access(0, "b", 800)  # evicts dirty 'a' from the LLC
        assert h.dram_bytes == fills + 800 + 800  # new fill + write-back

    def test_clean_data_never_written_back(self, intel):
        import dataclasses

        tiny = dataclasses.replace(
            intel, llc_bytes=1000, l1_bytes=100, l2_bytes=100
        )
        h = MemoryHierarchy(tiny, cores=1)
        h.access(0, "a", 800)
        h.access(0, "b", 800)
        assert h.dram_bytes == 1600  # two fills, no write-back
