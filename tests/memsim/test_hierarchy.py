"""Tests for the multi-level hierarchy and the Figure 7 profiles."""

import pytest

from repro.machines import arm_cortex_a53, intel_i9_10900k
from repro.memsim import MemoryHierarchy, profile_cake, profile_goto


class TestMemoryHierarchy:
    def test_first_access_served_by_dram(self, intel):
        h = MemoryHierarchy(intel, cores=2)
        assert h.access(0, "x", 1024) == "DRAM"

    def test_repeat_access_served_by_l1(self, intel):
        h = MemoryHierarchy(intel, cores=2)
        h.access(0, "x", 1024)
        assert h.access(0, "x", 1024) == "L1"

    def test_cross_core_sharing_via_llc(self, intel):
        """An object filled by core 0 hits the shared LLC from core 1."""
        h = MemoryHierarchy(intel, cores=2)
        h.access(0, "x", 1024)
        assert h.access(1, "x", 1024) == "LLC"

    def test_object_too_big_for_l1_served_by_l2(self, intel):
        h = MemoryHierarchy(intel, cores=1)
        size = intel.l1_bytes * 2  # fits L2, not L1
        h.access(0, "big", size)
        assert h.access(0, "big", size) == "L2"

    def test_arm_has_no_private_l2(self, arm):
        h = MemoryHierarchy(arm, cores=2)
        size = arm.l1_bytes * 2
        h.access(0, "big", size)
        assert h.access(0, "big", size) == "LLC"

    def test_stall_cycles_use_machine_latencies(self, intel):
        h = MemoryHierarchy(intel, cores=1)
        h.access(0, "x", 64)  # DRAM
        h.access(0, "x", 64)  # L1
        profile = h.stall_profile()
        assert profile["DRAM"] == intel.dram_latency_cycles
        assert profile["L1"] == intel.l1_latency_cycles

    def test_dram_bytes_accumulate(self, intel):
        h = MemoryHierarchy(intel, cores=1)
        h.access(0, "x", 100)
        h.write_back(50)
        assert h.dram_bytes == 150

    def test_invalid_core_rejected(self, intel):
        h = MemoryHierarchy(intel, cores=2)
        with pytest.raises(ValueError):
            h.access(2, "x", 64)

    def test_level_stats_consistency(self, intel):
        h = MemoryHierarchy(intel, cores=1)
        for i in range(10):
            h.access(0, i, 64)
        for i in range(10):
            h.access(0, i, 64)
        stats = h.level_stats()
        assert sum(s.hits for s in stats.values()) == 20


class TestFigure7Profiles:
    """The paper's Figure 7 claims, at reduced problem scale.

    Sizes are chosen so the C matrix exceeds the LLC (as in the paper's
    experiments) while the trace stays fast.
    """

    @pytest.fixture(scope="class")
    def intel_profiles(self):
        m = intel_i9_10900k()
        size = 2304  # C = 21 MB > 20 MiB LLC
        return profile_cake(m, size, size, size), profile_goto(m, size, size, size)

    def test_cake_stalls_are_mostly_local(self, intel_profiles):
        """Figure 7a: with CAKE the CPU is most often stalled on local
        memory; with MKL, on main memory."""
        cake, goto = intel_profiles
        assert cake.local_stall_fraction > 0.5
        assert goto.local_stall_fraction < 0.3

    def test_goto_stalls_more_on_dram(self, intel_profiles):
        cake, goto = intel_profiles
        assert goto.stall_profile["DRAM"] > 2 * cake.stall_profile["DRAM"]

    def test_goto_makes_more_dram_requests(self, intel_profiles):
        """Figure 7b's companion claim (~2.5x more DRAM requests)."""
        cake, goto = intel_profiles
        assert goto.dram_accesses > 2 * cake.dram_accesses

    def test_arm_profile_shifts_to_internal(self):
        """Figure 7b: CAKE serves more requests from L1/L2; ARMPL relies
        on main-memory transfers."""
        m = arm_cortex_a53()
        cake = profile_cake(m, 1000, 1000, 1000)
        goto = profile_goto(m, 1000, 1000, 1000)
        assert cake.dram_accesses < goto.dram_accesses / 2
        assert cake.l2_hits > goto.l2_hits

    def test_dram_bytes_tracked(self, intel_profiles):
        cake, goto = intel_profiles
        assert 0 < cake.dram_bytes < goto.dram_bytes
