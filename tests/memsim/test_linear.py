"""Line-granularity simulation tests and cross-granularity validation."""

import pytest

from repro.errors import ConfigurationError
from repro.machines import intel_i9_10900k
from repro.memsim.linear import (
    AddressSpace,
    LineHierarchy,
    line_profile_cake,
    line_profile_goto,
)
from repro.memsim import profile_cake, profile_goto


class TestAddressSpace:
    def test_disjoint_allocations(self):
        mem = AddressSpace()
        a = mem.alloc("a", 100)
        b = mem.alloc("b", 200)
        assert b >= a + 100
        assert mem.base("a") == a

    def test_alignment(self):
        mem = AddressSpace(alignment=64)
        mem.alloc("a", 1)
        assert mem.alloc("b", 1) % 64 == 0

    def test_double_alloc_rejected(self):
        mem = AddressSpace()
        mem.alloc("a", 10)
        with pytest.raises(ConfigurationError, match="already"):
            mem.alloc("a", 10)

    def test_unknown_buffer_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            AddressSpace().base("ghost")


class TestLineHierarchy:
    def test_walk_and_install(self, intel):
        h = LineHierarchy(intel, cores=2)
        assert h.access_line(0, 0) == "DRAM"
        assert h.access_line(0, 0) == "L1"
        assert h.access_line(1, 0) == "LLC"  # filled inclusively on core 0

    def test_range_touches_every_line(self, intel):
        h = LineHierarchy(intel, cores=1)
        h.access_range(0, 0, 256)  # 4 lines
        assert h.serves["DRAM"] == 4
        assert h.dram_bytes == 256

    def test_dram_fraction(self, intel):
        h = LineHierarchy(intel, cores=1)
        h.access_range(0, 0, 128)
        h.access_range(0, 0, 128)
        assert h.dram_fraction == pytest.approx(0.5)


class TestCrossGranularityValidation:
    """The methodological check: object-granularity profiles (used for
    Figure 7 at scale) must agree with the line-level ground truth at
    small scale — same winners, same traffic direction, DRAM volumes in
    the same ballpark."""

    @pytest.fixture(scope="class")
    def profiles(self):
        """A 1/16-scale machine with a matching problem: C (1.3 MB)
        exceeds the shrunken 1.25 MiB LLC, reproducing the capacity
        regime of Figure 7 at line-tractable size."""
        import dataclasses

        machine = dataclasses.replace(
            intel_i9_10900k(),
            cores=4,
            l1_bytes=4 * 1024,
            l2_bytes=16 * 1024,
            llc_bytes=768 * 1024,
        )
        n = 576
        return {
            "cake_obj": profile_cake(machine, n, n, n),
            "goto_obj": profile_goto(machine, n, n, n),
            "cake_line": line_profile_cake(machine, n, n, n),
            "goto_line": line_profile_goto(machine, n, n, n),
        }

    def test_goto_hits_dram_more_in_both_models(self, profiles):
        assert (
            profiles["goto_obj"].dram_bytes > profiles["cake_obj"].dram_bytes
        )
        assert (
            profiles["goto_line"].dram_bytes > profiles["cake_line"].dram_bytes
        )

    def test_dram_traffic_within_2x_across_granularities(self, profiles):
        for engine in ("cake", "goto"):
            obj = profiles[f"{engine}_obj"].dram_bytes
            line = profiles[f"{engine}_line"].dram_bytes
            assert 0.4 < line / obj < 2.5, (engine, obj, line)

    def test_cake_line_requests_mostly_local(self, profiles):
        """At line level too, CAKE's requests are served locally."""
        assert profiles["cake_line"].dram_fraction < 0.2
