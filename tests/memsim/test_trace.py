"""Tests for trace recording, replay, and serialisation."""

import pytest

from repro.machines import intel_i9_10900k
from repro.memsim import MemoryHierarchy, TraceRecorder, replay
from repro.memsim.trace import Access, dumps, loads


def small_workload(sink) -> None:
    sink.access(0, ("A", 0), 4096)
    sink.access(0, ("A", 0), 4096)
    sink.access(1, ("B", 1), 8192, write=True)
    sink.access(0, ("B", 1), 8192)


class TestTraceRecorder:
    def test_recording_is_transparent(self, intel):
        plain = MemoryHierarchy(intel, cores=2)
        small_workload(plain)

        recorded = TraceRecorder(MemoryHierarchy(intel, cores=2))
        small_workload(recorded)

        assert (
            recorded.hierarchy.level_stats()["L1"].hits
            == plain.level_stats()["L1"].hits
        )
        assert len(recorded.trace) == 4

    def test_write_back_forwarded(self, intel):
        rec = TraceRecorder(MemoryHierarchy(intel, cores=1))
        rec.write_back(128)
        assert rec.hierarchy.dram_bytes == 128


class TestReplay:
    def test_replay_reproduces_stats(self, intel):
        rec = TraceRecorder(MemoryHierarchy(intel, cores=2))
        small_workload(rec)

        fresh = replay(rec.trace, MemoryHierarchy(intel, cores=2))
        assert fresh.level_stats() == rec.hierarchy.level_stats()

    def test_replay_into_smaller_cache_changes_outcome(self, intel):
        """The what-if workflow: same trace, half the LLC."""
        import dataclasses

        rec = TraceRecorder(MemoryHierarchy(intel, cores=2))
        # Working set larger than a tiny LLC but fine for the real one.
        for i in range(50):
            rec.access(0, ("panel", i), 400_000)
        for i in range(50):
            rec.access(0, ("panel", i), 400_000)

        tiny = dataclasses.replace(intel, llc_bytes=1_000_000)
        starved = replay(rec.trace, MemoryHierarchy(tiny, cores=2))
        assert (
            starved.level_stats()["DRAM"].hits
            > rec.hierarchy.level_stats()["DRAM"].hits
        )


class TestSerialisation:
    def test_round_trip(self):
        trace = [
            Access(0, ("A", 1, 2), 1024),
            Access(3, ("C", 0, 0, 5), 64, write=True),
        ]
        assert list(loads(dumps(trace))) == trace

    def test_blank_lines_skipped(self):
        assert list(loads("\n\n")) == []

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed trace line 1"):
            list(loads("not a trace"))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            list(loads("0\tR\t0\t('A',)"))
