"""Tests for the top-level convenience API and package metadata."""

import numpy as np
import pytest

import repro
from repro import (
    CakeError,
    ConfigurationError,
    ScheduleError,
    SimulationError,
    cake_matmul,
    goto_matmul,
)

from tests.conftest import assert_product_close


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exception_hierarchy(self):
        assert issubclass(ConfigurationError, CakeError)
        assert issubclass(ScheduleError, CakeError)
        assert issubclass(SimulationError, CakeError)


class TestCakeMatmul:
    def test_default_machine_is_intel(self, rng):
        a = rng.standard_normal((100, 80))
        b = rng.standard_normal((80, 120))
        run = cake_matmul(a, b)
        assert run.machine.name == "Intel i9-10900K"
        assert_product_close(run.c, a, b)

    def test_explicit_machine_and_cores(self, arm, rng):
        a = rng.standard_normal((64, 48))
        b = rng.standard_normal((48, 72))
        run = cake_matmul(a, b, machine=arm, cores=2)
        assert run.cores == 2
        assert_product_close(run.c, a, b)

    def test_explicit_alpha(self, intel, rng):
        a = rng.standard_normal((64, 48))
        b = rng.standard_normal((48, 72))
        run = cake_matmul(a, b, machine=intel, alpha=2.0)
        assert run.plan_summary["alpha"] == 2.0
        assert_product_close(run.c, a, b)

    def test_too_many_cores_rejected(self, arm, rng):
        a = rng.standard_normal((16, 16))
        with pytest.raises(ConfigurationError, match="cores"):
            cake_matmul(a, a, machine=arm, cores=99)


class TestGotoMatmul:
    def test_roundtrip(self, rng):
        a = rng.standard_normal((90, 70))
        b = rng.standard_normal((70, 110))
        run = goto_matmul(a, b)
        assert run.engine == "goto"
        assert_product_close(run.c, a, b)

    def test_engines_agree_numerically(self, intel, rng):
        a = rng.standard_normal((130, 90))
        b = rng.standard_normal((90, 150))
        c1 = cake_matmul(a, b, machine=intel).c
        c2 = goto_matmul(a, b, machine=intel).c
        np.testing.assert_allclose(c1, c2, rtol=1e-9, atol=1e-11)
