"""Validation-path tests for MachineSpec and related edge cases."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.machines import (
    MEMORY_TECHNOLOGIES,
    SaturatingCurve,
    ddr_machine,
    extrapolated_machine,
    hbm_stacked_machine,
    intel_i9_10900k,
    nvm_machine,
)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("clock_hz", 0.0),
            ("flops_per_cycle_per_core", -1.0),
            ("l1_bytes", 0),
            ("llc_bytes", 0),
            ("dram_gb_per_s", 0.0),
            ("mr", 0),
            ("internal_traffic_factor", 0.0),
            ("external_traffic_factor", -2.0),
            ("element_bytes", 0),
        ],
    )
    def test_rejects_nonpositive(self, intel, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(intel, **{field: value})

    def test_with_cores_rejects_zero(self, intel):
        with pytest.raises(ValueError):
            intel.with_cores(0)

    def test_tile_flops_rejects_bad_kc(self, intel):
        with pytest.raises(ValueError):
            intel.tile_flops(0)


class TestExtrapolationEdges:
    def test_requires_saturating_curve(self, intel):
        class WeirdCurve:
            def bandwidth_gb_per_s(self, cores: int) -> float:
                return 1.0

        odd = dataclasses.replace(intel, internal_bw=WeirdCurve())
        with pytest.raises(ConfigurationError, match="SaturatingCurve"):
            extrapolated_machine(odd, 20)

    def test_protocol_accepts_custom_curves(self, intel):
        """Any object with the right method is a valid curve for use."""
        class FlatCurve:
            def bandwidth_gb_per_s(self, cores: int) -> float:
                return 123.0

        odd = dataclasses.replace(intel, internal_bw=FlatCurve())
        assert odd.internal_bytes_per_second(4) == 123.0e9


class TestMemoryTechnologies:
    def test_registry(self):
        assert set(MEMORY_TECHNOLOGIES) == {"hbm", "ddr", "nvm"}

    def test_only_memory_varies(self):
        """The compute complex is held fixed across the spectrum."""
        specs = [hbm_stacked_machine(), ddr_machine(), nvm_machine()]
        assert len({s.cores for s in specs}) == 1
        assert len({s.llc_bytes for s in specs}) == 1
        assert len({s.flops_per_cycle_per_core for s in specs}) == 1

    def test_bandwidth_ordering(self):
        assert (
            hbm_stacked_machine().dram_bytes_per_second
            > ddr_machine().dram_bytes_per_second
            > nvm_machine().dram_bytes_per_second
        )

    def test_nvm_has_huge_capacity(self):
        assert nvm_machine().dram_bytes > 8 * intel_i9_10900k().dram_bytes


class TestReportCsv:
    def test_csv_round_trip(self):
        import csv
        import io

        from repro.bench import ExperimentReport

        rep = ExperimentReport("x", "t")
        rep.add_table(["a", "b"], [[1, 2], [3, 4]])
        rep.add_table(["c"], [[5]])
        blocks = rep.csv().split("\n\n")
        assert len(blocks) == 2
        rows = list(csv.reader(io.StringIO(blocks[0])))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_cli_csv_flag(self, tmp_path):
        from repro.bench.cli import main

        assert main(["table2", "--out", str(tmp_path), "--csv"]) == 0
        assert (tmp_path / "table2.csv").exists()
        assert "Intel i9-10900K" in (tmp_path / "table2.csv").read_text()
