"""Tests for internal-bandwidth curves."""

import pytest
from hypothesis import given, strategies as st

from repro.machines import SaturatingCurve


class TestSaturatingCurve:
    def test_linear_region(self):
        c = SaturatingCurve(per_core_gb_per_s=50.0, knee_cores=6)
        assert c.bandwidth_gb_per_s(1) == 50.0
        assert c.bandwidth_gb_per_s(6) == 300.0

    def test_flat_past_knee(self):
        c = SaturatingCurve(per_core_gb_per_s=50.0, knee_cores=6)
        assert c.bandwidth_gb_per_s(10) == 300.0

    def test_partial_post_knee_slope(self):
        c = SaturatingCurve(
            per_core_gb_per_s=50.0, knee_cores=6, post_knee_fraction=0.5
        )
        assert c.bandwidth_gb_per_s(8) == 300.0 + 2 * 25.0

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValueError):
            SaturatingCurve(50.0, 6, post_knee_fraction=1.5)

    def test_rejects_nonpositive_cores_query(self):
        c = SaturatingCurve(50.0, 6)
        with pytest.raises(ValueError):
            c.bandwidth_gb_per_s(0)

    @given(
        st.floats(0.1, 500.0),
        st.integers(1, 64),
        st.floats(0.0, 1.0),
        st.integers(1, 128),
    )
    def test_monotone_nondecreasing(self, per_core, knee, frac, cores):
        c = SaturatingCurve(per_core, knee, frac)
        assert c.bandwidth_gb_per_s(cores + 1) >= c.bandwidth_gb_per_s(cores)

    def test_linearised_removes_knee(self):
        c = SaturatingCurve(50.0, 6, post_knee_fraction=0.1)
        lin = c.linearised()
        assert lin.bandwidth_gb_per_s(20) == pytest.approx(1000.0)
        # agrees with the original inside the linear region
        assert lin.bandwidth_gb_per_s(4) == c.bandwidth_gb_per_s(4)
