"""Tests for MachineSpec and the Table 2 presets."""

import pytest

from repro.machines import (
    PRESET_NAMES,
    amd_ryzen_9_5950x,
    arm_cortex_a53,
    extrapolated_machine,
    intel_i9_10900k,
    preset,
)
from repro.util.units import BYTES_PER_GIB, BYTES_PER_KIB, BYTES_PER_MIB


class TestTable2:
    """Every preset must match its row of Table 2 exactly."""

    def test_intel_row(self):
        m = intel_i9_10900k()
        assert m.l1_bytes == 32 * BYTES_PER_KIB
        assert m.l2_bytes == 256 * BYTES_PER_KIB
        assert m.llc_bytes == 20 * BYTES_PER_MIB
        assert m.dram_bytes == 32 * BYTES_PER_GIB
        assert m.cores == 10
        assert m.dram_gb_per_s == 40.0

    def test_amd_row(self):
        m = amd_ryzen_9_5950x()
        assert m.l1_bytes == 32 * BYTES_PER_KIB
        assert m.l2_bytes == 512 * BYTES_PER_KIB
        assert m.llc_bytes == 64 * BYTES_PER_MIB
        assert m.dram_bytes == 128 * BYTES_PER_GIB
        assert m.cores == 16
        assert m.dram_gb_per_s == 47.0

    def test_arm_row(self):
        m = arm_cortex_a53()
        assert m.l1_bytes == 16 * BYTES_PER_KIB
        assert m.l2_bytes == 512 * BYTES_PER_KIB
        assert m.llc_is_l2  # no L3 on the A53
        assert m.dram_bytes == 1 * BYTES_PER_GIB
        assert m.cores == 4
        assert m.dram_gb_per_s == 2.0

    def test_preset_lookup(self):
        assert preset("intel-i9-10900k").name == "Intel i9-10900K"
        assert set(PRESET_NAMES) == {
            "intel-i9-10900k",
            "amd-ryzen-9-5950x",
            "arm-cortex-a53",
        }

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown machine preset"):
            preset("pentium-4")


class TestSpecDerived:
    def test_llc_elements(self, intel):
        assert intel.llc_elements == 20 * BYTES_PER_MIB // 4

    def test_arm_per_core_cache_is_l1(self, arm):
        """With the shared L2 as LLC, the per-core level is the L1."""
        assert arm.l2_elements == arm.l1_elements == 16 * BYTES_PER_KIB // 4

    def test_peak_gflops(self, intel):
        assert intel.peak_gflops() == pytest.approx(
            10 * 3.7 * 30.0, rel=1e-9
        )
        assert intel.peak_gflops(5) == pytest.approx(intel.peak_gflops() / 2)

    def test_tile_rate_scales_inverse_kc(self, intel):
        assert intel.tile_ops_per_second(100) == pytest.approx(
            2 * intel.tile_ops_per_second(200)
        )

    def test_with_cores(self, intel):
        m5 = intel.with_cores(5)
        assert m5.cores == 5
        assert m5.llc_bytes == intel.llc_bytes

    def test_dram_efficiency_bounds(self, intel):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(intel, dram_efficiency=1.5)


class TestExtrapolation:
    """The Figures 10-12 dotted-line machine growth assumptions."""

    def test_restriction_is_plain(self, intel):
        m = extrapolated_machine(intel, 5)
        assert m.cores == 5
        assert m.llc_bytes == intel.llc_bytes

    def test_llc_grows_quadratically(self, intel):
        m = extrapolated_machine(intel, 20)
        assert m.llc_bytes == intel.llc_bytes * 4

    def test_internal_bw_linearised(self, intel):
        m = extrapolated_machine(intel, 20)
        per_core = intel.internal_bw.per_core_gb_per_s
        assert m.internal_bw.bandwidth_gb_per_s(20) == pytest.approx(
            20 * per_core
        )

    def test_dram_bw_fixed(self, intel):
        m = extrapolated_machine(intel, 20)
        assert m.dram_gb_per_s == intel.dram_gb_per_s
