"""Tests for the discrete-event core."""

import pytest

from repro.archsim import Simulator
from repro.errors import SimulationError


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(5.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.at(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.after(2.0, lambda: log.append(("second", sim.now)))

        sim.at(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.pending == 1

    def test_past_event_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: sim.at(1.0, lambda: None))
        with pytest.raises(SimulationError, match="clock"):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="negative"):
            sim.after(-1.0, lambda: None)

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.after(1.0, forever)

        sim.at(0.0, forever)
        with pytest.raises(SimulationError, match="events"):
            sim.run(max_events=100)
