"""Failure-injection tests for the simulator modules.

Section 6.2 argues the simulator's value is catching corner cases that
are hard to analyse; these tests drive the modules into the invalid
states the packet protocol must reject.
"""

import pytest

from repro.archsim import CakeSystem, Packet
from repro.archsim.modules import Core, ExternalMemory, LocalMemory
from repro.errors import SimulationError
from repro.schedule.space import BlockCoord


@pytest.fixture
def system():
    return CakeSystem(2, 2, ext_bw_tiles_per_cycle=4.0)


BLOCK = BlockCoord(0, 0, 0)


class TestExternalMemory:
    def test_rejects_non_c_packets(self, system):
        ext = ExternalMemory("ext2", system, 4.0)
        with pytest.raises(SimulationError, match="unexpected A"):
            ext.receive(Packet(kind="A", route=(), block=BLOCK))

    def test_rejects_nonpositive_bandwidth(self, system):
        with pytest.raises(ValueError, match="bandwidth"):
            ExternalMemory("ext2", system, 0.0)

    def test_collects_results(self, system):
        ext = ExternalMemory("ext2", system, 4.0)
        ext.receive(Packet(kind="C", route=(), block=BLOCK, row=1, t=2, value=7.0))
        assert ext.results[(1, 2)] == 7.0
        assert ext.tiles_received == 1


class TestLocalMemory:
    def test_rejects_c_packets(self, system):
        local = LocalMemory("local2", system)
        with pytest.raises(SimulationError, match="cannot handle C"):
            local.receive(Packet(kind="C", route=(), block=BLOCK))


class TestCore:
    def test_b_before_a_rejected(self, system):
        core = Core("core_x", system, 0, 0)
        # The pump runs synchronously on the first enqueue and raises.
        with pytest.raises(SimulationError, match="before its A tile"):
            core.receive(
                Packet(kind="B", route=(), block=BLOCK, col=0, t=0, value=1.0)
            )

    def test_rejects_c_packets(self, system):
        core = Core("core_x", system, 0, 0)
        core.receive(Packet(kind="A", route=(), block=BLOCK, row=0, col=0, value=1.0))
        core.receive(Packet(kind="C", route=(), block=BLOCK))
        with pytest.raises(SimulationError, match="cannot handle"):
            system.sim.run()


class TestRouting:
    def test_unknown_module_rejected(self, system):
        pkt = Packet(kind="A", route=("nonexistent",), block=BLOCK)
        with pytest.raises(SimulationError, match="unknown module"):
            system.send(pkt, 1.0)

    def test_extent_queries_need_active_matmul(self, system):
        with pytest.raises(SimulationError, match="no matmul in flight"):
            system.active_rows(BLOCK)
