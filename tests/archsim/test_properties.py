"""Property tests tying the packet simulator to the schedule analyzer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.archsim import CakeSystem
from repro.core import CBBlock
from repro.schedule import (
    BlockGrid,
    ComputationSpace,
    analyze_reuse,
    kfirst_schedule,
)


class TestSimulatorMatchesAnalyzer:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(2, 12), st.integers(2, 12), st.integers(2, 12),
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 6),
    )
    def test_external_traffic_tile_exact(self, m, n, k, rows, cols, n_block):
        """For any geometry, the DES streams exactly the analyzer's
        input-surface IO and returns exactly M*N result tiles."""
        rng = np.random.default_rng(m * 31 + n * 7 + k + rows)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        sys_ = CakeSystem(
            rows, cols, ext_bw_tiles_per_cycle=4.0, n_block=n_block
        )
        rep = sys_.run_matmul(a, b)
        np.testing.assert_allclose(rep.c, a @ b, rtol=1e-9, atol=1e-12)

        grid = BlockGrid(
            ComputationSpace(m, n, k),
            CBBlock(min(rows, m), min(n_block, n), min(cols, k)),
        )
        io = analyze_reuse(grid, kfirst_schedule(grid))
        assert rep.ext_tiles_out == io.io_a + io.io_b
        assert rep.ext_tiles_in == m * n

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 10), st.floats(0.5, 32.0))
    def test_total_multiplies_invariant(self, size, bw):
        """Work conservation: exactly M*N*K tile multiplies retire,
        regardless of bandwidth or grid."""
        rng = np.random.default_rng(size)
        a = rng.standard_normal((size, size))
        b = rng.standard_normal((size, size))
        rep = CakeSystem(3, 3, ext_bw_tiles_per_cycle=bw).run_matmul(a, b)
        assert rep.total_multiplies == size**3
