"""Tests for the simulator's utilisation statistics."""

import numpy as np
import pytest

from repro.archsim import CakeSystem


def run(bw: float, size: int = 16, grid: int = 4):
    rng = np.random.default_rng(9)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    return CakeSystem(grid, grid, ext_bw_tiles_per_cycle=bw).run_matmul(a, b)


class TestUtilisation:
    def test_total_multiplies_equals_macs(self):
        rep = run(bw=8.0)
        assert rep.total_multiplies == 16 * 16 * 16

    def test_every_core_worked(self):
        rep = run(bw=8.0)
        assert len(rep.core_multiplies) == 16
        assert all(m > 0 for m in rep.core_multiplies.values())

    def test_balanced_grid_has_equal_shares(self):
        rep = run(bw=8.0)
        shares = set(rep.core_multiplies.values())
        assert len(shares) == 1  # 16 divides evenly over a 4x4 grid

    def test_compute_bound_means_high_grid_utilisation(self):
        rep = run(bw=100.0)
        assert rep.grid_utilisation > 0.9

    def test_io_bound_means_low_grid_utilisation_high_link(self):
        rep = run(bw=1.0)
        assert rep.grid_utilisation < 0.5
        assert rep.external_link_utilisation > 0.9

    def test_ample_bandwidth_leaves_link_idle(self):
        rep = run(bw=100.0)
        assert rep.external_link_utilisation < 0.3

    def test_utilisation_bounded(self):
        for bw in (1.0, 4.0, 16.0):
            rep = run(bw=bw)
            assert 0.0 < rep.grid_utilisation <= 1.0
            assert 0.0 < rep.external_link_utilisation <= 1.0 + 1e-9
