"""End-to-end tests of the packet-based architecture simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.archsim import CakeSystem, Packet
from repro.errors import SimulationError
from repro.schedule.space import BlockCoord


class TestPacket:
    def test_route_advances(self):
        p = Packet(kind="A", route=("local", "core_0_0"), block=BlockCoord(0, 0, 0))
        assert p.next_hop() == "local"
        assert p.advance().next_hop() == "core_0_0"

    def test_exhausted_route_rejected(self):
        p = Packet(kind="A", route=(), block=BlockCoord(0, 0, 0))
        with pytest.raises(SimulationError, match="exhausted"):
            p.next_hop()

    def test_redirect(self):
        p = Packet(kind="B", route=("local",), block=BlockCoord(0, 0, 0))
        assert p.redirect("core_1_2").route == ("core_1_2",)


class TestNumericalCorrectness:
    """Section 6.2's purpose: validate the CB design and schedule."""

    def test_exact_grid_fit(self, rng):
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 8))
        rep = CakeSystem(4, 2, ext_bw_tiles_per_cycle=4.0).run_matmul(a, b)
        np.testing.assert_allclose(rep.c, a @ b, rtol=1e-12)

    def test_ragged_edges(self, rng):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((5, 9))
        rep = CakeSystem(3, 2, ext_bw_tiles_per_cycle=4.0).run_matmul(a, b)
        np.testing.assert_allclose(rep.c, a @ b, rtol=1e-12)

    def test_grid_larger_than_problem(self, rng):
        a = rng.standard_normal((2, 2))
        b = rng.standard_normal((2, 2))
        rep = CakeSystem(8, 8, ext_bw_tiles_per_cycle=4.0).run_matmul(a, b)
        np.testing.assert_allclose(rep.c, a @ b, rtol=1e-12)

    def test_wide_blocks_alpha_two(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 12))
        sys_ = CakeSystem(3, 3, ext_bw_tiles_per_cycle=4.0, n_block=6)
        rep = sys_.run_matmul(a, b)
        np.testing.assert_allclose(rep.c, a @ b, rtol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(1, 10), st.integers(1, 10), st.integers(1, 10),
        st.integers(1, 4), st.integers(1, 4),
    )
    def test_any_shape_any_grid(self, m, n, k, rows, cols):
        rng = np.random.default_rng(m * 7919 + n * 13 + k)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        rep = CakeSystem(rows, cols, ext_bw_tiles_per_cycle=3.0).run_matmul(a, b)
        np.testing.assert_allclose(rep.c, a @ b, rtol=1e-10, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        sys_ = CakeSystem(2, 2, ext_bw_tiles_per_cycle=1.0)
        with pytest.raises(ValueError):
            sys_.run_matmul(np.zeros((2, 3)), np.zeros((2, 3)))


class TestTiming:
    """Measured cycles versus the Section 3 closed forms."""

    def _square_run(self, bw, size=16, grid=4):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((size, size))
        b = rng.standard_normal((size, size))
        return CakeSystem(grid, grid, ext_bw_tiles_per_cycle=bw).run_matmul(a, b)

    def test_compute_bound_total(self):
        """With ample bandwidth, total time ~ multiplies per core."""
        rep = self._square_run(bw=100.0)
        per_core = 16 * 16 * 16 / 16
        assert per_core <= rep.total_cycles < per_core * 1.1

    def test_io_bound_total(self):
        """With scarce bandwidth, total time ~ external tiles / BW."""
        rep = self._square_run(bw=2.0)
        io_time = rep.ext_tiles_out / 2.0
        assert io_time * 0.95 <= rep.total_cycles < io_time * 1.15

    def test_crossover_bandwidth(self):
        """Block IO = A + B = rows*cols + n_block*cols tiles; compute =
        n_block cycles; the balance point is BW = (rows+n_block)*cols /
        n_block = 8 tiles/cycle for a 4x4 grid with alpha=1 — Eq. 2."""
        slow = self._square_run(bw=4.0)
        balanced = self._square_run(bw=8.0)
        fast = self._square_run(bw=100.0)
        assert slow.total_cycles > balanced.total_cycles
        # Past the Eq. 2 floor, extra bandwidth barely helps.
        assert balanced.total_cycles < fast.total_cycles * 1.35

    def test_monotone_in_bandwidth(self):
        times = [self._square_run(bw).total_cycles for bw in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)

    def test_steady_block_cycles_compute_bound(self):
        rep = self._square_run(bw=100.0)
        # n_block = 4 cycles per block in steady state, small tolerance.
        assert rep.steady_block_cycles == pytest.approx(4.0, rel=0.15)


class TestSurfaceReuseIsPhysical:
    def test_external_tiles_match_reuse_analyzer(self, rng):
        """The simulator's external traffic equals the schedule
        analyzer's input-surface IO prediction, tile for tile."""
        from repro.core import CBBlock
        from repro.schedule import (
            BlockGrid,
            ComputationSpace,
            analyze_reuse,
            kfirst_schedule,
        )

        m, n, k = 12, 12, 12
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        sys_ = CakeSystem(4, 4, ext_bw_tiles_per_cycle=4.0)
        rep = sys_.run_matmul(a, b)

        grid = BlockGrid(ComputationSpace(m, n, k), CBBlock(4, 4, 4))
        io = analyze_reuse(grid, kfirst_schedule(grid))
        assert rep.ext_tiles_out == io.io_a + io.io_b
        assert rep.ext_tiles_in == m * n  # C written back exactly once

    def test_reuse_reduces_traffic_vs_no_reuse(self, rng):
        """Streamed tiles must be fewer than the no-reuse total."""
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        rep = CakeSystem(4, 4, ext_bw_tiles_per_cycle=4.0).run_matmul(a, b)
        grid_blocks = 3 * 3 * 3
        no_reuse = grid_blocks * (16 + 16)  # every block fetches A and B
        assert rep.ext_tiles_out < no_reuse
