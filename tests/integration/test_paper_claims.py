"""End-to-end integration tests: the paper's headline claims as a story.

Each test exercises several packages together at reduced problem sizes —
the same chain the benchmarks run at paper scale. If one of these fails,
the reproduction's *narrative* is broken, not just a unit.
"""

import numpy as np
import pytest

from repro.gemm import CakeGemm, GotoGemm
from repro.machines import arm_cortex_a53, extrapolated_machine, intel_i9_10900k
from repro.memsim import profile_cake, profile_goto
from repro.perfmodel import (
    cake_optimal_dram_gb_per_s,
    estimate_energy,
    predict_cake,
    predict_goto,
)


class TestAbstractClaim:
    """'CB blocks can maintain constant external bandwidth as computation
    throughput increases' (Abstract)."""

    def test_constant_bandwidth_scaling(self, intel):
        n = 5760
        cake_bws, cake_gf, goto_bws = [], [], []
        for cores in (2, 4, 6, 8, 10):
            cake = predict_cake(intel, n, n, n, cores=cores)
            goto = predict_goto(intel, n, n, n, cores=cores)
            cake_bws.append(cake.dram_gb_per_s)
            cake_gf.append(cake.gflops)
            goto_bws.append(goto.dram_gb_per_s)
        # CAKE's throughput quadruples-plus while its bandwidth stays
        # within a 2x band (the residual growth is the packing burst's
        # share of a shrinking runtime) — GOTO's bandwidth grows 4x+
        # over the same sweep.
        assert cake_gf[-1] > 4 * cake_gf[0]
        assert max(cake_bws) / min(cake_bws) < 2.0
        assert goto_bws[-1] / goto_bws[0] > 3.5


class TestMemoryWallClaim:
    """'CAKE outperforms state-of-the-art libraries ... on systems where
    external bandwidth represents a bottleneck' (Abstract)."""

    def test_arm_end_to_end(self, arm):
        n = 1536
        cake = predict_cake(arm, n, n, n)
        goto = predict_goto(arm, n, n, n)
        # Throughput win at full cores ...
        assert cake.gflops > 1.3 * goto.gflops
        # ... achieved with LESS DRAM bandwidth, not more.
        assert cake.dram_gb_per_s < goto.dram_gb_per_s
        # And the bottleneck diagnosis matches the paper's: GOTO's blocks
        # are external-bandwidth-bound; CAKE's are not.
        assert goto.bound_blocks["external"] > goto.bound_blocks["compute"]
        assert cake.bound_blocks["external"] < len(
            CakeGemm(arm).plan_for(n, n, n).schedule()
        )


class TestDropInClaim:
    """'a drop-in replacement for MM calls ... that does not require
    manual tuning' (Contributions)."""

    def test_no_tuning_anywhere(self, machine, rng):
        """One call, any platform, correct numerics and a sane plan —
        the user never supplies a tile size."""
        a = rng.standard_normal((384, 256))
        b = rng.standard_normal((256, 320))
        run = CakeGemm(machine).multiply(a, b)
        scale = np.abs(a @ b).max()
        np.testing.assert_allclose(
            run.c, a @ b, rtol=1e-8, atol=1e-9 * scale
        )
        assert run.plan_summary["mc"] >= machine.mr


class TestTheoryPracticeAgreement:
    """The dashed 'CAKE optimal' curve and observed usage must cohere
    (Figures 10a/11a)."""

    @pytest.mark.parametrize("machine_fn", [intel_i9_10900k, arm_cortex_a53])
    def test_observed_brackets_optimal(self, machine_fn):
        machine = machine_fn()
        n = 1920
        opt = cake_optimal_dram_gb_per_s(machine, m=n, n=n, k=n)
        obs = predict_cake(machine, n, n, n).dram_gb_per_s
        # Observed sits at or above optimal (write-back + packing),
        # never an order of magnitude off.
        assert 0.8 * opt < obs < 4 * opt


class TestMemoryDemandShift:
    """Figure 7 + the conclusion's energy argument, as one story: CAKE
    moves demand from external to internal memory, and that trade is
    worth paying."""

    def test_stall_energy_coherence(self, intel):
        n = 2304
        cake_prof = profile_cake(intel, n, n, n)
        goto_prof = profile_goto(intel, n, n, n)
        assert cake_prof.local_stall_fraction > goto_prof.local_stall_fraction

        cake_energy = estimate_energy(CakeGemm(intel).analyze(n, n, n))
        goto_energy = estimate_energy(GotoGemm(intel).analyze(n, n, n))
        assert cake_energy.dram_fraction < goto_energy.dram_fraction
        assert cake_energy.total_joules < goto_energy.total_joules


class TestExtrapolationClaim:
    """'With sufficient local memory, CAKE will achieve the maximum
    possible computation throughput for a given number of cores' while
    GOTO 'relies on increased DRAM bandwidth' (Section 5.2.5)."""

    def test_grown_machine_contrast(self, intel):
        n = 5760
        grown = extrapolated_machine(intel, 20)
        cake = predict_cake(grown, n, n, n)
        goto = predict_goto(grown, n, n, n)
        # CAKE rides the grown local memory to near-peak ...
        assert cake.gflops > 0.8 * grown.peak_gflops()
        # ... while GOTO is capped by the fixed DRAM interface.
        assert goto.gflops < cake.gflops
        assert goto.bound_blocks["external"] > 0
