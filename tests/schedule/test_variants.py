"""Tests for the alternative schedules (ablation baselines)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CBBlock
from repro.schedule import (
    BlockGrid,
    ComputationSpace,
    SCHEDULE_BUILDERS,
    build_schedule,
    mfirst_schedule,
    naive_schedule,
    nfirst_schedule,
)
from repro.schedule.reuse import validate_schedule

grids = st.builds(
    lambda m, n, k, bm, bn, bk: BlockGrid(
        ComputationSpace(m, n, k), CBBlock(bm, bn, bk)
    ),
    st.integers(1, 30),
    st.integers(1, 30),
    st.integers(1, 30),
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(1, 6),
)


class TestAllVariantsAreValidSchedules:
    @settings(max_examples=40)
    @given(grids, st.sampled_from(sorted(SCHEDULE_BUILDERS)))
    def test_complete_coverage(self, g, name):
        validate_schedule(g, build_schedule(name, g))

    def test_unknown_name_rejected(self):
        g = BlockGrid(ComputationSpace(4, 4, 4), CBBlock(2, 2, 2))
        with pytest.raises(ValueError, match="unknown schedule"):
            build_schedule("zigzag", g)


class TestNaive:
    def test_always_ascending(self):
        g = BlockGrid(ComputationSpace(8, 8, 8), CBBlock(4, 4, 4))
        order = naive_schedule(g)
        # every K run starts at ki=0: no direction flips
        for i in range(0, len(order), g.kb):
            assert order[i].ki == 0


class TestInnermostDimension:
    def test_mfirst_sweeps_m_innermost(self):
        g = BlockGrid(ComputationSpace(12, 8, 8), CBBlock(4, 4, 4))
        order = mfirst_schedule(g)
        first = order[: g.mb]
        assert len({(c.ki, c.ni) for c in first}) == 1
        assert sorted(c.mi for c in first) == list(range(g.mb))

    def test_nfirst_sweeps_n_innermost(self):
        g = BlockGrid(ComputationSpace(8, 12, 8), CBBlock(4, 4, 4))
        order = nfirst_schedule(g)
        first = order[: g.nb]
        assert len({(c.ki, c.mi) for c in first}) == 1
        assert sorted(c.ni for c in first) == list(range(g.nb))
