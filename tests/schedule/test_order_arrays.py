"""Vectorized schedule enumeration and the batched reuse analyzer.

Every array builder must reproduce its scalar builder's block sequence
element for element, and :func:`analyze_reuse_batch` must match
:func:`analyze_reuse` field for field — under both residency models, for
every schedule variant, on remainder-heavy grids (prime dimensions leave
a ragged block on all three axes, the hardest case for closed forms).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.cb_block import CBBlock
from repro.errors import ScheduleError
from repro.schedule import (
    ORDER_ARRAY_BUILDERS,
    SCHEDULE_BUILDERS,
    BlockGrid,
    ComputationSpace,
    analyze_reuse,
    analyze_reuse_batch,
    build_order_arrays,
    build_schedule,
    kfirst_order_arrays,
    kfirst_schedule,
    occurrence_index,
    validate_order_arrays,
)

VARIANTS = sorted(SCHEDULE_BUILDERS)


def _grid(m, n, k, bm, bn, bk):
    return BlockGrid(ComputationSpace(m, n, k), CBBlock(m=bm, n=bn, k=bk))


GRIDS = [
    _grid(8, 8, 8, 4, 4, 4),        # uniform
    _grid(97, 53, 31, 16, 16, 8),   # prime extents: ragged on all axes
    _grid(5, 40, 3, 2, 7, 2),       # M < N and K smaller than one block
    _grid(40, 5, 12, 7, 2, 5),      # M > N flips the outer loop
    _grid(6, 6, 6, 9, 9, 9),        # single block
    _grid(1, 1, 17, 1, 1, 4),       # degenerate: K-only grid
]


def _report_fields(report):
    return {
        name: getattr(report, name)
        for name in (
            "io_a", "io_b", "io_c_spill", "io_c_refetch", "io_c_final",
            "reuse_a", "reuse_b", "reuse_c", "blocks",
        )
    }


class TestOrderArrays:
    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_matches_scalar_builder(self, grid, variant):
        assert (
            build_order_arrays(variant, grid).coords()
            == build_schedule(variant, grid)
        )

    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("outer", ["n", "m"])
    def test_kfirst_outer_override(self, grid, outer):
        assert (
            kfirst_order_arrays(grid, outer=outer).coords()
            == kfirst_schedule(grid, outer=outer)
        )

    def test_builders_cover_same_names(self):
        assert sorted(ORDER_ARRAY_BUILDERS) == VARIANTS

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            build_order_arrays("zigzag", GRIDS[0])

    @given(
        st.integers(1, 40), st.integers(1, 40), st.integers(1, 40),
        st.integers(1, 12), st.integers(1, 12), st.integers(1, 12),
    )
    def test_matches_scalar_builder_hypothesis(self, m, n, k, bm, bn, bk):
        grid = _grid(m, n, k, bm, bn, bk)
        for variant in VARIANTS:
            assert (
                build_order_arrays(variant, grid).coords()
                == build_schedule(variant, grid)
            )


class TestValidateOrderArrays:
    def test_accepts_every_variant(self):
        for grid in GRIDS:
            for variant in VARIANTS:
                validate_order_arrays(grid, build_order_arrays(variant, grid))

    def test_rejects_duplicate_block(self):
        grid = GRIDS[0]
        order = kfirst_order_arrays(grid)
        mi = order.mi.copy()
        mi[-1] = mi[0]
        ni = order.ni.copy()
        ni[-1] = ni[0]
        ki = order.ki.copy()
        ki[-1] = ki[0]
        broken = type(order)(mi=mi, ni=ni, ki=ki)
        with pytest.raises(ScheduleError):
            validate_order_arrays(grid, broken)

    def test_rejects_truncated_schedule(self):
        grid = GRIDS[0]
        order = kfirst_order_arrays(grid)
        short = type(order)(mi=order.mi[:-1], ni=order.ni[:-1], ki=order.ki[:-1])
        with pytest.raises(ScheduleError, match="covers"):
            validate_order_arrays(grid, short)

    def test_rejects_out_of_range_coordinate(self):
        grid = GRIDS[0]
        order = kfirst_order_arrays(grid)
        mi = order.mi.copy()
        mi[0] = grid.mb
        with pytest.raises(ScheduleError, match="outside"):
            validate_order_arrays(grid, type(order)(mi=mi, ni=order.ni, ki=order.ki))


class TestOccurrenceIndex:
    def test_matches_progress_dict(self):
        keys = np.array([3, 1, 3, 3, 1, 2, 3, 2])
        progress: dict[int, int] = {}
        expected = []
        for key in keys.tolist():
            expected.append(progress.get(key, 0))
            progress[key] = progress.get(key, 0) + 1
        assert occurrence_index(keys).tolist() == expected

    def test_empty(self):
        assert len(occurrence_index(np.array([], dtype=np.int64))) == 0


class TestAnalyzeReuseBatch:
    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_adjacency_model_matches_scalar(self, grid, variant):
        scalar = analyze_reuse(grid, build_schedule(variant, grid))
        batch = analyze_reuse_batch(grid, build_order_arrays(variant, grid))
        assert _report_fields(batch) == _report_fields(scalar)

    @pytest.mark.parametrize("grid", GRIDS)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("budget_blocks", [0.5, 1.5, 4.0])
    def test_capacity_model_matches_scalar(self, grid, variant, budget_blocks):
        """LRU replay equals SurfaceResidency at tight and slack budgets."""
        nominal = grid.nominal
        footprint = nominal.m * nominal.n + 2 * (
            nominal.m * nominal.k + nominal.k * nominal.n
        )
        capacity = max(int(footprint * budget_blocks), 1)
        scalar = analyze_reuse(
            grid, build_schedule(variant, grid), capacity_elements=capacity
        )
        batch = analyze_reuse_batch(
            grid,
            build_order_arrays(variant, grid),
            capacity_elements=capacity,
        )
        assert _report_fields(batch) == _report_fields(scalar)

    @given(
        st.integers(1, 30), st.integers(1, 30), st.integers(1, 30),
        st.integers(1, 10), st.integers(1, 10), st.integers(1, 10),
        st.sampled_from(VARIANTS),
        st.floats(0.3, 5.0),
    )
    def test_both_models_match_scalar_hypothesis(
        self, m, n, k, bm, bn, bk, variant, budget_blocks
    ):
        grid = _grid(m, n, k, bm, bn, bk)
        order = build_schedule(variant, grid)
        arrays = build_order_arrays(variant, grid)
        assert _report_fields(
            analyze_reuse_batch(grid, arrays)
        ) == _report_fields(analyze_reuse(grid, order))
        nominal = grid.nominal
        footprint = nominal.m * nominal.n + 2 * (
            nominal.m * nominal.k + nominal.k * nominal.n
        )
        capacity = max(int(footprint * budget_blocks), 1)
        assert _report_fields(
            analyze_reuse_batch(grid, arrays, capacity_elements=capacity)
        ) == _report_fields(
            analyze_reuse(grid, order, capacity_elements=capacity)
        )
