"""Tests for the surface-reuse/IO analyzer (Section 2.2 claims)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CBBlock
from repro.errors import ScheduleError
from repro.schedule import (
    BlockCoord,
    BlockGrid,
    ComputationSpace,
    analyze_reuse,
    kfirst_schedule,
    mfirst_schedule,
    naive_schedule,
    nfirst_schedule,
)

grids = st.builds(
    lambda m, n, k, bm, bn, bk: BlockGrid(
        ComputationSpace(m, n, k), CBBlock(bm, bn, bk)
    ),
    st.integers(2, 40),
    st.integers(2, 40),
    st.integers(2, 40),
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(1, 6),
)


@st.composite
def cb_shaped_grids(draw):
    """Grids of properly CB-shaped blocks tiling the space exactly.

    The paper's K-first-optimality argument relies on CB shaping: the
    partial-C surface is the *largest* surface of a block (``m, n >= k``,
    Section 3), so spilling it is the most expensive choice. It is not a
    claim about arbitrary block shapes — for pancake-thin blocks a
    partial spill can cost less than a forfeited B fetch. It also needs
    an actual reduction to schedule (``kb >= 2``); with a single
    K-slice there are no partials and the orders degenerate.
    """
    bk = draw(st.integers(1, 4))
    bm = draw(st.integers(bk, 6))
    bn = draw(st.integers(bk, 6))
    mb = draw(st.integers(1, 6))
    nb = draw(st.integers(1, 6))
    kb = draw(st.integers(2, 6))
    return BlockGrid(
        ComputationSpace(bm * mb, bn * nb, bk * kb), CBBlock(bm, bn, bk)
    )


def uniform_grid(mb=3, nb=3, kb=3, s=4) -> BlockGrid:
    return BlockGrid(
        ComputationSpace(mb * s, nb * s, kb * s), CBBlock(s, s, s)
    )


class TestValidation:
    def test_duplicate_block_rejected(self):
        g = uniform_grid()
        order = kfirst_schedule(g)
        with pytest.raises(ScheduleError, match="more than once"):
            analyze_reuse(g, order + [order[0]])

    def test_missing_block_rejected(self):
        g = uniform_grid()
        with pytest.raises(ScheduleError, match="covers"):
            analyze_reuse(g, kfirst_schedule(g)[:-1])


class TestKFirstIO:
    def test_no_partial_spills(self):
        """K-first completes every reduction before moving on, so partial
        C surfaces never round-trip through external memory."""
        g = uniform_grid()
        r = analyze_reuse(g, kfirst_schedule(g))
        assert r.io_c_spill == 0
        assert r.io_c_refetch == 0

    def test_final_c_written_exactly_once(self):
        g = uniform_grid(3, 4, 5, 4)
        r = analyze_reuse(g, kfirst_schedule(g))
        assert r.io_c_final == g.space.m * g.space.n

    def test_turn_reuse_counts(self):
        """Every m-turn reuses B, every n-turn reuses A (Section 2.2)."""
        g = uniform_grid(3, 4, 5, 4)
        r = analyze_reuse(g, kfirst_schedule(g))
        # (mb*nb - nb) m-turns reuse B; (nb - 1) n-turns reuse A
        assert r.reuse_b == g.nb * (g.mb - 1)
        assert r.reuse_a == g.nb - 1
        # within-run C reuses: (kb-1) per run
        assert r.reuse_c == g.mb * g.nb * (g.kb - 1)

    def test_closed_form_io(self):
        """K-first external IO:
        A: each A panel fetched once per n-sweep minus turn reuses;
        B: each B panel fetched once per m-sweep minus turn reuses;
        C: written once."""
        g = uniform_grid(3, 4, 5, 4)
        r = analyze_reuse(g, kfirst_schedule(g))
        s = 4
        m, n, k = g.space.m, g.space.n, g.space.k
        expected_a = m * k * g.nb - (g.nb - 1) * s * s
        expected_b = k * n * g.mb - g.nb * (g.mb - 1) * s * s
        assert r.io_a == expected_a
        assert r.io_b == expected_b

    @settings(max_examples=50, deadline=None)
    @given(grids)
    def test_kfirst_never_spills(self, g):
        r = analyze_reuse(g, kfirst_schedule(g))
        assert r.io_c_spill == 0
        assert r.io_c_refetch == 0
        assert r.io_c_final == g.space.m * g.space.n


class TestScheduleComparison:
    @settings(max_examples=40, deadline=None)
    @given(grids)
    def test_kfirst_beats_or_ties_naive(self, g):
        """The direction flips can only save IO, never cost it.

        Holds for *any* grid (not only CB-shaped blocks): the naive
        order visits blocks in the same nesting, so K-first's transitions
        are a superset of its surface reuses.
        """
        k = analyze_reuse(g, kfirst_schedule(g))
        nv = analyze_reuse(g, naive_schedule(g))
        assert k.io_total <= nv.io_total

    @settings(max_examples=40, deadline=None)
    @given(cb_shaped_grids())
    def test_kfirst_beats_or_ties_other_dimensions(self, g):
        """Reduction-first is optimal among the three boustrophedon
        orders for CB-shaped blocks: the partial-C surface is the
        largest and the only one that costs double (Section 2.2), and
        only K-first fully reuses it."""
        k = analyze_reuse(g, kfirst_schedule(g))
        m = analyze_reuse(g, mfirst_schedule(g))
        n = analyze_reuse(g, nfirst_schedule(g))
        assert k.io_total <= m.io_total
        assert k.io_total <= n.io_total

    def test_naive_misses_turn_reuses(self):
        """Section 2.2: restarting each loop at index 0 forfeits
        O(Mb*Nb + Nb) surface reuses."""
        g = uniform_grid(4, 4, 4, 4)
        k = analyze_reuse(g, kfirst_schedule(g))
        nv = analyze_reuse(g, naive_schedule(g))
        assert nv.reuse_a == 0
        assert nv.reuse_b == 0
        missed = (k.reuse_a + k.reuse_b) - (nv.reuse_a + nv.reuse_b)
        assert missed == (g.nb - 1) + g.nb * (g.mb - 1)

    def test_mfirst_pays_partial_spills(self):
        g = uniform_grid(4, 4, 4, 4)
        m = analyze_reuse(g, mfirst_schedule(g))
        assert m.io_c_spill > 0
        assert m.io_c_refetch > 0
