"""Tests for the computation space and block grid."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CBBlock
from repro.schedule import BlockCoord, BlockGrid, ComputationSpace

spaces = st.builds(
    ComputationSpace,
    st.integers(1, 500),
    st.integers(1, 500),
    st.integers(1, 500),
)
blocks = st.builds(
    CBBlock, st.integers(1, 64), st.integers(1, 64), st.integers(1, 64)
)


class TestComputationSpace:
    def test_macs_and_flops(self):
        s = ComputationSpace(2, 3, 4)
        assert s.macs == 24
        assert s.flops == 48

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ComputationSpace(0, 1, 1)


class TestBlockGridShape:
    def test_exact_partition(self):
        g = BlockGrid(ComputationSpace(8, 12, 4), CBBlock(4, 6, 2))
        assert (g.mb, g.nb, g.kb) == (2, 2, 2)
        assert g.num_blocks == 8

    def test_ragged_partition(self):
        g = BlockGrid(ComputationSpace(10, 10, 10), CBBlock(4, 4, 4))
        assert (g.mb, g.nb, g.kb) == (3, 3, 3)
        assert g.extent(BlockCoord(2, 2, 2)) == CBBlock(2, 2, 2)

    def test_block_larger_than_space_collapses(self):
        g = BlockGrid(ComputationSpace(3, 3, 3), CBBlock(100, 100, 100))
        assert g.num_blocks == 1
        assert g.extent(BlockCoord(0, 0, 0)) == CBBlock(3, 3, 3)

    def test_origin(self):
        g = BlockGrid(ComputationSpace(10, 10, 10), CBBlock(4, 4, 4))
        assert g.origin(BlockCoord(0, 0, 0)) == (0, 0, 0)
        assert g.origin(BlockCoord(2, 1, 0)) == (8, 4, 0)

    def test_out_of_range_coord_rejected(self):
        g = BlockGrid(ComputationSpace(8, 8, 8), CBBlock(4, 4, 4))
        with pytest.raises(IndexError):
            g.extent(BlockCoord(2, 0, 0))
        with pytest.raises(IndexError):
            g.origin(BlockCoord(0, -1, 0))


class TestBlockGridProperties:
    @settings(max_examples=60, deadline=None)
    @given(spaces, blocks)
    def test_blocks_tile_space_exactly(self, space, block):
        """Sum of block volumes equals the space volume (exact cover)."""
        g = BlockGrid(space, block)
        total = sum(g.extent(c).volume for c in g.coords())
        assert total == space.macs

    @settings(max_examples=60, deadline=None)
    @given(spaces, blocks)
    def test_extents_bounded_by_nominal(self, space, block):
        g = BlockGrid(space, block)
        for c in g.coords():
            e = g.extent(c)
            assert e.m <= min(block.m, space.m)
            assert e.n <= min(block.n, space.n)
            assert e.k <= min(block.k, space.k)

    @settings(max_examples=60, deadline=None)
    @given(spaces, blocks)
    def test_origins_consistent_with_extents(self, space, block):
        """Origin of the next block equals origin + extent of the previous."""
        g = BlockGrid(space, block)
        for mi in range(g.mb - 1):
            o0 = g.origin(BlockCoord(mi, 0, 0))
            e0 = g.extent(BlockCoord(mi, 0, 0))
            o1 = g.origin(BlockCoord(mi + 1, 0, 0))
            assert o1[0] == o0[0] + e0.m

    @settings(max_examples=60, deadline=None)
    @given(spaces, blocks)
    def test_coords_count(self, space, block):
        g = BlockGrid(space, block)
        assert len(list(g.coords())) == g.num_blocks
