"""Tests for Algorithm 2 (K-first boustrophedon schedule)."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core import CBBlock
from repro.schedule import BlockGrid, ComputationSpace, kfirst_schedule
from repro.schedule.kfirst import kfirst_runs
from repro.schedule.reuse import validate_schedule


def grid(m=12, n=12, k=12, bm=4, bn=4, bk=4) -> BlockGrid:
    return BlockGrid(ComputationSpace(m, n, k), CBBlock(bm, bn, bk))


def shares_surface(a, b) -> bool:
    """Two blocks share a surface iff they agree on two of three indices."""
    return (
        ((a.mi, a.ni) == (b.mi, b.ni))  # partial C
        or ((a.mi, a.ki) == (b.mi, b.ki))  # A
        or ((a.ki, a.ni) == (b.ki, b.ni))  # B
    )


grids = st.builds(
    grid,
    m=st.integers(1, 40),
    n=st.integers(1, 40),
    k=st.integers(1, 40),
    bm=st.integers(1, 8),
    bn=st.integers(1, 8),
    bk=st.integers(1, 8),
)


class TestKFirstStructure:
    def test_covers_every_block_once(self):
        g = grid()
        order = kfirst_schedule(g)
        validate_schedule(g, order)  # raises on failure

    def test_k_innermost(self):
        """The first kb blocks form one complete reduction run."""
        g = grid()
        order = kfirst_schedule(g)
        first_run = order[: g.kb]
        assert len({(c.mi, c.ni) for c in first_run}) == 1
        assert sorted(c.ki for c in first_run) == list(range(g.kb))

    def test_paper_figure3d_order(self):
        """Figure 3d: a 3x3x3 slice in K-first order, blocks 1..9.

        For ni=0 the traversal covers (mi=0, k:0->2), (mi=1, k:2->0),
        (mi=2, k:0->2) — the numbers 1-9 in the figure.
        """
        g = grid(m=3, n=3, k=3, bm=1, bn=1, bk=1)
        order = kfirst_schedule(g)
        expected_first_nine = [
            (0, 0), (0, 1), (0, 2),
            (1, 2), (1, 1), (1, 0),
            (2, 0), (2, 1), (2, 2),
        ]
        got = [(c.mi, c.ki) for c in order[:9]]
        assert got == expected_first_nine
        assert all(c.ni == 0 for c in order[:9])

    def test_outer_auto_follows_larger_dimension(self):
        # N > M: outer loop over N => consecutive runs vary mi fastest.
        g = BlockGrid(ComputationSpace(8, 16, 4), CBBlock(4, 4, 4))
        order = kfirst_schedule(g)
        # first two runs differ in mi, same ni
        assert order[0].ni == order[g.kb].ni
        assert order[0].mi != order[g.kb].mi
        # M > N: outer loop over M => consecutive runs vary ni fastest.
        g2 = BlockGrid(ComputationSpace(16, 8, 4), CBBlock(4, 4, 4))
        order2 = kfirst_schedule(g2)
        assert order2[0].mi == order2[g2.kb].mi
        assert order2[0].ni != order2[g2.kb].ni

    def test_invalid_outer_rejected(self):
        with pytest.raises(ValueError):
            kfirst_schedule(grid(), outer="q")  # type: ignore[arg-type]


class TestKFirstAdjacency:
    @settings(max_examples=80)
    @given(grids)
    def test_every_consecutive_pair_shares_a_surface(self, g):
        """The boustrophedon guarantee: no transition wastes all three
        surfaces — this is what the direction flips buy (Section 2.2)."""
        order = kfirst_schedule(g)
        for prev, cur in zip(order, order[1:]):
            assert shares_surface(prev, cur), (prev, cur)

    @settings(max_examples=80)
    @given(grids)
    def test_valid_for_any_grid(self, g):
        validate_schedule(g, kfirst_schedule(g))

    @settings(max_examples=40)
    @given(grids)
    def test_runs_group_whole_reductions(self, g):
        runs = list(kfirst_runs(g))
        assert len(runs) == g.mb * g.nb
        for run in runs:
            assert len(run) == g.kb
            assert len({(c.mi, c.ni) for c in run}) == 1
