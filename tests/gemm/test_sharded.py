"""Process-sharded executor tests (CAKE-on-CAKE).

The contract under test (see ``repro.gemm.sharded``): sharding the
M x N grid of CB blocks across worker processes is an *execution*
detail — the product and the schedule-derived traffic counters must be
bit-identical to the serial walk for every (processes x workers x
backend) combination, the shard grid must be the near-square minimizer
of the replicated-input traffic, the measured inter-process bytes must
sit within the documented slack of the memory-independent lower bound,
and a dying shard worker must heal through the pool-rebuild ladder or
surface a structured error — never a silently partial C.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gemm import CakeGemm, GotoGemm
from repro.gemm.sharded import (
    IPC_SLACK_FACTOR,
    ShardConfig,
    ShardExecutionError,
    default_processes,
    ipc_lower_bound_elements,
    plan_shards,
    resolve_shards,
    select_shard_grid,
    set_default_processes,
)
from repro.gemm.verify import VerifyConfig
from repro.machines import intel_i9_10900k
from repro.runtime.faults import NumericFaultPlan, NumericFaultRule

ENGINES = {"cake": CakeGemm, "goto": GotoGemm}

#: cores=1 keeps CB blocks small enough that the block grid has several
#: rows and columns to shard on test-sized problems (the cake grid here
#: is 2x2, the goto strip grid 2x1).
SHAPE = (300, 420, 170)


@pytest.fixture
def intel():
    return intel_i9_10900k()


@pytest.fixture
def operands(rng):
    m, n, k = SHAPE
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


def _serial(intel, engine, a, b, **kw):
    return ENGINES[engine](intel, cores=1, **kw).multiply(a, b)


def _sharded(intel, engine, a, b, processes, **kw):
    return ENGINES[engine](
        intel, cores=1, processes=processes, **kw
    ).multiply(a, b)


# -- shard-grid selection ------------------------------------------------------


class TestGridSelection:
    # Pinned selections: (mb, nb, m, n) -> {P: (rows, cols)}. The square
    # case ties row- and column-splits, so the tie-break (smaller row
    # count) decides; the skewed Figure-8 shapes split their long axis.
    PINNED = [
        ("square-4x4", 4, 4, 960, 960,
         {1: (1, 1), 2: (1, 2), 3: (1, 3), 4: (2, 2), 6: (2, 3), 8: (2, 4)}),
        ("skewed-2x5", 2, 5, 256, 1024,
         {1: (1, 1), 2: (1, 2), 3: (1, 3), 4: (1, 4), 6: (2, 3), 8: (2, 4)}),
        ("fig8-wide", 8, 32, 2000, 8000,
         {1: (1, 1), 2: (1, 2), 3: (1, 3), 4: (1, 4), 6: (1, 6), 8: (2, 4)}),
        ("fig8-tall", 32, 8, 8000, 2000,
         {1: (1, 1), 2: (2, 1), 3: (3, 1), 4: (4, 1), 6: (6, 1), 8: (4, 2)}),
    ]

    @pytest.mark.parametrize(
        "label,mb,nb,m,n,expected", PINNED, ids=[c[0] for c in PINNED]
    )
    def test_pinned_grids(self, label, mb, nb, m, n, expected):
        for p, grid in expected.items():
            assert select_shard_grid(p, mb, nb, m, n) == grid, (
                f"{label}: P={p}"
            )

    def test_tall_and_wide_are_transposes(self):
        # Swapping the problem's aspect swaps the chosen grid.
        for p in (2, 3, 4, 6, 8):
            r, c = select_shard_grid(p, 8, 32, 2000, 8000)
            assert select_shard_grid(p, 32, 8, 8000, 2000) == (c, r)

    def test_clamps_to_block_grid(self):
        # More processes than blocks: the largest usable P' <= P wins.
        assert select_shard_grid(64, 2, 3, 100, 200) == (2, 3)
        assert select_shard_grid(7, 2, 2, 100, 100) == (2, 2)
        assert select_shard_grid(1000, 1, 1, 10, 10) == (1, 1)

    def test_prime_p_with_narrow_grid_degrades(self):
        # P=5 cannot factor into a 2x2 grid; 4 processes can.
        assert select_shard_grid(5, 2, 2, 100, 100) == (2, 2)

    @given(
        p=st.integers(1, 16),
        mb=st.integers(1, 9),
        nb=st.integers(1, 9),
        m=st.integers(1, 5000),
        n=st.integers(1, 5000),
    )
    @settings(max_examples=80)
    def test_grid_always_feasible_and_optimal(self, p, mb, nb, m, n):
        rows, cols = select_shard_grid(p, mb, nb, m, n)
        assert 1 <= rows <= mb and 1 <= cols <= nb
        assert rows * cols <= p
        # No feasible pair with MORE usable processes, and none with the
        # same count but strictly less replicated-input traffic.
        best = rows * cols
        for rr in range(1, mb + 1):
            for cc in range(1, nb + 1):
                if rr * cc <= p:
                    assert rr * cc <= best
                    if rr * cc == best:
                        assert cols * m + rows * n <= cc * m + rr * n


class TestPlanTiling:
    @given(
        row_extents=st.lists(st.integers(1, 64), min_size=1, max_size=7),
        col_extents=st.lists(st.integers(1, 64), min_size=1, max_size=7),
        p=st.integers(1, 12),
        k=st.integers(1, 300),
    )
    @settings(max_examples=80)
    def test_spans_tile_the_block_grid_exactly(
        self, row_extents, col_extents, p, k
    ):
        plan = plan_shards(p, row_extents, col_extents, k)
        mb, nb = len(row_extents), len(col_extents)
        assert plan.processes == plan.rows * plan.cols == len(plan.spans)
        covered: set[tuple[int, int]] = set()
        for span in plan.spans:
            assert 0 <= span.mi0 < span.mi1 <= mb
            assert 0 <= span.ni0 < span.ni1 <= nb
            cells = {
                (mi, ni)
                for mi in range(span.mi0, span.mi1)
                for ni in range(span.ni0, span.ni1)
            }
            assert not (covered & cells), "shard spans overlap"
            covered |= cells
            # Element offsets/extents are the prefix sums of the block
            # extents — the C panel views depend on this.
            assert span.m0 == sum(row_extents[: span.mi0])
            assert span.m_extent == sum(row_extents[span.mi0 : span.mi1])
            assert span.n0 == sum(col_extents[: span.ni0])
            assert span.n_extent == sum(col_extents[span.ni0 : span.ni1])
        assert covered == {(mi, ni) for mi in range(mb) for ni in range(nb)}

    @given(
        row_extents=st.lists(st.integers(1, 64), min_size=1, max_size=7),
        col_extents=st.lists(st.integers(1, 64), min_size=1, max_size=7),
        p=st.integers(1, 12),
        k=st.integers(1, 300),
    )
    @settings(max_examples=40)
    def test_ipc_never_below_the_lower_bound(
        self, row_extents, col_extents, p, k
    ):
        plan = plan_shards(p, row_extents, col_extents, k)
        bound = ipc_lower_bound_elements(plan.m, plan.n, k, plan.processes)
        assert plan.ipc_elements >= bound * (1 - 1e-12)
        assert plan.ipc_lower_bound_elements == bound


# -- configuration resolution --------------------------------------------------


class TestResolveShards:
    def test_none_means_the_process_default(self):
        assert default_processes() == 1
        assert resolve_shards(None) is None
        old = set_default_processes(3)
        try:
            assert old == 1
            cfg = resolve_shards(None)
            assert cfg is not None and cfg.processes == 3
        finally:
            set_default_processes(old)
        assert resolve_shards(None) is None

    def test_one_process_means_no_sharding(self):
        assert resolve_shards(1) is None
        assert resolve_shards(ShardConfig(processes=1)) is None

    def test_int_wraps_config_passes_through(self):
        cfg = resolve_shards(4)
        assert cfg == ShardConfig(processes=4)
        explicit = ShardConfig(processes=2, max_pool_rebuilds=0)
        assert resolve_shards(explicit) is explicit

    def test_rejects_bools_and_nonsense(self):
        with pytest.raises(TypeError):
            resolve_shards(True)
        with pytest.raises(TypeError):
            resolve_shards("2")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            resolve_shards(0)
        with pytest.raises(ValueError):
            set_default_processes(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(processes=0)
        with pytest.raises(ValueError):
            ShardConfig(processes=2, max_pool_rebuilds=-1)
        with pytest.raises(ConfigurationError, match="start method"):
            ShardConfig(processes=2, start_method="no-such-method")

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_exact_pack_is_incompatible(self, intel, engine):
        with pytest.raises(ConfigurationError, match="exact_pack"):
            ENGINES[engine](intel, processes=2, exact_pack=True)


# -- bit-identity --------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    @pytest.mark.parametrize("processes", [2, 4])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_matches_serial(self, intel, operands, engine, processes, workers):
        a, b = operands
        serial = _serial(intel, engine, a, b, workers=workers)
        run = _sharded(
            intel, engine, a, b, processes, workers=workers
        )
        assert np.array_equal(run.c, serial.c)
        assert run.counters.without_ipc() == serial.counters.without_ipc()
        assert run.time.seconds == serial.time.seconds
        report = run.shards
        assert report is not None
        assert run.processes == report.processes == report.rows * report.cols
        assert 1 < report.processes <= processes
        assert len(report.shard_phase_seconds) == report.processes

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_blas_group_backend_matches_its_serial_run(
        self, intel, operands, engine
    ):
        a, b = operands
        serial = _serial(intel, engine, a, b, backend="blas-group")
        run = _sharded(intel, engine, a, b, 2, backend="blas-group")
        assert np.array_equal(run.c, serial.c)
        assert run.counters.without_ipc() == serial.counters.without_ipc()
        assert run.backend == "blas-group"

    @pytest.mark.skipif(
        "spawn" not in mp.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_start_method(self, intel, operands):
        a, b = operands
        serial = _serial(intel, "cake", a, b)
        run = _sharded(
            intel, "cake", a, b,
            ShardConfig(processes=2, start_method="spawn"),
        )
        assert np.array_equal(run.c, serial.c)
        assert run.shards is not None
        assert run.shards.start_method == "spawn"

    def test_float32_stays_float32(self, intel, operands):
        a, b = (x.astype(np.float32) for x in operands)
        serial = _serial(intel, "cake", a, b)
        run = _sharded(intel, "cake", a, b, 2)
        assert run.c.dtype == np.float32
        assert np.array_equal(run.c, serial.c)

    def test_one_process_takes_the_inprocess_path(self, intel, operands):
        a, b = operands
        run = _sharded(intel, "cake", a, b, 1)
        assert run.shards is None
        assert run.processes == 1
        assert run.counters.ipc_bytes == 0


class TestVerifiedSharded:
    def test_verified_run_is_bit_clean(self, intel, operands):
        a, b = operands
        plain = _serial(intel, "cake", a, b)
        verified = _sharded(intel, "cake", a, b, 2, verify=True)
        assert np.array_equal(verified.c, plain.c)
        report = verified.verify
        assert report is not None
        assert report.mismatches == 0
        assert report.blocks > 0 and report.verified == report.blocks
        # Checksum material is computed inside the shard workers from
        # the attached packed blocks — it must still be accounted.
        assert report.checksum_elements > 0

    def test_merged_report_matches_serial_accounting(self, intel, operands):
        a, b = operands
        serial = _serial(intel, "cake", a, b, verify=True)
        sharded = _sharded(intel, "cake", a, b, 2, verify=True)
        assert np.array_equal(sharded.c, serial.c)
        assert sharded.verify.blocks == serial.verify.blocks
        assert sharded.verify.verified == serial.verify.verified
        # Checksum material replicates with the operands: a shard grid
        # that replicates packed A across pc column shards recomputes
        # A's checksums in each — never fewer elements than serial.
        assert (
            sharded.verify.checksum_elements
            >= serial.verify.checksum_elements
        )


# -- IPC accounting ------------------------------------------------------------


class TestIpcAccounting:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_ipc_bytes_within_documented_slack(self, intel, operands, engine):
        a, b = operands
        run = _sharded(intel, engine, a, b, 2)
        report = run.shards
        assert report is not None
        assert run.counters.ipc_bytes == report.ipc_bytes > 0
        bound = report.ipc_lower_bound_bytes
        assert bound == ipc_lower_bound_elements(
            SHAPE[0], SHAPE[1], SHAPE[2], report.processes
        ) * intel.element_bytes
        assert bound <= report.ipc_bytes <= IPC_SLACK_FACTOR * bound
        assert report.slack == report.ipc_bytes / bound

    def test_ipc_bytes_are_plan_deterministic(self, intel, operands):
        # Same problem, same process count -> identical ipc accounting
        # (it is derived from the shard plan, not measured wall traffic).
        a, b = operands
        first = _sharded(intel, "cake", a, b, 2)
        second = _sharded(intel, "cake", a, b, 2)
        assert first.counters.ipc_bytes == second.counters.ipc_bytes
        assert first.counters == second.counters


# -- fault tolerance -----------------------------------------------------------


def _kill_plan(state_dir=None, times=1):
    return NumericFaultPlan(
        rules=(
            NumericFaultRule(block=0, strip="*", kind="kill", times=times),
        ),
        state_dir=None if state_dir is None else str(state_dir),
    )


class TestShardFaultTolerance:
    def test_kill_once_heals_via_pool_rebuild(self, intel, operands, tmp_path):
        # The worker owning block 0 dies mid-run; the on-disk firing
        # count survives the crash, so the rebuilt pool recomputes the
        # zeroed shard cleanly — bit-identical C, rebuilds recorded.
        a, b = operands
        clean = _serial(intel, "cake", a, b)
        run = _sharded(
            intel, "cake", a, b, 2,
            verify=VerifyConfig(inject=_kill_plan(state_dir=tmp_path)),
        )
        assert np.array_equal(run.c, clean.c)
        assert run.shards is not None
        assert run.shards.pool_rebuilds >= 1
        assert run.verify is not None and run.verify.mismatches == 0

    def test_persistent_kill_degrades_to_inline(self, intel, operands):
        # Without a state_dir every rebuilt worker re-fires the kill, so
        # the rebuild budget drains and the shard runs inline in the
        # parent — where kill faults are inert by construction.
        a, b = operands
        clean = _serial(intel, "cake", a, b)
        run = _sharded(
            intel, "cake", a, b,
            ShardConfig(processes=2, max_pool_rebuilds=1),
            verify=VerifyConfig(inject=_kill_plan()),
        )
        assert np.array_equal(run.c, clean.c)
        assert run.shards is not None
        assert run.shards.pool_rebuilds >= 1
        assert run.shards.inline_shards >= 1

    def test_persistent_kill_without_fallback_is_structured(
        self, intel, operands
    ):
        # inline_fallback=False: the run must refuse to return a
        # partially-computed C, naming the shards that never finished.
        a, b = operands
        engine = CakeGemm(
            intel, cores=1,
            processes=ShardConfig(
                processes=2, max_pool_rebuilds=1, inline_fallback=False
            ),
            verify=VerifyConfig(inject=_kill_plan()),
        )
        with pytest.raises(ShardExecutionError) as exc:
            engine.multiply(a, b)
        assert exc.value.shards  # the unfinished shard coordinates
        assert exc.value.rebuilds >= 1

    def test_scale_fault_heals_inside_the_shard(self, intel, operands):
        # Ordinary ABFT corruption heals locally in the shard worker.
        a, b = operands
        clean = _serial(intel, "cake", a, b)
        plan = NumericFaultPlan(
            rules=(
                NumericFaultRule(block=0, strip=0, kind="scale", factor=3.0),
            )
        )
        run = _sharded(
            intel, "cake", a, b, 2, verify=VerifyConfig(inject=plan)
        )
        assert np.array_equal(run.c, clean.c)
        assert run.verify is not None
        assert run.verify.mismatches >= 1
        assert (
            run.verify.retry_recoveries + run.verify.oracle_recoveries >= 1
        )
