"""The autotuner's plan seam: PlanOverride, bounded memos, engine wiring.

The seam has three contracts this file pins down:

* :class:`~repro.gemm.plan.PlanOverride` is a validated, round-trippable
  value object — bad fields fail at construction, serialization rejects
  unknown keys (a future tuner's rows must not silently half-apply);
* the plan memos are **bounded** (``PLAN_MEMO_MAXSIZE``) and observable
  (``plan_cache_info``), so a server sweeping many shapes cannot grow
  them without limit;
* an override changes exactly the fields it names — and the engines'
  ``plan=`` path stays bit-identical to the analytic plan for every
  reduction-order-preserving override (the tuner's whole premise).
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.plan import (
    PLAN_MEMO_MAXSIZE,
    CakePlan,
    GotoPlan,
    PlanOverride,
    clear_plan_memos,
    plan_cache_info,
)
from repro.schedule.space import ComputationSpace

SPACE = ComputationSpace(600, 840, 340)


class TestPlanOverrideValue:
    def test_round_trip(self):
        override = PlanOverride(alpha=2.0, mc=96, strips=1, schedule="naive")
        assert PlanOverride.from_dict(override.as_dict()) == override

    def test_as_dict_carries_every_field(self):
        assert set(PlanOverride().as_dict()) == {
            "alpha", "mc", "kc", "nc", "strips", "workers", "schedule",
        }

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            PlanOverride.from_dict({"mc": 96, "tile": 8})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"alpha": 1e9},
            {"mc": 0},
            {"kc": -4},
            {"strips": 0},
            {"workers": 0},
            {"schedule": "zigzag"},
        ],
    )
    def test_invalid_fields_fail_at_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            PlanOverride(**kwargs)


class TestOverriddenDerivation:
    def test_mc_kc_replaced_others_kept(self, intel):
        base = CakePlan.from_problem(intel, SPACE)
        plan = CakePlan.from_problem(
            intel, SPACE, override=PlanOverride(mc=base.mc * 2, kc=base.kc)
        )
        assert plan.mc == base.mc * 2
        assert plan.kc == base.kc
        assert plan.alpha == base.alpha

    def test_alpha_override_redirects_derivation(self, intel):
        base = CakePlan.from_problem(intel, SPACE)
        plan = CakePlan.from_problem(
            intel, SPACE, override=PlanOverride(alpha=4.0)
        )
        assert plan.alpha == 4.0
        assert plan == CakePlan.from_problem(intel, SPACE, alpha=4.0)
        assert plan != base

    def test_execution_only_override_keeps_plan(self, intel):
        base = CakePlan.from_problem(intel, SPACE)
        plan = CakePlan.from_problem(
            intel, SPACE, override=PlanOverride(strips=1, schedule="naive")
        )
        assert (plan.alpha, plan.mc, plan.kc) == (
            base.alpha, base.mc, base.kc,
        )

    def test_goto_override_replaces_named_tiles(self, intel):
        base = GotoPlan.from_problem(intel, SPACE)
        plan = GotoPlan.from_problem(
            intel, SPACE, override=PlanOverride(mc=base.mc // 2)
        )
        assert plan.mc == base.mc // 2
        assert (plan.kc, plan.nc) == (base.kc, base.nc)


class TestBoundedMemo:
    def test_memos_are_bounded_and_observable(self, intel):
        clear_plan_memos()
        info = plan_cache_info()
        assert info["maxsize"] == PLAN_MEMO_MAXSIZE
        assert info["cake"]["maxsize"] == PLAN_MEMO_MAXSIZE
        assert info["goto"]["maxsize"] == PLAN_MEMO_MAXSIZE
        assert info["cake"]["currsize"] == 0

        CakePlan.from_problem(intel, SPACE)
        CakePlan.from_problem(intel, SPACE)
        info = plan_cache_info()
        assert info["cake"]["currsize"] >= 1
        assert info["cake"]["hits"] >= 1

    def test_memo_never_exceeds_maxsize(self, intel):
        """Distinct keys beyond the bound evict instead of growing."""
        clear_plan_memos()
        for m in range(64, 64 + 40):
            CakePlan.from_problem(intel, ComputationSpace(m, 64, 64))
        assert plan_cache_info()["cake"]["currsize"] <= PLAN_MEMO_MAXSIZE


class TestEngineSeam:
    @pytest.fixture
    def operands(self, rng):
        a = rng.standard_normal((96, 170)).astype(np.float32)
        b = rng.standard_normal((170, 120)).astype(np.float32)
        return a, b

    @pytest.mark.parametrize(
        "override",
        [
            PlanOverride(schedule="naive"),
            PlanOverride(workers=2),
        ],
        ids=["naive", "workers"],
    )
    def test_order_preserving_overrides_bit_identical(
        self, intel, operands, override
    ):
        """Reduction-complete schedule variants and worker counts keep
        every C element's accumulation order — bit-identical always."""
        a, b = operands
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        run = CakeGemm(intel, plan=override).multiply(a, b)
        assert np.array_equal(run.c, base.c)
        assert run.counters == base.counters

    def test_strips_override_keeps_modelled_accounting(self, intel, operands):
        """``strips`` is a host-granularity knob: counters and modelled
        time still price the analytic core count. It is NOT bit-safe by
        construction (a different per-strip matmul shape may take a
        different BLAS kernel path), which is exactly why the tuner
        validates every strips candidate on the real shape and rejects
        any drift — see tests/tune/test_tuner.py."""
        a, b = operands
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        run = CakeGemm(intel, plan=PlanOverride(strips=1)).multiply(a, b)
        assert run.counters == base.counters
        assert run.seconds == base.seconds
        np.testing.assert_allclose(run.c, base.c, rtol=1e-5, atol=1e-4)

    def test_mn_reblocking_bit_identical(self, intel, operands):
        """M/N re-blocking with kc pinned preserves each C element's
        reduction order, hence every bit."""
        a, b = operands
        base_plan = CakeGemm(intel).plan_for(96, 120, 170)
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        run = CakeGemm(
            intel,
            plan=PlanOverride(mc=base_plan.mc * 2, kc=base_plan.kc),
        ).multiply(a, b)
        assert np.array_equal(run.c, base.c)

    def test_goto_plan_override_bit_identical(self, intel, operands):
        a, b = operands
        base_plan = GotoGemm(intel).plan_for(96, 120, 170)
        base = GotoGemm(intel, tuned=False).multiply(a, b)
        run = GotoGemm(
            intel,
            plan=PlanOverride(mc=base_plan.mc * 2, kc=base_plan.kc),
        ).multiply(a, b)
        assert np.array_equal(run.c, base.c)

    def test_override_recorded_in_plan_summary(self, intel, operands):
        a, b = operands
        run = CakeGemm(intel, plan=PlanOverride(strips=1)).multiply(a, b)
        assert run.plan_summary["override"]["strips"] == 1
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        assert "override" not in base.plan_summary

    def test_explicit_workers_outrank_override(self, intel, operands):
        a, b = operands
        run = CakeGemm(
            intel, workers=1, plan=PlanOverride(workers=4)
        ).multiply(a, b)
        assert run.workers == 1

    def test_plan_and_tuned_mutually_exclusive(self, intel):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            CakeGemm(intel, plan=PlanOverride(strips=1), tuned=True)
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            GotoGemm(intel, plan=PlanOverride(mc=64), tuned=True)

    def test_analyze_prices_the_overridden_plan(self, intel):
        base = CakeGemm(intel, tuned=False).analyze(600, 840, 340)
        tuned = CakeGemm(
            intel, plan=PlanOverride(alpha=4.0)
        ).analyze(600, 840, 340)
        assert tuned.plan_summary["alpha"] == 4.0
        assert tuned.counters != base.counters
