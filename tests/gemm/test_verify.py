"""Tests for ABFT verified execution (repro.gemm.verify).

The contract under test, straight from the acceptance criteria:

* verify-on with no faults is **bit-identical** to verify-off — product,
  traffic counters, schedule accounting — for any engine/worker count;
* any single injected corruption is either healed back to the bit-exact
  clean result or surfaced as :class:`NumericFaultError` carrying the
  faulting block's coordinates — never silently wrong.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import cake_matmul, goto_matmul
from repro.gemm import CakeGemm, GotoGemm
from repro.gemm.parallel import PhaseTimers, StripGroup, StripTask
from repro.gemm.verify import (
    GroupVerifier,
    NumericFaultError,
    VerifyConfig,
    VerifyReport,
    resolve_verify,
)
from repro.runtime.faults import (
    NumericFaultInjector,
    NumericFaultPlan,
    NumericFaultRule,
)

ENGINES = [CakeGemm, GotoGemm]


def _operands(rng, m=200, k=170, n=230, dtype=np.float64):
    a = rng.standard_normal((m, k)).astype(dtype)
    b = rng.standard_normal((k, n)).astype(dtype)
    return a, b


def _plan(**kw):
    return NumericFaultPlan(rules=(NumericFaultRule(**kw),))


# -- config plumbing ----------------------------------------------------------


class TestConfig:
    def test_resolve(self):
        assert resolve_verify(False) is None
        assert resolve_verify(None) is None
        assert resolve_verify(True) == VerifyConfig()
        cfg = VerifyConfig(max_retries=5)
        assert resolve_verify(cfg) is cfg
        with pytest.raises(TypeError):
            resolve_verify("yes")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VerifyConfig(max_retries=-1)
        with pytest.raises(ValueError):
            VerifyConfig(rtol=0.0)
        with pytest.raises(ValueError):
            VerifyConfig(atol=-1.0)


class TestNumericFaultRule:
    def test_matching(self):
        rule = NumericFaultRule(block=2, strip="*")
        assert rule.matches(2, 0) and rule.matches(2, 7)
        assert not rule.matches(3, 0)
        assert NumericFaultRule().matches(5, 5)  # wildcard default

    def test_validation(self):
        with pytest.raises(ValueError):
            NumericFaultRule(kind="melt")
        with pytest.raises(ValueError):
            NumericFaultRule(times=0)
        with pytest.raises(ValueError):
            NumericFaultRule(block=-1)
        with pytest.raises(ValueError):
            NumericFaultPlan(rules=())

    def test_plan_from_json(self):
        plan = NumericFaultPlan.from_json(
            {"rules": [{"block": 0, "strip": 1, "kind": "zero"}]}
        )
        assert plan.rules[0].kind == "zero"
        plan = NumericFaultPlan.from_json([{"kind": "scale", "factor": 3.0}])
        assert plan.rules[0].factor == 3.0

    def test_corruption_kinds_change_panel(self):
        for kind in ("bitflip", "scale", "zero"):
            panel = np.full((4, 5), 1.5)
            injector = NumericFaultInjector(_plan(kind=kind))
            assert injector.corrupt(0, 0, panel)
            assert not np.array_equal(panel, np.full((4, 5), 1.5)), kind
            assert injector.fired == 1

    def test_times_budget_is_per_strip(self):
        injector = NumericFaultInjector(_plan(strip="*", times=1))
        p = np.ones((2, 2))
        assert injector.corrupt(0, 0, p.copy())
        assert injector.corrupt(0, 1, p.copy())  # different strip: own budget
        assert not injector.corrupt(0, 0, p.copy())  # exhausted
        assert injector.fired == 2

    def test_non_matching_strip_untouched(self):
        injector = NumericFaultInjector(_plan(block=3, strip=1))
        panel = np.ones((2, 2))
        assert not injector.corrupt(0, 0, panel)
        np.testing.assert_array_equal(panel, np.ones((2, 2)))

    def test_bitflip_rejects_non_float(self):
        injector = NumericFaultInjector(_plan(kind="bitflip"))
        with pytest.raises(ValueError, match="bitflip"):
            injector.corrupt(0, 0, np.ones((2, 2), dtype=np.complex128))


# -- clean-run bit-identity ---------------------------------------------------


class TestCleanBitIdentity:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_product_counters_and_walk_identical(
        self, machine, engine_cls, workers, rng
    ):
        a, b = _operands(rng)
        base = engine_cls(machine, workers=workers).multiply(a, b)
        run = engine_cls(machine, workers=workers, verify=True).multiply(a, b)
        assert np.array_equal(base.c, run.c)
        assert base.counters == run.counters
        assert base.time == run.time
        assert base.bound_blocks == run.bound_blocks
        assert run.verify is not None
        assert run.verify.blocks == run.verify.verified > 0
        assert run.verify.mismatches == 0

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_no_false_positives(self, intel, engine_cls, dtype, rng):
        # Large-ish accumulations in both dtypes must clear the tolerance
        # band without a single mismatch.
        a, b = _operands(rng, m=250, k=310, n=140, dtype=dtype)
        run = engine_cls(intel, workers=2, verify=True).multiply(a, b)
        assert run.verify.mismatches == 0
        expected = a @ b
        scale = float(np.abs(expected).max())
        rtol, atol_f = (1e-3, 1e-4) if dtype == np.float32 else (1e-10, 1e-12)
        np.testing.assert_allclose(
            run.c, expected, rtol=rtol, atol=atol_f * scale
        )

    def test_verify_timers_populated(self, intel, rng):
        a, b = _operands(rng)
        run = CakeGemm(intel, verify=True).multiply(a, b)
        assert run.phase_seconds["verify"] > 0
        assert run.phase_seconds["recover"] == 0.0

    def test_exact_paths_verified(self, intel, rng):
        a, b = _operands(rng, m=90, k=70, n=80)
        run = CakeGemm(
            intel, verify=True, exact_pack=True, exact_tiles=True
        ).multiply(a, b)
        ref = CakeGemm(intel, exact_pack=True, exact_tiles=True).multiply(a, b)
        assert np.array_equal(run.c, ref.c)
        assert run.verify.mismatches == 0

    def test_checksum_traffic_reported_separately(self, intel, rng):
        a, b = _operands(rng)
        base = cake_matmul(a, b, machine=intel)
        run = cake_matmul(a, b, machine=intel, verify=True)
        # TrafficCounters stay bit-identical; the checksum surface rides
        # on the side-channel report.
        assert base.counters == run.counters
        assert base.dram_bytes == run.dram_bytes
        assert run.verify.checksum_elements > 0
        extra = run.dram_bytes_with_verify - run.dram_bytes
        assert extra > 0
        # Checksums are a vanishing fraction of operand traffic.
        assert extra < 0.05 * run.dram_bytes
        assert base.dram_bytes_with_verify == base.dram_bytes


# -- detection and recovery ---------------------------------------------------


class TestRecovery:
    @pytest.mark.parametrize("kind", ["bitflip", "scale", "zero"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_transient_fault_heals_by_retry(self, intel, kind, workers, rng):
        a, b = _operands(rng)
        ref = cake_matmul(a, b, machine=intel)
        cfg = VerifyConfig(inject=_plan(block=0, strip=0, kind=kind))
        run = cake_matmul(a, b, machine=intel, workers=workers, verify=cfg)
        assert np.array_equal(run.c, ref.c), kind
        assert run.verify.mismatches == 1
        assert run.verify.retry_recoveries == 1
        assert run.phase_seconds["recover"] > 0

    def test_persistent_fault_heals_by_oracle(self, intel, rng):
        a, b = _operands(rng)
        ref = cake_matmul(a, b, machine=intel)
        cfg = VerifyConfig(
            inject=_plan(block=0, strip="*", kind="zero", times=99),
            max_retries=2,
        )
        run = cake_matmul(a, b, machine=intel, workers=2, verify=cfg)
        assert np.array_equal(run.c, ref.c)
        assert run.verify.retries == 2
        assert run.verify.oracle_recoveries == 1

    def test_unrecoverable_fault_raises_with_coordinates(self, intel, rng):
        a, b = _operands(rng)
        cfg = VerifyConfig(
            inject=_plan(block=0, strip=0, kind="scale", times=99),
            max_retries=1,
            oracle_fallback=False,
        )
        with pytest.raises(NumericFaultError) as exc:
            cake_matmul(a, b, machine=intel, verify=cfg)
        err = exc.value
        assert err.coord == (0, 0, 0)
        assert err.identity in ("column", "row")
        assert err.residual > err.tolerance > 0
        assert "cake block" in str(err)

    def test_goto_detects_and_heals(self, intel, rng):
        a, b = _operands(rng)
        ref = goto_matmul(a, b, machine=intel)
        cfg = VerifyConfig(inject=_plan(block=0, strip=0, kind="scale"))
        run = goto_matmul(a, b, machine=intel, workers=2, verify=cfg)
        assert np.array_equal(run.c, ref.c)
        assert run.verify.retry_recoveries == 1

    def test_midschedule_block_fault(self, intel, rng):
        # Corrupt a block in the middle of a multi-block schedule: later
        # blocks accumulate on top of the healed panel, so the final C
        # only matches if recovery really completed inside the barrier.
        a, b = _operands(rng, m=700, k=600, n=500)
        ref = cake_matmul(a, b, machine=intel)
        cfg = VerifyConfig(inject=_plan(block=2, strip=1, kind="bitflip"))
        run = cake_matmul(a, b, machine=intel, workers=2, verify=cfg)
        assert run.verify.blocks > 3  # genuinely multi-block
        assert np.array_equal(run.c, ref.c)
        assert run.verify.mismatches == 1

    def test_nan_producing_corruption_detected(self, intel, rng):
        # Scaling by inf floods the panel with inf/NaN; the comparison
        # polarity must treat non-finite residuals as mismatches.
        a, b = _operands(rng, m=90, k=70, n=80)
        ref = cake_matmul(a, b, machine=intel)
        cfg = VerifyConfig(inject=_plan(kind="scale", factor=float("inf")))
        run = cake_matmul(a, b, machine=intel, verify=cfg)
        assert np.array_equal(run.c, ref.c)
        assert run.verify.mismatches >= 1

    def test_disabled_verify_is_silently_wrong(self, intel, rng):
        # The control case: same corruption, verification off — proves
        # the detection is what stands between a fault and a wrong C.
        a, b = _operands(rng)
        ref = cake_matmul(a, b, machine=intel)
        cfg = VerifyConfig(enabled=False, inject=_plan(kind="zero", times=99))
        run = cake_matmul(a, b, machine=intel, verify=cfg)
        assert not np.array_equal(run.c, ref.c)
        assert run.verify is None

    def test_recovery_deterministic_across_worker_counts(self, intel, rng):
        a, b = _operands(rng, m=400, k=300, n=350)
        cfg = VerifyConfig(inject=_plan(block=1, strip="*", kind="zero"))
        runs = [
            cake_matmul(a, b, machine=intel, workers=w, verify=cfg)
            for w in (1, 2, 4)
        ]
        for run in runs[1:]:
            assert np.array_equal(runs[0].c, run.c)
            assert runs[0].verify.as_dict() == run.verify.as_dict()


# -- verifier unit behavior ---------------------------------------------------


class TestGroupVerifierUnit:
    def _group(self, rng, m=12, k=9, n=10):
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = np.zeros((m, n))
        half = m // 2
        tasks = [
            StripTask(a[:half], b, c[:half]),
            StripTask(a[half:], b, c[half:]),
        ]
        group = StripGroup(
            tasks=tasks,
            index=0,
            coord=(0, 0, 0),
            label="unit block",
            checksum_a=a.sum(axis=0),
            checksum_b=b.sum(axis=1),
        )
        return group, a, b, c

    def _verifier(self, **cfg_kw):
        report = VerifyReport()
        return (
            GroupVerifier(VerifyConfig(**cfg_kw), report, PhaseTimers()),
            report,
        )

    def test_clean_group_verifies(self, rng):
        from repro.gemm.microkernel import MicroKernel

        kernel = MicroKernel(mr=4, nr=4, kc=9)
        group, a, b, c = self._group(rng)
        verifier, report = self._verifier()
        snaps = verifier.snapshot(group)
        for task in group.tasks:
            kernel.panel_matmul(task.a, task.b, task.c)
        verifier.check_and_recover(group, snaps, kernel, False, None)
        assert report.verified == 1 and report.mismatches == 0
        np.testing.assert_allclose(c, a @ b)

    def test_row_identity_localizes_strip(self, rng):
        from repro.gemm.microkernel import MicroKernel

        kernel = MicroKernel(mr=4, nr=4, kc=9)
        group, a, b, c = self._group(rng)
        verifier, report = self._verifier(
            max_retries=0, oracle_fallback=False
        )
        snaps = verifier.snapshot(group)
        for task in group.tasks:
            kernel.panel_matmul(task.a, task.b, task.c)
        # Corrupt one row of strip 1 only: the column identity (summed
        # over all rows) sees it, but so does the per-strip row identity,
        # which pins the strip — whichever fires first must report.
        group.tasks[1].c[0, :] += 7.0
        # A same-column +7/-7 pair cancels in the column sums, leaving
        # only the row identity to catch it.
        group.tasks[1].c[1, :] -= 7.0
        with pytest.raises(NumericFaultError) as exc:
            verifier.check_and_recover(group, snaps, kernel, False, None)
        assert exc.value.identity == "row"
        assert exc.value.strip == 1

    def test_unverified_group_skipped(self, rng):
        group = StripGroup(
            tasks=[
                StripTask(
                    rng.standard_normal((4, 3)),
                    rng.standard_normal((3, 5)),
                    np.zeros((4, 5)),
                )
            ]
        )
        verifier, report = self._verifier()
        assert verifier.snapshot(group) is None
        verifier.check_and_recover(group, None, None, False, None)
        assert report.blocks == 0

    def test_report_checksum_bytes(self):
        report = VerifyReport(checksum_elements=100)
        assert report.checksum_bytes(8) == 1600  # written + read back
        assert set(report.as_dict()) == {
            "blocks", "verified", "mismatches", "retries",
            "retry_recoveries", "oracle_recoveries", "checksum_elements",
        }


# -- the hypothesis sweep (satellite): never silently wrong -------------------


@settings(max_examples=25)
@given(
    m=st.integers(40, 220),
    k=st.integers(30, 200),
    n=st.integers(40, 220),
    block=st.integers(0, 5),
    strip=st.integers(0, 3),
    kind=st.sampled_from(["bitflip", "scale", "zero"]),
    times=st.integers(1, 4),
    workers=st.sampled_from([1, 2]),
    engine_idx=st.integers(0, 1),
    seed=st.integers(0, 2**32 - 1),
)
def test_every_injected_fault_heals_or_raises(
    m, k, n, block, strip, kind, times, workers, engine_idx, seed
):
    """Acceptance sweep: corrupted runs are never silently wrong.

    For arbitrary shapes and an arbitrary (block, strip, kind, times)
    corruption, a verified run must either produce the bit-identical
    clean serial product or raise NumericFaultError — with default
    settings the ladder (2 retries + oracle) heals everything, including
    budgets that outlast the retries, so a raise only happens when
    recovery is configured away.
    """
    from repro.machines import intel_i9_10900k

    machine = intel_i9_10900k()
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    engine_cls = ENGINES[engine_idx]

    ref = engine_cls(machine).multiply(a, b)
    cfg = VerifyConfig(
        inject=_plan(block=block, strip=strip, kind=kind, times=times)
    )
    run = engine_cls(machine, workers=workers, verify=cfg).multiply(a, b)
    assert np.array_equal(run.c, ref.c)
    injector_hit = run.verify.mismatches > 0
    healed = run.verify.retry_recoveries + run.verify.oracle_recoveries
    assert healed == run.verify.mismatches
    # When the (block, strip) target exists in this schedule, the
    # corruption must actually have been seen.
    if block == 0 and strip == 0:
        assert injector_hit


@settings(max_examples=15)
@given(
    kind=st.sampled_from(["bitflip", "scale", "zero"]),
    seed=st.integers(0, 2**32 - 1),
)
def test_no_recovery_budget_raises_not_corrupts(kind, seed):
    """With retries and the oracle both off, detection must still win:
    a raise, never a silently-wrong product."""
    from repro.machines import intel_i9_10900k

    machine = intel_i9_10900k()
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((100, 80))
    b = rng.standard_normal((80, 90))
    cfg = VerifyConfig(
        inject=_plan(block=0, strip=0, kind=kind, times=99),
        max_retries=0,
        oracle_fallback=False,
    )
    with pytest.raises(NumericFaultError):
        CakeGemm(machine, verify=cfg).multiply(a, b)
