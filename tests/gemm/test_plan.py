"""Tests for plan derivation edge cases and the alpha-selection scan."""

import dataclasses

import pytest

from repro.core import cake_block_fits
from repro.errors import ConfigurationError
from repro.gemm.plan import ALPHA_GRID, CakePlan, GotoPlan, _balanced_extent
from repro.machines import intel_i9_10900k
from repro.schedule.space import ComputationSpace

SPACE = ComputationSpace(2000, 2000, 2000)


class TestAlphaSelection:
    def test_plentiful_bandwidth_picks_alpha_one(self, intel):
        plan = CakePlan.from_problem(intel, SPACE)
        assert plan.alpha == 1.0

    def test_starved_bandwidth_stretches_alpha(self, intel):
        starved = dataclasses.replace(
            intel, dram_gb_per_s=1.8, llc_bytes=intel.llc_bytes * 4
        )
        plan = CakePlan.from_problem(starved, SPACE)
        assert plan.alpha > 1.0

    def test_explicit_alpha_respected(self, intel):
        plan = CakePlan.from_problem(intel, SPACE, alpha=3.0)
        assert plan.alpha == 3.0
        assert plan.mc < CakePlan.from_problem(intel, SPACE, alpha=1.0).mc

    def test_chosen_block_always_fits_lru_rule(self, intel):
        for dram in (40.0, 4.0, 0.4):
            machine = dataclasses.replace(intel, dram_gb_per_s=dram)
            plan = CakePlan.from_problem(machine, SPACE)
            assert cake_block_fits(plan.cpu_params, machine.llc_elements)

    def test_grid_is_finite_and_ordered(self):
        assert ALPHA_GRID[0] == 1.0
        assert list(ALPHA_GRID) == sorted(ALPHA_GRID)

    def test_no_feasible_block_raises(self, intel):
        hopeless = dataclasses.replace(
            intel, llc_bytes=256, l2_bytes=64, l1_bytes=64
        )
        with pytest.raises(ConfigurationError):
            CakePlan.from_problem(hopeless, SPACE)

    def test_cores_beyond_machine_rejected(self, intel):
        with pytest.raises(ConfigurationError, match="cores"):
            CakePlan.from_problem(intel, SPACE, cores=99)


class TestBalancedExtents:
    def test_exact_fit_unchanged(self):
        assert _balanced_extent(23040, 1920) == 1920

    def test_remainder_rebalanced(self):
        # 2000 against nominal 1920: two blocks of 1000 instead of
        # 1920 + 80.
        assert _balanced_extent(2000, 1920) == 1000

    def test_small_problem_collapses(self):
        assert _balanced_extent(500, 1920) == 500

    def test_never_exceeds_nominal(self):
        for total in (1, 100, 1919, 1920, 1921, 5000, 23040):
            assert _balanced_extent(total, 1920) <= 1920


class TestGotoPlan:
    def test_kernel_and_params(self, intel):
        plan = GotoPlan.from_problem(intel, SPACE)
        assert plan.kernel.mr == intel.mr
        assert plan.cpu_params.nc == plan.nc

    def test_plan_independent_of_problem_size(self, intel):
        """GOTO's tiles come from the caches alone — the rigidity CAKE
        fixes."""
        small = GotoPlan.from_problem(intel, ComputationSpace(100, 100, 100))
        large = GotoPlan.from_problem(intel, SPACE)
        assert (small.mc, small.nc) == (large.mc, large.nc)


class TestPlanMemo:
    def test_cake_repeat_derivation_is_cache_hit(self, intel):
        """Identical (machine, space, cores, alpha) returns the same
        instance — plan_for() + analyze() must not re-run the alpha scan."""
        first = CakePlan.from_problem(intel, SPACE)
        assert CakePlan.from_problem(intel, SPACE) is first
        assert CakePlan.from_problem(intel, SPACE, cores=intel.cores) is first
        assert CakePlan.from_problem(intel, SPACE, alpha=2.0) is not first
        assert (
            CakePlan.from_problem(intel, SPACE, alpha=2.0)
            is CakePlan.from_problem(intel, SPACE, alpha=2.0)
        )

    def test_goto_repeat_derivation_is_cache_hit(self, intel):
        first = GotoPlan.from_problem(intel, SPACE)
        assert GotoPlan.from_problem(intel, SPACE) is first
        assert GotoPlan.from_problem(intel, SPACE, cores=intel.cores) is first

    def test_distinct_keys_get_distinct_plans(self, intel, amd):
        base = CakePlan.from_problem(intel, SPACE)
        assert CakePlan.from_problem(amd, SPACE) is not base
        assert (
            CakePlan.from_problem(intel, ComputationSpace(64, 64, 64))
            is not base
        )
        assert CakePlan.from_problem(intel, SPACE, cores=2) is not base
