"""Cross-backend conformance suite.

The contract under test (see ``repro.gemm.backends``): the schedule is
the authority, the backend is an implementation detail. For every
registered backend, on every engine, the product must agree with the
per-strip numpy oracle — **bit-exactly** when the backend declares
``deterministic``, within its ABFT-shaped agreement band otherwise —
and the traffic counters, plan, and timing model must not move by one
bit. Worker count must never change a backend's own bits.

The suite parametrizes over :func:`registered_backends` and skips what
:meth:`BackendSpec.is_available` rules out, so a new backend is covered
by registration alone — no test edits. ``CAKE_TEST_BACKENDS`` (comma
separated) narrows the sweep for targeted runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BackendCapabilityError
from repro.gemm import CakeGemm, GotoGemm
from repro.gemm.backends import (
    Backend,
    BackendCapabilities,
    BackendSpec,
    BlasGroupBackend,
    NumpyBackend,
    TorchBackend,
    available_backends,
    backend_spec,
    default_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    set_default_backend,
)
from repro.gemm.backends import registry as backend_registry
from repro.gemm.parallel import check_multiply_operands
from repro.gemm.verify import NumericFaultError, VerifyConfig
from repro.machines import intel_i9_10900k
from repro.runtime.faults import NumericFaultPlan, NumericFaultRule

ENGINES = {"cake": CakeGemm, "goto": GotoGemm}

_BAND_SAFETY = 8.0


def _selected_backends() -> tuple[str, ...]:
    names = registered_backends()
    chosen = os.environ.get("CAKE_TEST_BACKENDS")
    if chosen:
        keep = {n.strip() for n in chosen.split(",")}
        names = tuple(n for n in names if n in keep)
    return names


def _require_available(name: str) -> BackendSpec:
    spec = backend_spec(name)
    if not spec.is_available():
        pytest.skip(f"backend {name!r} is not available on this host")
    return spec


def _band(a: np.ndarray, b: np.ndarray) -> float:
    """Worst-cell agreement bound for non-deterministic backends."""
    k = a.shape[1]
    return float(
        _BAND_SAFETY
        * np.finfo(np.result_type(a, b)).eps
        * (k + 2)
        * (np.abs(a) @ np.abs(b)).max()
    )


def _assert_conforms(run, oracle, spec, a, b) -> None:
    if spec.capabilities.deterministic:
        assert np.array_equal(run.c, oracle.c), (
            f"deterministic backend {spec.name!r} drifted from the oracle"
        )
    else:
        worst = float(np.abs(run.c - oracle.c).max())
        assert worst <= _band(a, b), (
            f"backend {spec.name!r} error {worst:.3e} exceeds its band"
        )
    assert run.counters == oracle.counters
    assert run.time.seconds == oracle.time.seconds
    assert run.backend == spec.name


@pytest.fixture(params=["cake", "goto"])
def engine_cls(request):
    return ENGINES[request.param]


@pytest.fixture(params=_selected_backends())
def backend_name(request) -> str:
    _require_available(request.param)
    return request.param


@pytest.fixture
def intel():
    return intel_i9_10900k()


class TestConformance:
    """Every backend, every engine, one oracle."""

    def test_agrees_with_oracle(self, intel, engine_cls, backend_name, rng):
        a = rng.standard_normal((219, 187))
        b = rng.standard_normal((187, 203))
        oracle = engine_cls(intel, backend="numpy").multiply(a, b)
        run = engine_cls(intel, backend=backend_name).multiply(a, b)
        _assert_conforms(run, oracle, backend_spec(backend_name), a, b)

    @pytest.mark.parametrize("workers", [2, 5])
    def test_worker_count_invariance(
        self, intel, engine_cls, backend_name, workers, rng
    ):
        # A fixed backend's own bits never move with the worker count.
        a = rng.standard_normal((160, 300))
        b = rng.standard_normal((300, 96))
        serial = engine_cls(intel, backend=backend_name).multiply(a, b)
        threaded = engine_cls(
            intel, backend=backend_name, workers=workers
        ).multiply(a, b)
        assert np.array_equal(serial.c, threaded.c)
        assert serial.counters == threaded.counters

    @pytest.mark.parametrize("shape", [(0, 5, 7), (5, 0, 7), (5, 7, 0)])
    def test_degenerate_shapes(self, intel, engine_cls, backend_name, shape):
        m, k, n = shape
        run = engine_cls(intel, backend=backend_name).multiply(
            np.zeros((m, k)), np.zeros((k, n))
        )
        assert run.c.shape == (m, n)
        assert not run.c.any()
        assert run.backend == backend_name

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_propagation(self, intel, engine_cls, backend_name, dtype, rng):
        spec = backend_spec(backend_name)
        if not spec.supports_dtype(np.dtype(dtype)):
            pytest.skip(f"{backend_name!r} does not support {dtype!r}")
        a = rng.standard_normal((67, 53)).astype(dtype)
        b = rng.standard_normal((53, 41)).astype(dtype)
        run = engine_cls(intel, backend=backend_name).multiply(a, b)
        assert run.c.dtype == np.dtype(dtype)
        oracle = engine_cls(intel, backend="numpy").multiply(a, b)
        _assert_conforms(run, oracle, spec, a, b)

    def test_layout_invariance(self, intel, engine_cls, backend_name, rng):
        # F-ordered, transposed-view, and strided operands multiply to
        # the same bits as their contiguous copies.
        a = rng.standard_normal((94, 118))
        b = rng.standard_normal((118, 75))
        engine = engine_cls(intel, backend=backend_name)
        base = engine.multiply(a, b)
        for aa, bb in (
            (np.asfortranarray(a), np.asfortranarray(b)),
            (a.T.copy().T, b.T.copy().T),
            (
                rng.standard_normal((94, 236))[:, ::2] * 0 + a,
                rng.standard_normal((236, 75))[::2] * 0 + b,
            ),
        ):
            run = engine.multiply(aa, bb)
            assert np.array_equal(run.c, base.c)

    @pytest.mark.parametrize("processes", [2, 3])
    def test_process_count_invariance(
        self, intel, engine_cls, backend_name, processes, rng
    ):
        # Process sharding (repro.gemm.sharded) never moves a backend's
        # own bits either: K is never split, so every C element's full
        # accumulation sequence stays inside one shard.
        a = rng.standard_normal((300, 170))
        b = rng.standard_normal((170, 420))
        serial = engine_cls(
            intel, cores=1, backend=backend_name
        ).multiply(a, b)
        sharded = engine_cls(
            intel, cores=1, backend=backend_name, processes=processes,
            workers=2,
        ).multiply(a, b)
        assert np.array_equal(serial.c, sharded.c)
        assert (
            serial.counters.without_ipc() == sharded.counters.without_ipc()
        )
        assert sharded.backend == backend_name

    def test_verified_run_is_bit_clean(self, intel, engine_cls, backend_name, rng):
        # verify=True on a clean run changes nothing — for ANY backend.
        a = rng.standard_normal((150, 260))
        b = rng.standard_normal((260, 130))
        plain = engine_cls(intel, backend=backend_name).multiply(a, b)
        verified = engine_cls(
            intel, backend=backend_name, verify=True
        ).multiply(a, b)
        assert np.array_equal(plain.c, verified.c)
        assert plain.counters == verified.counters
        assert verified.verify is not None
        assert verified.verify.mismatches == 0


class TestFaultHealing:
    """verify=True + injected corruption: heal or raise, never silently wrong."""

    def test_heals_bit_exactly(self, intel, engine_cls, backend_name, rng):
        a = rng.standard_normal((220, 400))
        b = rng.standard_normal((400, 180))
        clean = engine_cls(intel, backend=backend_name).multiply(a, b)
        plan = NumericFaultPlan(
            rules=(NumericFaultRule(block=0, strip=0, kind="scale", factor=3.0),)
        )
        healed = engine_cls(
            intel, backend=backend_name, verify=VerifyConfig(inject=plan),
            workers=2,
        ).multiply(a, b)
        assert np.array_equal(healed.c, clean.c)
        assert healed.verify.mismatches >= 1
        assert (
            healed.verify.retry_recoveries + healed.verify.oracle_recoveries
            >= 1
        )

    def test_raises_when_recovery_disabled(
        self, intel, engine_cls, backend_name, rng
    ):
        a = rng.standard_normal((96, 128))
        b = rng.standard_normal((128, 80))
        # A persistent fault (every retry re-corrupts) with the oracle
        # rung off must surface as a structured error.
        plan = NumericFaultPlan(
            rules=(
                NumericFaultRule(
                    block=0, strip=0, kind="scale", factor=3.0, times=99
                ),
            )
        )
        engine = engine_cls(
            intel,
            backend=backend_name,
            verify=VerifyConfig(
                inject=plan, max_retries=1, oracle_fallback=False
            ),
        )
        with pytest.raises(NumericFaultError):
            engine.multiply(a, b)


class TestStructuredErrors:
    def test_unknown_backend_name(self, intel):
        with pytest.raises(BackendCapabilityError, match="unknown backend"):
            CakeGemm(intel, backend="no-such-backend")

    def test_unavailable_backend(self, intel):
        if TorchBackend.available():
            pytest.skip("torch is installed on this host")
        with pytest.raises(BackendCapabilityError, match="not available"):
            CakeGemm(intel, backend="torch")
        err = pytest.raises(
            BackendCapabilityError, TorchBackend
        ).value
        assert err.backend == "torch"

    def test_integer_operands_carry_backend_name(self, intel, backend_name):
        engine = CakeGemm(intel, backend=backend_name)
        with pytest.raises(BackendCapabilityError, match="overflow") as exc:
            engine.multiply(
                np.ones((4, 4), dtype=np.int64), np.ones((4, 4), dtype=np.int64)
            )
        assert exc.value.backend == backend_name
        assert exc.value.dtype == np.dtype(np.int64)
        # Still a TypeError for callers holding the historic contract.
        assert isinstance(exc.value, TypeError)

    def test_unsupported_dtype_is_structured(self, intel):
        spec = BackendSpec(
            name="float32-only",
            capabilities=BackendCapabilities(
                deterministic=False,
                grouped=False,
                dtypes=frozenset({"float32"}),
            ),
            factory=lambda **_kw: BlasGroupBackend(),
        )
        with pytest.raises(
            BackendCapabilityError, match="float32-only"
        ) as exc:
            check_multiply_operands(
                np.ones((2, 2)), np.ones((2, 2)), backend=spec
            )
        assert exc.value.backend == "float32-only"
        assert exc.value.dtype == np.dtype(np.float64)


class _DoubledBackend(Backend):
    """Deliberately wrong backend used to prove the suite has teeth."""

    name = "test-doubled"
    capabilities = BackendCapabilities(
        deterministic=True, grouped=False, dtypes=None
    )

    def matmul_strip(self, a, b, c):
        c += 2.0 * (a @ b)


class TestRegistry:
    def test_registration_alone_enrolls(self, intel, rng):
        # A backend registered at runtime is immediately selectable by
        # name and subject to the same conformance battery.
        spec = BackendSpec(
            name="test-plain",
            capabilities=BackendCapabilities(
                deterministic=False, grouped=False, dtypes=None
            ),
            factory=lambda **_kw: BlasGroupBackend(),
        )
        register_backend(spec)
        try:
            assert "test-plain" in registered_backends()
            assert "test-plain" in available_backends()
            a = rng.standard_normal((50, 60))
            b = rng.standard_normal((60, 40))
            oracle = CakeGemm(intel, backend="numpy").multiply(a, b)
            run = CakeGemm(intel, backend="test-plain").multiply(a, b)
            _assert_conforms(run, oracle, spec, a, b)
        finally:
            backend_registry._REGISTRY.pop("test-plain", None)

    def test_conformance_catches_wrong_backend(self, intel, rng):
        a = rng.standard_normal((40, 50))
        b = rng.standard_normal((50, 30))
        oracle = CakeGemm(intel, backend="numpy").multiply(a, b)
        wrong = CakeGemm(intel, backend=_DoubledBackend()).multiply(a, b)
        with pytest.raises(AssertionError):
            _assert_conforms(
                wrong, oracle, resolve_backend(_DoubledBackend()), a, b
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(backend_spec("numpy"))

    def test_backend_instance_passthrough(self, intel, rng):
        a = rng.standard_normal((30, 40))
        b = rng.standard_normal((40, 20))
        instance = BlasGroupBackend()
        run = CakeGemm(intel, backend=instance).multiply(a, b)
        assert run.backend == "blas-group"

    def test_default_backend_round_trip(self, intel, rng):
        assert default_backend() == "numpy"
        old = set_default_backend("blas-group")
        try:
            assert old == "numpy"
            run = CakeGemm(intel).multiply(
                rng.standard_normal((20, 30)), rng.standard_normal((30, 10))
            )
            assert run.backend == "blas-group"
        finally:
            set_default_backend(old)
        assert default_backend() == "numpy"

    def test_torch_spec_registered_even_when_absent(self):
        # The spec is always present; only availability gates selection.
        assert "torch" in registered_backends()
        spec = backend_spec("torch")
        assert spec.requires == "torch"
        if not spec.is_available():
            assert "torch" not in available_backends()


# -- differential property sweep ---------------------------------------------

_PRIME_EXTENTS = (1, 2, 3, 7, 13, 31, 61, 127)


@given(
    mi=st.integers(0, len(_PRIME_EXTENTS) - 1),
    ni=st.integers(0, len(_PRIME_EXTENTS) - 1),
    ki=st.integers(0, len(_PRIME_EXTENTS) - 1),
    skew=st.sampled_from([1, 4, 16]),
    engine=st.sampled_from(sorted(ENGINES)),
    workers=st.sampled_from([1, 3]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25)
def test_differential_backends_agree(mi, ni, ki, skew, engine, workers, seed):
    """Prime/skewed shapes x engines x workers: all backends agree."""
    m = _PRIME_EXTENTS[mi]
    n = _PRIME_EXTENTS[ni] * skew
    k = _PRIME_EXTENTS[ki] * skew
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    intel = intel_i9_10900k()
    cls = ENGINES[engine]
    oracle = cls(intel, backend="numpy").multiply(a, b)
    for name in available_backends():
        run = cls(intel, backend=name, workers=workers).multiply(a, b)
        _assert_conforms(run, oracle, backend_spec(name), a, b)


@given(
    block=st.integers(0, 2),
    strip=st.integers(0, 1),
    kind=st.sampled_from(["scale", "bitflip"]),
    engine=st.sampled_from(sorted(ENGINES)),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15)
def test_differential_fault_heal_or_raise(block, strip, kind, engine, seed):
    """Injected corruption on any backend: healed bit-exactly or raised."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((170, 310))
    b = rng.standard_normal((310, 140))
    intel = intel_i9_10900k()
    cls = ENGINES[engine]
    plan = NumericFaultPlan(
        rules=(NumericFaultRule(block=block, strip=strip, kind=kind),)
    )
    for name in available_backends():
        clean = cls(intel, backend=name).multiply(a, b)
        try:
            healed = cls(
                intel, backend=name, verify=VerifyConfig(inject=plan)
            ).multiply(a, b)
        except NumericFaultError:
            continue  # raising is an allowed outcome; silence is not
        assert np.array_equal(healed.c, clean.c), (
            f"backend {name!r} returned silently wrong bits after a "
            f"{kind} fault at block={block} strip={strip}"
        )
