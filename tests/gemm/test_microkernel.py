"""Tests for the register-tile micro-kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import MicroKernel, naive_matmul


class TestTileMatmul:
    def test_accumulates_in_place(self, rng):
        k = MicroKernel(mr=4, nr=4, kc=8)
        a = rng.standard_normal((4, 8))
        b = rng.standard_normal((8, 4))
        c = np.ones((4, 4))
        k.tile_matmul(a, b, c)
        np.testing.assert_allclose(c, 1.0 + a @ b)


class TestPanelMatmul:
    @pytest.mark.parametrize("exact", [False, True])
    def test_matches_reference(self, rng, exact):
        k = MicroKernel(mr=6, nr=16, kc=32)
        a = rng.standard_normal((25, 32))
        b = rng.standard_normal((32, 40))
        c = np.zeros((25, 40))
        k.panel_matmul(a, b, c, exact_tiles=exact)
        np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    def test_exact_and_fast_agree(self, rng):
        k = MicroKernel(mr=6, nr=16, kc=32)
        a = rng.standard_normal((19, 13))
        b = rng.standard_normal((13, 37))
        c1, c2 = np.zeros((19, 37)), np.zeros((19, 37))
        k.panel_matmul(a, b, c1, exact_tiles=True)
        k.panel_matmul(a, b, c2, exact_tiles=False)
        np.testing.assert_allclose(c1, c2, rtol=1e-12)

    def test_exact_matches_naive_triple_loop(self, rng):
        """Independent validation against Algorithm 1."""
        k = MicroKernel(mr=3, nr=5, kc=7)
        a = rng.standard_normal((11, 7))
        b = rng.standard_normal((7, 9))
        c = np.zeros((11, 9))
        k.panel_matmul(a, b, c, exact_tiles=True)
        np.testing.assert_allclose(c, naive_matmul(a, b), rtol=1e-12)

    def test_shape_mismatch_rejected(self, rng):
        k = MicroKernel(mr=4, nr=4, kc=4)
        with pytest.raises(ValueError, match="A rows"):
            k.panel_matmul(np.zeros((3, 4)), np.zeros((4, 4)), np.zeros((4, 4)))
        with pytest.raises(ValueError, match="B cols"):
            k.panel_matmul(np.zeros((4, 4)), np.zeros((4, 3)), np.zeros((4, 4)))
        with pytest.raises(ValueError, match="A cols"):
            k.panel_matmul(np.zeros((4, 3)), np.zeros((4, 4)), np.zeros((4, 4)))

    @settings(max_examples=25)
    @given(
        st.integers(1, 30), st.integers(1, 30), st.integers(1, 30),
        st.integers(1, 8), st.integers(1, 8),
    )
    def test_exact_tiles_any_raggedness(self, m, n, k_, mr, nr):
        rng = np.random.default_rng(m * 1000 + n * 10 + k_)
        kern = MicroKernel(mr=mr, nr=nr, kc=max(k_, 1))
        a = rng.standard_normal((m, k_))
        b = rng.standard_normal((k_, n))
        c = np.zeros((m, n))
        kern.panel_matmul(a, b, c, exact_tiles=True)
        np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-12)


class TestUncheckedPath:
    def test_unchecked_matches_checked(self):
        rng = np.random.default_rng(3)
        kern = MicroKernel(mr=4, nr=4, kc=8)
        a = rng.standard_normal((10, 8))
        b = rng.standard_normal((8, 9))
        c1, c2 = np.zeros((10, 9)), np.zeros((10, 9))
        kern.panel_matmul(a, b, c1)
        kern.panel_matmul(a, b, c2, checked=False)
        np.testing.assert_array_equal(c1, c2)

    def test_checked_rejects_mismatch_unchecked_defers_to_numpy(self):
        kern = MicroKernel(mr=4, nr=4, kc=8)
        a, b, c = np.zeros((3, 5)), np.zeros((4, 2)), np.zeros((3, 2))
        with pytest.raises(ValueError, match="A cols"):
            kern.panel_matmul(a, b, c)
        with pytest.raises(ValueError):  # numpy's own matmul error
            kern.panel_matmul(a, b, c, checked=False)


class TestTileCycles:
    def test_full_tiles(self):
        k = MicroKernel(mr=6, nr=16, kc=32)
        assert k.panel_tile_cycles(12, 32, 32) == 2 * 2 * 1.0

    def test_ragged_rows_round_up(self):
        k = MicroKernel(mr=6, nr=16, kc=32)
        assert k.panel_tile_cycles(13, 16, 32) == 3 * 1 * 1.0

    def test_ragged_depth_scales_linearly(self):
        k = MicroKernel(mr=6, nr=16, kc=32)
        assert k.panel_tile_cycles(6, 16, 16) == pytest.approx(0.5)

    @given(
        st.integers(1, 1000), st.integers(1, 1000), st.integers(1, 64),
    )
    def test_at_least_proportional_to_work(self, m, n, k_):
        kern = MicroKernel(mr=6, nr=16, kc=64)
        cycles = kern.panel_tile_cycles(m, n, k_)
        exact = (m / 6) * (n / 16) * (k_ / 64)
        assert cycles >= exact - 1e-9
