"""Parallel numeric execution: exactness, thread-safety, operand handling.

The contract under test (see ``repro.gemm.parallel``): for any machine,
engine, shape and worker count, ``multiply()`` produces a C that is
**bit-identical** (``np.array_equal``) to the serial walk's, with
byte-identical traffic counters — parallelism may only change wall-clock,
never a single bit of the result or the accounting.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import CakeGemm, GotoGemm
from repro.gemm.parallel import (
    PhaseTimers,
    StripTask,
    check_multiply_operands,
    resolve_workers,
    run_strip_groups,
)
from repro.gemm.microkernel import MicroKernel
from repro.machines import intel_i9_10900k

from tests.conftest import assert_product_close

ENGINES = {"cake": CakeGemm, "goto": GotoGemm}


@pytest.fixture(params=["cake", "goto"])
def engine_cls(request):
    return ENGINES[request.param]


def _operands(rng, m=219, k=187, n=203):
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


class TestParallelExactness:
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_bit_identical_to_serial(self, machine, engine_cls, workers, rng):
        a, b = _operands(rng)
        serial = engine_cls(machine).multiply(a, b)
        parallel = engine_cls(machine, workers=workers).multiply(a, b)
        assert np.array_equal(serial.c, parallel.c)
        assert serial.counters == parallel.counters
        assert serial.time.seconds == parallel.time.seconds
        assert serial.bound_blocks == parallel.bound_blocks

    def test_workers_exceed_strip_count(self, intel, engine_cls, rng):
        # A problem with fewer block rows than workers: extra workers idle.
        a, b = _operands(rng, m=9, k=150, n=40)
        serial = engine_cls(intel).multiply(a, b)
        parallel = engine_cls(intel, workers=32).multiply(a, b)
        assert np.array_equal(serial.c, parallel.c)
        assert serial.counters == parallel.counters

    def test_single_modelled_core(self, intel, engine_cls, rng):
        # cores=1 means one strip per group; workers>1 must still be exact.
        a, b = _operands(rng, m=130, k=70, n=90)
        serial = engine_cls(intel, cores=1).multiply(a, b)
        parallel = engine_cls(intel, cores=1, workers=4).multiply(a, b)
        assert np.array_equal(serial.c, parallel.c)
        assert serial.counters == parallel.counters

    def test_exact_pack_oracle_matches(self, intel, engine_cls, rng):
        a, b = _operands(rng)
        fast = engine_cls(intel, workers=2).multiply(a, b)
        oracle = engine_cls(intel, exact_pack=True).multiply(a, b)
        assert np.array_equal(fast.c, oracle.c)
        assert fast.counters == oracle.counters

    def test_correct_product(self, intel, engine_cls, rng):
        a, b = _operands(rng)
        run = engine_cls(intel, workers=3).multiply(a, b)
        assert_product_close(run.c, a, b)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(1, 90), st.integers(1, 90), st.integers(1, 90),
        st.integers(1, 10), st.sampled_from([2, 3, 5]),
    )
    def test_any_shape_any_cores_any_workers(self, m, n, k, cores, workers):
        machine = intel_i9_10900k()
        rng = np.random.default_rng(m * 10007 + n * 101 + k * 7 + cores)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        for cls in (CakeGemm, GotoGemm):
            serial = cls(machine, cores=cores).multiply(a, b)
            parallel = cls(machine, cores=cores, workers=workers).multiply(a, b)
            assert np.array_equal(serial.c, parallel.c)
            assert serial.counters == parallel.counters


class TestThreadSafety:
    def test_engine_object_reused_concurrently(self, intel, engine_cls):
        """One engine instance must survive concurrent multiply() calls."""
        rng = np.random.default_rng(7)
        inputs = [_operands(rng, m=100 + 13 * i, k=80 + i, n=90) for i in range(6)]
        engine = engine_cls(intel, workers=2)
        references = [engine_cls(intel).multiply(a, b) for a, b in inputs]
        with ThreadPoolExecutor(max_workers=4) as pool:
            runs = list(pool.map(lambda ab: engine.multiply(*ab), inputs))
        for run, ref in zip(runs, references):
            assert np.array_equal(run.c, ref.c)
            assert run.counters == ref.counters

    def test_same_inputs_concurrently(self, intel, engine_cls, rng):
        a, b = _operands(rng)
        engine = engine_cls(intel, workers=3)
        reference = engine_cls(intel).multiply(a, b)
        with ThreadPoolExecutor(max_workers=3) as pool:
            runs = [pool.submit(engine.multiply, a, b) for _ in range(3)]
            for fut in runs:
                assert np.array_equal(fut.result().c, reference.c)


class TestOperandHandling:
    def test_fortran_ordered_operands(self, intel, engine_cls, rng):
        a, b = _operands(rng)
        ref = engine_cls(intel).multiply(a, b)
        run = engine_cls(intel, workers=2).multiply(
            np.asfortranarray(a), np.asfortranarray(b)
        )
        assert np.array_equal(run.c, ref.c)

    def test_transposed_views(self, intel, engine_cls, rng):
        a, b = _operands(rng)
        run = engine_cls(intel).multiply(a.T.copy().T, b.T.copy().T)
        ref = engine_cls(intel).multiply(a, b)
        assert np.array_equal(run.c, ref.c)

    def test_non_contiguous_slices(self, intel, engine_cls, rng):
        big_a = rng.standard_normal((240, 170))
        big_b = rng.standard_normal((170, 200))
        a, b = big_a[::2, ::1], big_b[:, ::2]  # strided views
        ref = engine_cls(intel).multiply(a.copy(), b.copy())
        run = engine_cls(intel, workers=2).multiply(a, b)
        assert np.array_equal(run.c, ref.c)

    def test_float32_stays_float32(self, intel, engine_cls, rng):
        a, b = _operands(rng, m=64, k=48, n=52)
        run = engine_cls(intel, workers=2).multiply(
            a.astype(np.float32), b.astype(np.float32)
        )
        assert run.c.dtype == np.float32

    def test_mixed_precision_widens(self, intel, engine_cls, rng):
        a, b = _operands(rng, m=40, k=30, n=35)
        run = engine_cls(intel).multiply(a.astype(np.float32), b)
        assert run.c.dtype == np.float64

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint8, bool])
    def test_overflow_prone_dtypes_rejected(self, intel, engine_cls, dtype):
        a = np.ones((8, 6), dtype=dtype)
        b = np.ones((6, 7), dtype=dtype)
        with pytest.raises(TypeError, match="overflow"):
            engine_cls(intel).multiply(a, b)

    def test_shape_mismatch_still_rejected(self, intel, engine_cls):
        with pytest.raises(ValueError, match="inner dimensions"):
            engine_cls(intel).multiply(np.zeros((3, 4)), np.zeros((5, 3)))
        with pytest.raises(ValueError, match="2-D"):
            engine_cls(intel).multiply(np.zeros(4), np.zeros((4, 4)))

    def test_check_multiply_operands_result_types(self):
        a32 = np.zeros((2, 3), dtype=np.float32)
        b32 = np.zeros((3, 2), dtype=np.float32)
        assert check_multiply_operands(a32, b32) == np.float32
        assert check_multiply_operands(a32, b32.astype(np.float64)) == np.float64

    def test_check_multiply_operands_accepts_degenerate(self):
        # BLAS semantics: zero extents are valid operands, not errors.
        assert check_multiply_operands(
            np.zeros((4, 0)), np.zeros((0, 3))
        ) == np.float64
        assert check_multiply_operands(np.zeros((0, 5)), np.zeros((5, 3)))
        # Mismatched inner dims stay rejected even when one side is empty.
        with pytest.raises(ValueError, match="inner dimensions"):
            check_multiply_operands(np.zeros((4, 0)), np.zeros((2, 3)))

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize(
        "m,k,n", [(7, 0, 5), (0, 6, 5), (7, 6, 0), (0, 0, 0)]
    )
    def test_degenerate_shapes(self, intel, engine_cls, workers, m, k, n):
        a = np.ones((m, k))
        b = np.ones((k, n))
        run = engine_cls(intel, workers=workers).multiply(a, b)
        # K == 0 is an empty sum: a zero-filled M x N product, exactly
        # what `a @ b` gives; M/N == 0 yield empty results.
        assert run.c.shape == (m, n)
        assert np.array_equal(run.c, a @ b)
        assert run.c.dtype == np.float64
        assert run.space.macs == 0 and run.space.flops == 0
        # Derived rates must not divide by zero.
        assert run.gflops == 0.0
        assert run.dram_gb_per_s == 0.0
        assert run.arithmetic_intensity == 0.0
        assert all(np.isfinite(v) for v in run.summary().values())

    def test_degenerate_float32(self, intel, engine_cls):
        run = engine_cls(intel).multiply(
            np.ones((3, 0), dtype=np.float32), np.ones((0, 4), dtype=np.float32)
        )
        assert run.c.dtype == np.float32
        assert run.c.shape == (3, 4)
        assert not run.c.any()


class TestPhaseTimers:
    def test_multiply_reports_phases(self, intel, engine_cls, rng):
        a, b = _operands(rng)
        run = engine_cls(intel, workers=2).multiply(a, b)
        assert set(run.phase_seconds) == {
            "pack", "compute", "reduce", "verify", "recover",
        }
        assert run.phase_seconds["pack"] > 0
        assert run.phase_seconds["compute"] > 0
        assert run.phase_seconds["verify"] == 0.0  # unverified run
        assert run.phase_seconds["recover"] == 0.0
        assert run.workers == 2

    def test_serial_path_has_zero_reduce(self, intel, engine_cls, rng):
        a, b = _operands(rng, m=60, k=40, n=50)
        run = engine_cls(intel).multiply(a, b)
        assert run.phase_seconds["reduce"] == 0.0
        assert run.workers == 1

    def test_analyze_has_no_phases(self, intel, engine_cls):
        run = engine_cls(intel).analyze(200, 150, 120)
        assert run.phase_seconds is None
        assert run.workers == 1


class TestExecutorUnit:
    """Direct run_strip_groups coverage, independent of the engines."""

    def _groups(self, rng, c):
        a1 = rng.standard_normal((4, 6))
        a2 = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 5))
        g1 = [StripTask(a1, b, c[:4]), StripTask(a2, b, c[4:])]
        g2 = [StripTask(a1, b, c[:4])]  # second accumulation pass on rows 0-3
        return [g1, g2], (a1, a2, b)

    def test_groups_are_ordered_barriers(self, rng):
        kernel = MicroKernel(mr=2, nr=2, kc=6)
        c_par = np.zeros((8, 5))
        groups, (a1, a2, b) = self._groups(rng, c_par)
        run_strip_groups(groups, kernel, workers=4)
        expected = np.zeros((8, 5))
        expected[:4] += a1 @ b
        expected[4:] += a2 @ b
        expected[:4] += a1 @ b
        assert np.array_equal(c_par, expected)

    def test_worker_exception_propagates(self, rng):
        kernel = MicroKernel(mr=2, nr=2, kc=4)
        bad = [
            [StripTask(np.zeros((2, 3)), np.zeros((4, 2)), np.zeros((2, 2)))]
        ]
        # checked=False in the executor means the mismatch surfaces as
        # numpy's own error — it must propagate out of the pool, not hang.
        with pytest.raises(ValueError):
            run_strip_groups(bad, kernel, workers=2)

    def test_timers_accumulate(self, rng):
        kernel = MicroKernel(mr=2, nr=2, kc=6)
        timers = PhaseTimers()
        c = np.zeros((8, 5))
        groups, _ = self._groups(rng, c)
        out = run_strip_groups(groups, kernel, workers=2, timers=timers)
        assert out is timers
        assert timers.compute_seconds > 0
        assert timers.workers == 2

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(4) == 4
        with pytest.raises(Exception):
            resolve_workers(0)
