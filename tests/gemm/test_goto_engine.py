"""Correctness and accounting tests for the GOTO baseline engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import GotoGemm

from tests.conftest import assert_product_close


class TestNumericalCorrectness:
    def test_square(self, intel, rng):
        a = rng.standard_normal((300, 300))
        b = rng.standard_normal((300, 300))
        run = GotoGemm(intel).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_rectangular(self, intel, rng):
        a = rng.standard_normal((513, 217))
        b = rng.standard_normal((217, 309))
        run = GotoGemm(intel).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_on_every_machine(self, machine, rng):
        a = rng.standard_normal((150, 90))
        b = rng.standard_normal((90, 210))
        run = GotoGemm(machine).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_exact_tiles_mode(self, arm, rng):
        a = rng.standard_normal((70, 40))
        b = rng.standard_normal((40, 50))
        run = GotoGemm(arm, exact_tiles=True).multiply(a, b)
        assert_product_close(run.c, a, b)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 120), st.integers(1, 120), st.integers(1, 120),
        st.integers(1, 10),
    )
    def test_any_shape_any_cores(self, m, n, k, cores):
        from repro.machines import intel_i9_10900k

        machine = intel_i9_10900k()
        rng = np.random.default_rng(m * 99991 + n * 31 + k)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        run = GotoGemm(machine, cores=cores).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_shape_mismatch_rejected(self, intel):
        with pytest.raises(ValueError, match="inner dimensions"):
            GotoGemm(intel).multiply(np.zeros((3, 4)), np.zeros((5, 3)))


class TestAccounting:
    def test_partial_c_streams_to_dram(self, intel):
        """The defining GOTO cost: partial C panels spill every slice."""
        run = GotoGemm(intel).analyze(3000, 3000, 3000)
        kb = -(-3000 // int(run.plan_summary["kc"]))
        assert kb > 1
        assert run.counters.ext_c_spill == 3000 * 3000 * (kb - 1)
        assert run.counters.ext_c_read == 3000 * 3000 * (kb - 1)
        assert run.counters.ext_c_write == 3000 * 3000

    def test_single_slice_has_no_spills(self, intel):
        """K <= kc: only one reduction slice, so no partial round-trips."""
        run = GotoGemm(intel).analyze(2000, 2000, 200)
        assert run.counters.ext_c_spill == 0
        assert run.counters.ext_c_read == 0

    def test_a_reread_per_column_panel(self, intel):
        """A is re-fetched for every nc-column panel (Figure 5)."""
        run = GotoGemm(intel).analyze(4000, 50000, 1000)
        nb = -(-50000 // int(run.plan_summary["nc"]))
        assert nb > 1
        assert run.counters.ext_a_read == 4000 * 1000 * nb

    def test_b_read_once(self, intel):
        run = GotoGemm(intel).analyze(3000, 3000, 3000)
        assert run.counters.ext_b_read == 3000 * 3000

    def test_analyze_matches_multiply_accounting(self, intel, rng):
        a = rng.standard_normal((330, 410))
        b = rng.standard_normal((410, 290))
        eng = GotoGemm(intel)
        num = eng.multiply(a, b)
        ana = eng.analyze(330, 290, 410)
        assert num.counters.ext_compute_elements == ana.counters.ext_compute_elements
        assert num.seconds == pytest.approx(ana.seconds)


class TestCakeVsGotoTraffic:
    """Section 4.4's comparison, checked at the counter level."""

    def test_cake_moves_less_external_data_at_large_k(self, intel):
        from repro.gemm import CakeGemm

        cake = CakeGemm(intel).analyze(4000, 4000, 4000)
        goto = GotoGemm(intel).analyze(4000, 4000, 4000)
        assert (
            cake.counters.ext_compute_elements
            < goto.counters.ext_compute_elements
        )

    def test_cake_moves_more_internal_data(self, intel):
        """The trade: external traffic is exchanged for internal traffic."""
        from repro.gemm import CakeGemm

        cake = CakeGemm(intel).analyze(4000, 4000, 4000)
        goto = GotoGemm(intel).analyze(4000, 4000, 4000)
        cake_int_per_mac = cake.counters.internal / cake.counters.macs
        goto_ext_per_mac = (
            goto.counters.ext_compute_elements / goto.counters.macs
        )
        cake_ext_per_mac = (
            cake.counters.ext_compute_elements / cake.counters.macs
        )
        assert cake_ext_per_mac < goto_ext_per_mac
        assert cake_int_per_mac > cake_ext_per_mac
