"""Cross-substrate property tests: counter identities over random shapes.

These pin the *algebraic* relationships between the engines, the schedule
analyzer, and the closed forms of Section 4 — for arbitrary problem
geometry, not just the figure sizes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import CakeGemm, GotoGemm
from repro.machines import intel_i9_10900k
from repro.schedule import analyze_reuse
from repro.util import ceil_div

dims = st.integers(1, 3000)


@st.composite
def shapes(draw):
    return draw(dims), draw(dims), draw(dims)


class TestCakeCounterIdentities:
    @settings(max_examples=25, deadline=None)
    @given(shapes(), st.integers(1, 10))
    def test_counters_equal_reuse_analyzer(self, shape, cores):
        """For every geometry, executor residency tracking == analyzer."""
        m, n, k = shape
        eng = CakeGemm(intel_i9_10900k(), cores=cores)
        run = eng.analyze(m, n, k)
        plan = eng.plan_for(m, n, k)
        io = analyze_reuse(
            plan.grid(),
            plan.schedule(),
            capacity_elements=plan.residency_elements,
        )
        assert run.counters.ext_a_read == io.io_a
        assert run.counters.ext_b_read == io.io_b
        assert run.counters.ext_c_write == io.io_c_final == m * n

    @settings(max_examples=25, deadline=None)
    @given(shapes(), st.integers(1, 10))
    def test_capacity_model_never_exceeds_adjacency_model(self, shape, cores):
        """The Section 4.3 LRU can only retain *more* than one block's
        surfaces, so tightening the counter model must never add IO."""
        m, n, k = shape
        plan = CakeGemm(intel_i9_10900k(), cores=cores).plan_for(m, n, k)
        grid, order = plan.grid(), plan.schedule()
        adjacency = analyze_reuse(grid, order)
        capacity = analyze_reuse(
            grid, order, capacity_elements=plan.residency_elements
        )
        assert capacity.io_a <= adjacency.io_a
        assert capacity.io_b <= adjacency.io_b
        assert capacity.io_total <= adjacency.io_total
        # Both still pay every compulsory transfer.
        assert capacity.io_a >= m * k
        assert capacity.io_b >= k * n
        assert capacity.io_c_final == m * n

    @settings(max_examples=25, deadline=None)
    @given(shapes(), st.integers(1, 10))
    def test_metric_identities(self, shape, cores):
        m, n, k = shape
        run = CakeGemm(intel_i9_10900k(), cores=cores).analyze(m, n, k)
        assert run.gflops * run.seconds * 1e9 == pytest.approx(run.flops)
        assert run.dram_gb_per_s * run.seconds * 1e9 == pytest.approx(
            run.dram_bytes
        )
        assert run.counters.macs == m * n * k

    @settings(max_examples=25, deadline=None)
    @given(shapes())
    def test_never_spills_partials(self, shape):
        m, n, k = shape
        run = CakeGemm(intel_i9_10900k()).analyze(m, n, k)
        assert run.counters.ext_c_spill == 0
        assert run.counters.ext_c_read == 0

    @settings(max_examples=15, deadline=None)
    @given(shapes())
    def test_input_io_bounded_by_no_reuse_worst_case(self, shape):
        """A and B traffic never exceeds re-fetching each surface for
        every block that uses it."""
        m, n, k = shape
        eng = CakeGemm(intel_i9_10900k())
        run = eng.analyze(m, n, k)
        grid = eng.plan_for(m, n, k).grid()
        assert run.counters.ext_a_read <= m * k * grid.nb
        assert run.counters.ext_b_read <= k * n * grid.mb
        # ... and never undershoots the compulsory minimum.
        assert run.counters.ext_a_read >= m * k
        assert run.counters.ext_b_read >= k * n


class TestGotoCounterIdentities:
    @settings(max_examples=25, deadline=None)
    @given(shapes(), st.integers(1, 10))
    def test_closed_forms(self, shape, cores):
        """Section 4.1's traffic, exactly, for every geometry."""
        m, n, k = shape
        eng = GotoGemm(intel_i9_10900k(), cores=cores)
        run = eng.analyze(m, n, k)
        plan = eng.plan_for(m, n, k)
        kb = ceil_div(k, min(plan.kc, k))
        nb = ceil_div(n, min(plan.nc, n))
        assert run.counters.ext_b_read == k * n
        assert run.counters.ext_a_read == m * k * nb
        assert run.counters.ext_c_write == m * n
        assert run.counters.ext_c_spill == m * n * (kb - 1)
        assert run.counters.ext_c_read == m * n * (kb - 1)

    @settings(max_examples=20, deadline=None)
    @given(shapes())
    def test_cake_never_moves_more_external_data(self, shape):
        """CAKE's compute-phase external traffic <= GOTO's, always.

        (Their A/B terms can differ either way block-by-block, but
        GOTO's partial-C stream dominates whenever K spans multiple
        slices, and with one slice both engines hit the same compulsory
        floor.)"""
        m, n, k = shape
        cake = CakeGemm(intel_i9_10900k()).analyze(m, n, k)
        goto = GotoGemm(intel_i9_10900k()).analyze(m, n, k)
        assert (
            cake.counters.ext_compute_elements
            <= goto.counters.ext_compute_elements * 1.05
        )

    @pytest.mark.parametrize(
        "shape",
        [
            # Falsified the adjacency-only counter model: K splits into a
            # ragged [192, 1] pair, and the old model re-charged the big A
            # slice on every N turn while GOTO (kc=252 >= k) read A once.
            (215, 1921, 193),
            # Capacity pressure: blocks near nominal size, multiple K
            # slices — exercises the LRU at its Section 4.3 budget.
            (3000, 3000, 250),
        ],
    )
    def test_cake_never_moves_more_external_data_regressions(self, shape):
        """Pinned falsifying shapes for the counter-model fix."""
        m, n, k = shape
        cake = CakeGemm(intel_i9_10900k()).analyze(m, n, k)
        goto = GotoGemm(intel_i9_10900k()).analyze(m, n, k)
        assert (
            cake.counters.ext_compute_elements
            <= goto.counters.ext_compute_elements
        )
        # Both engines sit exactly on the compulsory floor here: one K
        # slice fits GOTO's kc and CAKE's retained surfaces cover the rest.
        assert cake.counters.ext_compute_elements == m * k + k * n + m * n
