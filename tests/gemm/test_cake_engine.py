"""Correctness and accounting tests for the CAKE engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import CakeGemm
from repro.schedule import analyze_reuse

from tests.conftest import assert_product_close


class TestNumericalCorrectness:
    def test_square(self, intel, rng):
        a = rng.standard_normal((300, 300))
        b = rng.standard_normal((300, 300))
        run = CakeGemm(intel).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_rectangular(self, intel, rng):
        a = rng.standard_normal((513, 217))
        b = rng.standard_normal((217, 309))
        run = CakeGemm(intel).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_skewed_shapes(self, intel, rng):
        for m, k, n in [(7, 400, 11), (400, 7, 11), (11, 7, 400)]:
            a = rng.standard_normal((m, k))
            b = rng.standard_normal((k, n))
            run = CakeGemm(intel).multiply(a, b)
            assert_product_close(run.c, a, b)

    def test_on_every_machine(self, machine, rng):
        a = rng.standard_normal((150, 90))
        b = rng.standard_normal((90, 210))
        run = CakeGemm(machine).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_exact_tiles_mode(self, arm, rng):
        a = rng.standard_normal((70, 40))
        b = rng.standard_normal((40, 50))
        run = CakeGemm(arm, exact_tiles=True).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_single_core(self, intel, rng):
        a = rng.standard_normal((100, 60))
        b = rng.standard_normal((60, 80))
        run = CakeGemm(intel, cores=1).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_float32_inputs(self, intel, rng):
        a = rng.standard_normal((128, 96)).astype(np.float32)
        b = rng.standard_normal((96, 160)).astype(np.float32)
        run = CakeGemm(intel).multiply(a, b)
        assert run.c.dtype == np.float32
        np.testing.assert_allclose(run.c, a @ b, rtol=2e-4, atol=1e-4)

    def test_identity(self, intel):
        a = np.eye(64)
        b = np.arange(64 * 48, dtype=float).reshape(64, 48)
        run = CakeGemm(intel).multiply(a, b)
        np.testing.assert_allclose(run.c, b)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 120), st.integers(1, 120), st.integers(1, 120),
        st.integers(1, 10),
    )
    def test_any_shape_any_cores(self, m, n, k, cores):
        from repro.machines import intel_i9_10900k

        machine = intel_i9_10900k()
        rng = np.random.default_rng(m * 10007 + n * 101 + k)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        run = CakeGemm(machine, cores=cores).multiply(a, b)
        assert_product_close(run.c, a, b)

    def test_shape_mismatch_rejected(self, intel):
        with pytest.raises(ValueError, match="inner dimensions"):
            CakeGemm(intel).multiply(np.zeros((3, 4)), np.zeros((5, 3)))

    def test_non_2d_rejected(self, intel):
        with pytest.raises(ValueError, match="2-D"):
            CakeGemm(intel).multiply(np.zeros(4), np.zeros((4, 4)))


class TestAccounting:
    def test_no_partial_spills_ever(self, intel):
        run = CakeGemm(intel).analyze(2000, 2000, 2000)
        assert run.counters.ext_c_spill == 0
        assert run.counters.ext_c_read == 0

    def test_c_written_exactly_once(self, intel):
        run = CakeGemm(intel).analyze(1500, 1100, 900)
        assert run.counters.ext_c_write == 1500 * 1100

    def test_macs_counted(self, intel):
        run = CakeGemm(intel).analyze(100, 200, 300)
        assert run.counters.macs == 100 * 200 * 300

    def test_counters_match_reuse_analyzer(self, intel):
        """Executor-side residency tracking must agree exactly with the
        standalone schedule analyzer."""
        eng = CakeGemm(intel)
        run = eng.analyze(3100, 2900, 1700)
        plan = eng.plan_for(3100, 2900, 1700)
        report = analyze_reuse(
            plan.grid(),
            plan.schedule(),
            capacity_elements=plan.residency_elements,
        )
        assert run.counters.ext_a_read == report.io_a
        assert run.counters.ext_b_read == report.io_b
        assert run.counters.ext_c_write == report.io_c_final

    def test_packing_traffic(self, intel):
        run = CakeGemm(intel).analyze(100, 200, 300)
        assert run.counters.ext_pack == 2 * (100 * 300 + 300 * 200)

    def test_analyze_matches_multiply_accounting(self, intel, rng):
        """The analytic walk and the numerical walk share all accounting."""
        a = rng.standard_normal((330, 410))
        b = rng.standard_normal((410, 290))
        eng = CakeGemm(intel)
        num = eng.multiply(a, b)
        ana = eng.analyze(330, 290, 410)
        assert num.counters.ext_compute_elements == ana.counters.ext_compute_elements
        assert num.counters.tile_cycles == ana.counters.tile_cycles
        assert num.seconds == pytest.approx(ana.seconds)

    def test_plan_summary_present(self, intel):
        run = CakeGemm(intel).analyze(500, 500, 500)
        assert {"alpha", "mc", "kc", "m_block", "n_block"} <= set(
            run.plan_summary
        )

    def test_gflops_and_bandwidth_positive(self, machine):
        run = CakeGemm(machine).analyze(400, 400, 400)
        assert run.gflops > 0
        assert run.dram_gb_per_s > 0
        assert run.seconds > 0
