"""Tests for the BLAS-style gemm surface."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import CakeGemm, GotoGemm, gemm


class TestGemmSemantics:
    def test_plain_product(self, intel, rng):
        a = rng.standard_normal((60, 40))
        b = rng.standard_normal((40, 50))
        run = gemm(a, b, engine=CakeGemm(intel))
        np.testing.assert_allclose(run.c, a @ b, rtol=1e-10)

    def test_alpha_scales(self, intel, rng):
        a = rng.standard_normal((30, 30))
        b = rng.standard_normal((30, 30))
        run = gemm(a, b, alpha=2.5, engine=CakeGemm(intel))
        np.testing.assert_allclose(run.c, 2.5 * (a @ b), rtol=1e-10)

    def test_beta_accumulates(self, intel, rng):
        a = rng.standard_normal((30, 30))
        b = rng.standard_normal((30, 30))
        c = rng.standard_normal((30, 30))
        run = gemm(a, b, c, alpha=0.5, beta=-1.5, engine=CakeGemm(intel))
        np.testing.assert_allclose(run.c, 0.5 * (a @ b) - 1.5 * c, rtol=1e-9)

    def test_input_c_not_mutated(self, intel, rng):
        a = rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 20))
        c = rng.standard_normal((20, 20))
        c_copy = c.copy()
        gemm(a, b, c, beta=1.0, engine=CakeGemm(intel))
        np.testing.assert_array_equal(c, c_copy)

    def test_transpose_a(self, intel, rng):
        a = rng.standard_normal((40, 60))
        b = rng.standard_normal((40, 50))
        run = gemm(a, b, transpose_a=True, engine=CakeGemm(intel))
        np.testing.assert_allclose(run.c, a.T @ b, rtol=1e-10)

    def test_transpose_b(self, intel, rng):
        a = rng.standard_normal((60, 40))
        b = rng.standard_normal((50, 40))
        run = gemm(a, b, transpose_b=True, engine=CakeGemm(intel))
        np.testing.assert_allclose(run.c, a @ b.T, rtol=1e-10)

    def test_transpose_both_on_goto(self, arm, rng):
        a = rng.standard_normal((40, 60))
        b = rng.standard_normal((50, 40))
        run = gemm(
            a, b, transpose_a=True, transpose_b=True, engine=GotoGemm(arm)
        )
        np.testing.assert_allclose(run.c, a.T @ b.T, rtol=1e-10)

    def test_default_engine(self, rng):
        a = rng.standard_normal((16, 16))
        run = gemm(a, a)
        np.testing.assert_allclose(run.c, a @ a, rtol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(2, 40), st.integers(2, 40), st.integers(2, 40),
        st.floats(-2, 2), st.floats(-2, 2),
        st.booleans(), st.booleans(),
    )
    def test_blas_identity(self, m, n, k, alpha, beta, ta, tb):
        from repro.machines import intel_i9_10900k

        rng = np.random.default_rng(m * 1009 + n * 17 + k)
        a = rng.standard_normal((k, m) if ta else (m, k))
        b = rng.standard_normal((n, k) if tb else (k, n))
        c = rng.standard_normal((m, n))
        run = gemm(
            a, b, c, alpha=alpha, beta=beta, transpose_a=ta, transpose_b=tb,
            engine=CakeGemm(intel_i9_10900k()),
        )
        op_a = a.T if ta else a
        op_b = b.T if tb else b
        expected = alpha * (op_a @ op_b) + (beta * c if beta != 0.0 else 0.0)
        np.testing.assert_allclose(run.c, expected, rtol=1e-8, atol=1e-9)


class TestGemmValidation:
    def test_beta_without_c_rejected(self, intel, rng):
        a = rng.standard_normal((8, 8))
        with pytest.raises(ValueError, match="requires an input C"):
            gemm(a, a, beta=1.0, engine=CakeGemm(intel))

    def test_wrong_c_shape_rejected(self, intel, rng):
        a = rng.standard_normal((8, 8))
        c = rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="expected"):
            gemm(a, a, c, beta=1.0, engine=CakeGemm(intel))

    def test_inner_mismatch_after_transpose(self, intel, rng):
        a = rng.standard_normal((8, 6))
        b = rng.standard_normal((8, 4))
        with pytest.raises(ValueError, match="after transposition"):
            gemm(a, b, engine=CakeGemm(intel))

    def test_beta_adds_c_traffic(self, intel, rng):
        a = rng.standard_normal((32, 32))
        c = rng.standard_normal((32, 32))
        plain = gemm(a, a, engine=CakeGemm(intel))
        fused = gemm(a, a, c, beta=1.0, engine=CakeGemm(intel))
        assert (
            fused.counters.ext_c_read
            == plain.counters.ext_c_read + c.size
        )
