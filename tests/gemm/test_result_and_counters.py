"""Tests for GemmRun derived metrics and TrafficCounters algebra."""

import pytest

from repro.gemm import CakeGemm, TrafficCounters
from repro.util.units import mm_flops


class TestTrafficCounters:
    def test_totals(self):
        c = TrafficCounters(
            ext_a_read=10, ext_b_read=20, ext_c_write=5,
            ext_c_spill=3, ext_c_read=2, ext_pack=40,
        )
        assert c.ext_compute_elements == 40
        assert c.ext_total_elements == 80
        assert c.ext_total_bytes(4) == 320

    def test_merge(self):
        a = TrafficCounters(ext_a_read=1, internal=2, tile_cycles=3.0, macs=4)
        b = TrafficCounters(ext_a_read=10, internal=20, tile_cycles=30.0, macs=40)
        a.merge(b)
        assert a.ext_a_read == 11
        assert a.internal == 22
        assert a.tile_cycles == 33.0
        assert a.macs == 44

    def test_default_is_zero(self):
        c = TrafficCounters()
        assert c.ext_total_elements == 0
        assert c.ext_total_bytes(8) == 0


class TestGemmRunMetrics:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.machines import intel_i9_10900k

        return CakeGemm(intel_i9_10900k()).analyze(640, 480, 320)

    def test_flops(self, run):
        assert run.flops == mm_flops(640, 480, 320)

    def test_seconds_is_blocks_plus_packing(self, run):
        assert run.seconds == pytest.approx(
            run.time.seconds + run.packing_seconds
        )

    def test_gflops_definition(self, run):
        assert run.gflops == pytest.approx(run.flops / run.seconds / 1e9)

    def test_dram_bw_definition(self, run):
        assert run.dram_gb_per_s == pytest.approx(
            run.dram_bytes / run.seconds / 1e9
        )

    def test_arithmetic_intensity_definition(self, run):
        assert run.arithmetic_intensity == pytest.approx(
            run.flops / run.dram_bytes
        )

    def test_summary_keys(self, run):
        assert {
            "gflops", "seconds", "dram_gb_per_s", "dram_bytes",
            "arithmetic_intensity", "packing_seconds",
        } == set(run.summary())

    def test_bound_blocks_cover_all_blocks(self, run):
        assert sum(run.bound_blocks.values()) == run.plan_summary["blocks"]


class TestNaiveLimit:
    def test_size_guard(self, rng):
        import numpy as np

        from repro.gemm import naive_matmul

        with pytest.raises(ValueError, match="validation"):
            naive_matmul(np.zeros((200, 10)), np.zeros((10, 10)))

    def test_inner_dim_guard(self):
        import numpy as np

        from repro.gemm import naive_matmul

        with pytest.raises(ValueError, match="inner dimensions"):
            naive_matmul(np.zeros((4, 5)), np.zeros((6, 4)))
