"""Batch analyzer vs. scalar walk: bit-for-bit equivalence.

The contract under test is stronger than the ISSUE's 1e-9 tolerance: the
batch path performs the same IEEE operations in the same order as the
scalar walk, so every float — per-run seconds, the component breakdown,
``tile_cycles`` — must be *equal*, not merely close. Integer counters,
bound tallies and plan summaries are compared exactly as well.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.batch import analyze_cake_batch, analyze_goto_batch
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.schedule.space import ComputationSpace

COUNTER_FIELDS = (
    "ext_a_read", "ext_b_read", "ext_c_write", "ext_c_spill",
    "ext_c_read", "ext_pack", "internal", "macs",
)

#: Remainder-heavy shapes: primes leave ragged blocks on every axis, and
#: the skewed cases exercise single-block and many-wave degeneracies.
SHAPES = [
    (512, 512, 512),
    (997, 1013, 991),
    (64, 4096, 128),
    (3000, 50, 1500),
    (1, 1, 2048),
]


def assert_runs_identical(scalar, batch):
    for field in COUNTER_FIELDS:
        assert getattr(batch.counters, field) == getattr(scalar.counters, field)
    assert batch.counters.tile_cycles == scalar.counters.tile_cycles
    assert batch.time.seconds == scalar.time.seconds
    assert batch.time.compute_seconds == scalar.time.compute_seconds
    assert batch.time.external_seconds == scalar.time.external_seconds
    assert batch.time.internal_seconds == scalar.time.internal_seconds
    assert batch.time.bound == scalar.time.bound
    assert batch.bound_blocks == scalar.bound_blocks
    assert batch.plan_summary == scalar.plan_summary
    assert batch.packing_seconds == scalar.packing_seconds
    assert batch.engine == scalar.engine
    assert batch.cores == scalar.cores
    assert batch.c is None


class TestCakeEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_scalar_walk(self, machine, shape):
        m, n, k = shape
        scalar = CakeGemm(machine, exact_walk=True).analyze(m, n, k)
        batch = CakeGemm(machine).analyze(m, n, k)
        assert_runs_identical(scalar, batch)

    def test_direct_call_matches_engine_route(self, intel):
        direct = analyze_cake_batch(intel, ComputationSpace(700, 900, 500))
        routed = CakeGemm(intel).analyze(700, 900, 500)
        assert_runs_identical(direct, routed)

    def test_reduced_cores_and_alpha(self, intel):
        scalar = CakeGemm(intel, cores=3, alpha=2.0, exact_walk=True)
        batch = CakeGemm(intel, cores=3, alpha=2.0)
        assert_runs_identical(
            scalar.analyze(999, 777, 555), batch.analyze(999, 777, 555)
        )

    def test_matches_multiply_accounting(self, intel, rng):
        """The batch path agrees with full numerical execution too."""
        m, n, k = 150, 170, 130
        num = CakeGemm(intel).multiply(
            rng.standard_normal((m, k)), rng.standard_normal((k, n))
        )
        ana = CakeGemm(intel).analyze(m, n, k)
        assert ana.counters.tile_cycles == num.counters.tile_cycles
        assert ana.time.seconds == num.time.seconds
        assert ana.bound_blocks == num.bound_blocks


class TestGotoEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_matches_scalar_walk(self, machine, shape):
        m, n, k = shape
        scalar = GotoGemm(machine, exact_walk=True).analyze(m, n, k)
        batch = GotoGemm(machine).analyze(m, n, k)
        assert_runs_identical(scalar, batch)

    def test_direct_call_matches_engine_route(self, intel):
        direct = analyze_goto_batch(intel, ComputationSpace(700, 900, 500))
        routed = GotoGemm(intel).analyze(700, 900, 500)
        assert_runs_identical(direct, routed)

    def test_reduced_cores(self, amd):
        scalar = GotoGemm(amd, cores=5, exact_walk=True)
        batch = GotoGemm(amd, cores=5)
        assert_runs_identical(
            scalar.analyze(2100, 600, 1700), batch.analyze(2100, 600, 1700)
        )


@settings(max_examples=30)
@given(
    preset=st.sampled_from(["intel", "amd", "arm"]),
    m=st.integers(1, 1500),
    n=st.integers(1, 1500),
    k=st.integers(1, 1500),
    cores=st.one_of(st.none(), st.integers(1, 4)),
)
def test_cake_equivalence_hypothesis(preset, m, n, k, cores):
    machine = _preset(preset)
    scalar = CakeGemm(machine, cores=cores, exact_walk=True).analyze(m, n, k)
    batch = CakeGemm(machine, cores=cores).analyze(m, n, k)
    assert_runs_identical(scalar, batch)


@settings(max_examples=30)
@given(
    preset=st.sampled_from(["intel", "amd", "arm"]),
    m=st.integers(1, 1500),
    n=st.integers(1, 1500),
    k=st.integers(1, 1500),
    cores=st.one_of(st.none(), st.integers(1, 4)),
)
def test_goto_equivalence_hypothesis(preset, m, n, k, cores):
    machine = _preset(preset)
    scalar = GotoGemm(machine, cores=cores, exact_walk=True).analyze(m, n, k)
    batch = GotoGemm(machine, cores=cores).analyze(m, n, k)
    assert_runs_identical(scalar, batch)


def _preset(name):
    from repro.machines import (
        amd_ryzen_9_5950x,
        arm_cortex_a53,
        intel_i9_10900k,
    )

    return {
        "intel": intel_i9_10900k,
        "amd": amd_ryzen_9_5950x,
        "arm": arm_cortex_a53,
    }[name]()
