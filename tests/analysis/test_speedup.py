"""Tests for the Figure 9 speedup series."""

import pytest

from repro.analysis import speedup_series


class TestSpeedupSeries:
    def test_normalised_to_one_core(self, intel):
        s = speedup_series(intel, 600, engine="cake", max_cores=4)
        assert s.cores == (1, 2, 3, 4)
        assert s.speedups[0] == pytest.approx(1.0)

    def test_speedups_at_most_linear_plus_noise(self, intel):
        s = speedup_series(intel, 1200, engine="cake", max_cores=8)
        for cores, sp in zip(s.cores, s.speedups):
            assert sp <= cores * 1.05

    def test_goto_engine(self, intel):
        s = speedup_series(intel, 600, engine="goto", max_cores=4)
        assert s.engine == "goto"
        assert len(s.speedups) == 4

    def test_unknown_engine_rejected(self, intel):
        with pytest.raises(ValueError, match="engine"):
            speedup_series(intel, 600, engine="blis")

    def test_seconds_positive_and_monotone_enough(self, arm):
        s = speedup_series(arm, 600, engine="cake")
        assert all(t > 0 for t in s.seconds)
        assert s.seconds[-1] <= s.seconds[0]

    def test_figure9_contrast_small_matrix(self, intel):
        """n=1000: MKL's fixed strips cap its speedup well below CAKE's
        (the mechanism behind Figure 9a's smallest-size curves)."""
        cake = speedup_series(intel, 1000, engine="cake")
        goto = speedup_series(intel, 1000, engine="goto")
        assert cake.speedups[-1] > goto.speedups[-1] * 1.3
