"""Tests for the Figure 10-12 scaling series and Figure 8 sweeps."""

import numpy as np
import pytest

from repro.analysis import relative_throughput_grid, scaling_series


class TestScalingSeries:
    def test_structure(self, arm):
        pts = scaling_series(arm, 960, extrapolate_to=8)
        assert [p.cores for p in pts] == list(range(1, 9))
        assert [p.extrapolated for p in pts] == [False] * 4 + [True] * 4

    def test_core_step(self, amd):
        pts = scaling_series(amd, 960, core_step=4)
        assert [p.cores for p in pts] == [4, 8, 12, 16]

    def test_each_point_has_both_engines(self, arm):
        pts = scaling_series(arm, 960)
        for p in pts:
            assert p.cake.engine == "cake"
            assert p.goto.engine == "goto"
            assert p.cake_optimal_dram_gb_per_s > 0
            assert p.internal_bw_gb_per_s > 0

    def test_extrapolated_points_use_grown_machine(self, arm):
        pts = {p.cores: p for p in scaling_series(arm, 960, extrapolate_to=8)}
        # Internal BW linearised beyond the physical 4 cores.
        per_core = arm.internal_bw.per_core_gb_per_s
        assert pts[8].internal_bw_gb_per_s == pytest.approx(8 * per_core)
        # Physical points keep the measured (knee'd) curve.
        assert pts[4].internal_bw_gb_per_s < 4 * per_core


class TestShapeSweep:
    def test_grid_shape(self, intel):
        grid = relative_throughput_grid(
            intel, m_values=(500, 1000), k_values=(500, 1000, 1500)
        )
        assert grid.ratio.shape == (3, 2)
        assert np.all(grid.ratio > 0)

    def test_aspect_changes_n(self, intel):
        """aspect=2 means N = M/2: thinner B panels, same grid shape."""
        g1 = relative_throughput_grid(
            intel, aspect=2.0, m_values=(1000,), k_values=(1000,)
        )
        assert g1.aspect == 2.0
        assert g1.ratio.shape == (1, 1)

    def test_ratio_at_picks_nearest(self, intel):
        grid = relative_throughput_grid(
            intel, m_values=(500, 1000), k_values=(500, 1000)
        )
        assert grid.ratio_at(520, 490) == grid.ratio[0, 0]
        assert grid.ratio_at(990, 1010) == grid.ratio[1, 1]

    def test_fraction_above(self, intel):
        grid = relative_throughput_grid(
            intel, m_values=(500, 1000), k_values=(500, 1000)
        )
        assert grid.fraction_above(0.0) == 1.0
        assert grid.fraction_above(1e9) == 0.0

    def test_small_matrices_favour_cake(self, intel):
        """The Figure 8 headline at test scale."""
        grid = relative_throughput_grid(
            intel, m_values=(1000, 4000), k_values=(1000, 4000)
        )
        assert grid.ratio_at(1000, 1000) > 1.2
