"""Tests for roofline chart data."""

import pytest

from repro.analysis import (
    classify_point,
    operating_point,
    roofline_curve,
)
from repro.gemm import CakeGemm, GotoGemm


class TestRooflineCurve:
    def test_roof_and_diagonal(self, intel):
        curve = roofline_curve(intel)
        assert max(curve.attainable_gflops) == pytest.approx(
            curve.peak_gflops
        )
        # Low-AI end sits on the bandwidth diagonal.
        assert curve.attainable_gflops[0] == pytest.approx(
            curve.intensities[0] * curve.dram_gb_per_s
        )

    def test_monotone_nondecreasing(self, machine):
        curve = roofline_curve(machine)
        g = curve.attainable_gflops
        assert all(b >= a for a, b in zip(g, g[1:]))

    def test_ridge_point(self, intel):
        curve = roofline_curve(intel)
        assert curve.ridge_intensity == pytest.approx(
            curve.peak_gflops / curve.dram_gb_per_s
        )

    def test_cores_scale_roof_not_diagonal(self, intel):
        full = roofline_curve(intel)
        half = roofline_curve(intel, cores=5)
        assert half.peak_gflops == pytest.approx(full.peak_gflops / 2)
        assert half.dram_gb_per_s == full.dram_gb_per_s

    def test_invalid_range_rejected(self, intel):
        with pytest.raises(ValueError, match="ai_max"):
            roofline_curve(intel, ai_min=8.0, ai_max=2.0)


class TestOperatingPoints:
    def test_cake_sits_right_of_goto(self, intel):
        """CAKE's CB blocks raise arithmetic intensity — its operating
        point sits to the right of GOTO's on the same chart."""
        n = 2304
        cake = operating_point(CakeGemm(intel).analyze(n, n, n))
        goto = operating_point(GotoGemm(intel).analyze(n, n, n))
        assert cake.arithmetic_intensity > 2 * goto.arithmetic_intensity

    def test_arm_goto_is_memory_bound_cake_not(self, arm):
        """On the bandwidth-starved A53 the GOTO point lands left of the
        ridge; CAKE's lands right of it."""
        n = 1536
        curve = roofline_curve(arm)
        cake = operating_point(CakeGemm(arm).analyze(n, n, n))
        goto = operating_point(GotoGemm(arm).analyze(n, n, n))
        assert classify_point(curve, goto) == "memory-bound"
        assert classify_point(curve, cake) == "compute-bound"

    def test_label_defaults_to_engine(self, intel):
        pt = operating_point(CakeGemm(intel).analyze(256, 256, 256))
        assert pt.label == "cake"
