"""Tests for the crossover finder."""

import pytest

from repro.analysis import find_crossover_size, throughput_ratio
from repro.machines import arm_cortex_a53, intel_i9_10900k


class TestThroughputRatio:
    def test_positive(self, intel):
        assert throughput_ratio(intel, 1024) > 0

    def test_small_sizes_favour_cake_on_intel(self, intel):
        assert throughput_ratio(intel, 1000) > 1.3


class TestFindCrossover:
    def test_intel_crossover_exists(self):
        """On the well-fed Intel, CAKE's advantage fades toward parity
        somewhere between 1000 and 8000 (Figure 8's contour structure)."""
        c = find_crossover_size(
            intel_i9_10900k(), threshold=1.3, lo=512, hi=8192, tolerance=512
        )
        assert c.size is not None
        assert 512 <= c.size <= 8192
        assert c.ratio_at_size <= 1.3

    def test_arm_never_crosses(self):
        """On the bandwidth-starved A53, CAKE wins at every size in
        range — the paper's 'all problem sizes' ARM claim."""
        c = find_crossover_size(
            arm_cortex_a53(), threshold=1.1, lo=512, hi=3072, tolerance=512
        )
        assert c.size is None
        assert c.ratio_at_size > 1.1

    def test_degenerate_threshold_returns_lo(self, intel):
        c = find_crossover_size(
            intel, threshold=1e9, lo=512, hi=2048, tolerance=512
        )
        assert c.size == 512

    def test_bad_range_rejected(self, intel):
        with pytest.raises(ValueError, match="lo < hi"):
            find_crossover_size(intel, lo=1000, hi=1000)
