"""The plan cache's versioning and quarantine contracts.

Two independent gates protect a stored winner:

* the envelope gate (``cake-cache/v2``, from
  :mod:`repro.runtime.cache`): unparseable or wrong-envelope files are
  quarantined to ``.corrupt``;
* the tuner gate (``cake-tune/v1``): a structurally valid row written
  by a different tuner schema is quarantined to ``.stale`` and reported
  as a miss — an old winner is re-tuned, **never silently applied**.
"""

import json

import pytest

from repro.gemm.plan import PlanOverride
from repro.runtime.cache import CACHE_SCHEMA
from repro.tune.cache import TUNER_SCHEMA, PlanCache
from repro.tune.space import TuneKey


@pytest.fixture
def cache(tmp_path) -> PlanCache:
    return PlanCache(tmp_path)


KEY = TuneKey(
    engine="cake", m=128, n=256, k=512, dtype="<f4",
    machine="Intel i9-10900K", cores=None, backend="numpy", processes=1,
)


class TestRoundTrip:
    def test_store_then_load(self, cache):
        override = PlanOverride(strips=1, schedule="naive")
        cache.store(KEY, override, {"validated": True})
        hit, loaded = cache.load_override(KEY)
        assert hit and loaded == override
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_analytic_marker_hits_with_none(self, cache):
        """'The analytic plan won' is a cacheable answer: a later lookup
        must hit (skipping the search), carrying override None."""
        cache.store(KEY, None, {"validated": True})
        hit, loaded = cache.load_override(KEY)
        assert hit and loaded is None

    def test_cold_key_misses(self, cache):
        hit, loaded = cache.load_override(KEY)
        assert not hit and loaded is None
        assert cache.stats.misses == 1

    def test_row_carries_schema_and_key(self, cache):
        row = cache.store(KEY, PlanOverride(strips=1), None)
        assert row["tuner_schema"] == TUNER_SCHEMA
        assert row["key"] == KEY.as_dict()


class TestVersionSkew:
    def _write_row(self, cache, row: dict) -> None:
        """Plant a row with a valid envelope but arbitrary content, as a
        different tuner version would have written it."""
        path = cache.root / f"{KEY.key_id}.json"
        path.write_text(
            json.dumps(
                {"schema": CACHE_SCHEMA, "row": row}
            )
        )

    def test_older_schema_quarantined_never_applied(self, cache):
        self._write_row(
            cache,
            {
                "tuner_schema": "cake-tune/v0",
                "key": KEY.as_dict(),
                "override": {"kc": 7},  # would be hazardous if applied
            },
        )
        hit, loaded = cache.load_override(KEY)
        assert not hit and loaded is None
        assert (cache.root / f"{KEY.key_id}.stale").exists()
        assert not (cache.root / f"{KEY.key_id}.json").exists()
        assert cache.stats.stale == 1

    def test_missing_schema_tag_quarantined(self, cache):
        self._write_row(cache, {"override": {"strips": 1}})
        hit, _ = cache.load_override(KEY)
        assert not hit
        assert (cache.root / f"{KEY.key_id}.stale").exists()

    def test_quarantined_slot_is_reusable(self, cache):
        """The re-tune after a skew miss overwrites the slot; the stale
        evidence survives alongside for postmortems."""
        self._write_row(cache, {"tuner_schema": "cake-tune/v0"})
        assert cache.load(KEY) is None
        cache.store(KEY, PlanOverride(strips=1), None)
        hit, loaded = cache.load_override(KEY)
        assert hit and loaded == PlanOverride(strips=1)
        assert (cache.root / f"{KEY.key_id}.stale").exists()

    def test_corrupt_file_follows_envelope_quarantine(self, cache):
        path = cache.root / f"{KEY.key_id}.json"
        path.write_text("{not json")
        hit, _ = cache.load_override(KEY)
        assert not hit
        assert path.with_suffix(".corrupt").exists()
        assert cache.stats.corrupt == 1

    def test_clear_removes_rows_and_quarantine(self, cache):
        self._write_row(cache, {"tuner_schema": "cake-tune/v0"})
        cache.load(KEY)  # quarantines to .stale
        cache.store(KEY, None, None)
        cache.clear()
        assert len(cache) == 0
        assert not list(cache.root.glob("*.stale"))
