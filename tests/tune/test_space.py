"""TuneKey identity and the shape of the candidate grid."""

import pytest

from repro.errors import ConfigurationError
from repro.gemm.plan import CakePlan, GotoPlan, PlanOverride
from repro.schedule.space import ComputationSpace
from repro.tune.space import (
    SCHEDULE_CANDIDATES,
    TuneKey,
    execution_variants,
    plan_shape_candidates,
)


def key(**overrides) -> TuneKey:
    fields = dict(
        engine="cake", m=256, n=256, k=256, dtype="<f4",
        machine="Intel i9-10900K", cores=None, backend="numpy", processes=1,
    )
    fields.update(overrides)
    return TuneKey(**fields)


class TestTuneKey:
    def test_key_id_is_content_hash(self):
        assert key().key_id == key().key_id
        assert key().key_id != key(m=512).key_id
        assert key().key_id != key(backend="blas-group").key_id
        assert key().key_id != key(engine="goto").key_id
        assert key().key_id != key(processes=2).key_id

    def test_round_trips_through_as_dict(self):
        assert TuneKey(**key().as_dict()) == key()

    def test_describe_is_compact(self):
        assert key().describe() == "cake:256x256x256:f4:numpy"
        assert key(processes=4).describe().endswith(":p4")

    @pytest.mark.parametrize(
        "overrides",
        [{"engine": "mkl"}, {"m": 0}, {"k": -1}, {"processes": 0}],
    )
    def test_invalid_keys_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            key(**overrides)


class TestCandidateGrid:
    def test_identity_leads_and_kc_is_pinned(self, intel):
        base = CakePlan.from_problem(intel, ComputationSpace(256, 256, 256))
        candidates = plan_shape_candidates("cake", base)
        assert candidates[0] == PlanOverride()
        for candidate in candidates[1:]:
            # The bit-safety invariant: no candidate re-blocks K away
            # from the analytic value.
            assert candidate.kc == base.kc
            if candidate.schedule is not None:
                assert candidate.schedule in SCHEDULE_CANDIDATES

    def test_no_spilling_schedules_in_the_space(self, intel):
        base = CakePlan.from_problem(intel, ComputationSpace(256, 256, 256))
        schedules = {
            c.schedule for c in plan_shape_candidates("cake", base)
        }
        assert schedules <= {None, "naive"}

    def test_candidates_are_unique(self, intel):
        base = CakePlan.from_problem(intel, ComputationSpace(256, 256, 256))
        candidates = plan_shape_candidates("cake", base)
        assert len({tuple(sorted(c.as_dict().items())) for c in candidates}) \
            == len(candidates)

    def test_goto_grid_scales_named_tiles_only(self, intel):
        base = GotoPlan.from_problem(intel, ComputationSpace(256, 256, 256))
        candidates = plan_shape_candidates("goto", base)
        assert candidates[0] == PlanOverride()
        for candidate in candidates[1:]:
            assert candidate.kc == base.kc
            assert candidate.schedule is None
            assert candidate.strips is None

    def test_execution_variants_never_rank_in_the_model(self):
        """Every variant is a (strips, workers) pair — plan-shape fields
        stay out of the execution cross."""
        for strips, workers in execution_variants("cake"):
            assert strips is None or strips >= 1
            assert workers is None or workers >= 1
        # GOTO has no strips knob (granularity is its mc split).
        assert all(s is None for s, _ in execution_variants("goto"))
