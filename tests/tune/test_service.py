"""PlanService resolution tiers and the serve-layer wiring.

The dispatcher's invariant: resolution is never allowed to put a tune
on the request path — a cold class serves the analytic plan while the
tune runs in the background, and tuned responses stay bit-identical to
the analytic (= direct engine) answer.
"""

import numpy as np

from repro.gemm.cake import CakeGemm
from repro.serve.classifier import classify
from repro.serve.server import MultiplyServer
from repro.tune import PlanService, PlanTuner, TuneConfig


def shape_class(intel, m=96, n=128, k=160):
    a = np.zeros((m, k), dtype=np.float32)
    b = np.zeros((k, n), dtype=np.float32)
    return classify("cake", a, b, cores=None)


class TestResolutionTiers:
    def test_cold_key_returns_none_and_tunes_in_background(
        self, intel, tmp_path
    ):
        service = PlanService(intel, TuneConfig(cache_root=tmp_path, repeats=1))
        first = service.resolve(shape_class(intel))
        assert first is None  # analytic serves while the tune is in flight
        service.drain(timeout=60.0)
        counters = service.counters()
        assert counters["tunes_completed"] == 1
        assert counters["tunes_pending"] == 0
        assert counters["tuned_misses"] >= 1
        # Tier 1 now answers instantly from memory.
        service.resolve(shape_class(intel))
        assert service.counters()["tuned_hits"] >= 1

    def test_disk_hit_skips_background_tuning(self, intel, tmp_path):
        config = TuneConfig(cache_root=tmp_path, repeats=1)
        sc = shape_class(intel)
        seeder = PlanService(intel, config, synchronous=True)
        seeded = seeder.resolve(sc)
        # A fresh service (new process, same cache dir) resolves from
        # disk on the first call: no background thread, a hit.
        service = PlanService(intel, config)
        assert service.resolve(sc) == seeded
        counters = service.counters()
        assert counters["tuned_hits"] == 1
        assert counters["tunes_pending"] == 0

    def test_synchronous_mode_resolves_inline(self, intel, tmp_path):
        service = PlanService(
            intel, TuneConfig(cache_root=tmp_path, repeats=1),
            synchronous=True,
        )
        service.resolve(shape_class(intel))
        counters = service.counters()
        assert counters["tunes_completed"] == 1
        assert counters["tunes_pending"] == 0


class TestServeWiring:
    def test_tuned_server_stays_bit_identical(self, intel, rng, tmp_path):
        a = rng.standard_normal((96, 160)).astype(np.float32)
        b = rng.standard_normal((160, 128)).astype(np.float32)
        reference = CakeGemm(intel, cores=1, tuned=False).multiply(a, b).c
        config = TuneConfig(cache_root=tmp_path, repeats=1)
        # Pre-tune the class so the second request takes the tuned path.
        with MultiplyServer(intel, cores=1, tune=config) as server:
            first = server.multiply(a, b)
            assert np.array_equal(first.c, reference)
            server.plans.drain(timeout=60.0)
            second = server.multiply(a, b)
            assert np.array_equal(second.c, reference)
            stats = server.stats()
        assert stats.tunes_completed == 1
        assert stats.tuned_hits >= 1
        assert stats.tuned_misses >= 1
        assert stats.tunes_pending == 0

    def test_untuned_server_reports_zero_counters(self, intel, rng):
        a = rng.standard_normal((48, 64)).astype(np.float32)
        b = rng.standard_normal((64, 48)).astype(np.float32)
        with MultiplyServer(intel, cores=1) as server:
            server.multiply(a, b)
            stats = server.stats()
        assert server.plans is None
        assert (
            stats.tuned_hits, stats.tuned_misses,
            stats.tunes_pending, stats.tunes_completed,
        ) == (0, 0, 0, 0)

    def test_stats_dict_carries_tuner_counters(self, intel, rng, tmp_path):
        a = rng.standard_normal((48, 64)).astype(np.float32)
        b = rng.standard_normal((64, 48)).astype(np.float32)
        with MultiplyServer(
            intel, cores=1, tune=TuneConfig(cache_root=tmp_path, repeats=1)
        ) as server:
            server.multiply(a, b)
            server.plans.drain(timeout=60.0)
            doc = server.stats().as_dict()
        for field in (
            "tuned_hits", "tuned_misses", "tunes_pending", "tunes_completed",
        ):
            assert field in doc

    def test_failed_background_tune_keeps_serving(
        self, intel, rng, tmp_path, monkeypatch
    ):
        """A tuner crash must resolve the class to the analytic plan,
        never take the server down."""
        a = rng.standard_normal((48, 64)).astype(np.float32)
        b = rng.standard_normal((64, 48)).astype(np.float32)
        reference = CakeGemm(intel, cores=1, tuned=False).multiply(a, b).c

        def boom(self, key):
            raise RuntimeError("injected tuner crash")

        monkeypatch.setattr(PlanTuner, "tune", boom)
        with MultiplyServer(
            intel, cores=1, tune=TuneConfig(cache_root=tmp_path)
        ) as server:
            first = server.multiply(a, b)
            server.plans.drain(timeout=60.0)
            second = server.multiply(a, b)
            stats = server.stats()
        assert np.array_equal(first.c, reference)
        assert np.array_equal(second.c, reference)
        assert stats.tunes_completed == 1  # completed as analytic
