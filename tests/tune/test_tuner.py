"""The tuner pipeline end to end: search, validate, persist, amortize."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.machines import amd_ryzen_9_5950x
from repro.tune import PlanTuner, TuneConfig, TuneKey


def key(**overrides) -> TuneKey:
    fields = dict(
        engine="cake", m=96, n=128, k=160, dtype="<f4",
        machine="Intel i9-10900K", cores=None, backend="numpy", processes=1,
    )
    fields.update(overrides)
    return TuneKey(**fields)


@pytest.fixture
def tuner(intel, tmp_path) -> PlanTuner:
    return PlanTuner(
        intel, TuneConfig(cache_root=tmp_path, repeats=1, top_k=2)
    )


class TestSearch:
    def test_cold_key_searches_and_persists(self, tuner):
        result = tuner.tune(key())
        assert result.source == "search"
        assert result.validated
        assert result.analytic_seconds is not None
        assert len(tuner.cache) == 1
        # Evidence rows exist for both pipeline stages.
        assert any(c.modeled_seconds is not None for c in result.candidates)
        assert any(c.timed_seconds is not None for c in result.candidates)

    def test_second_resolution_is_cache_hit_skipping_search(self, tuner):
        first = tuner.tune(key())
        second = tuner.tune(key())
        assert second.source == "cache"
        assert second.override == first.override
        # The hit deserializes the stored row — no candidates re-timed.
        assert second.candidates == ()

    def test_winner_is_bit_identical_on_fresh_operands(self, tuner, intel, rng):
        """The validated winner must stay bit-identical on operands the
        tuner never saw (bit-identity is shape-, not value-, dependent)."""
        result = tuner.tune(key())
        a = rng.standard_normal((96, 160)).astype(np.float32)
        b = rng.standard_normal((160, 128)).astype(np.float32)
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        run = CakeGemm(
            intel, plan=result.override, tuned=False
        ).multiply(a, b)
        assert np.array_equal(run.c, base.c)

    def test_every_validated_candidate_reports_exactness(self, tuner):
        result = tuner.tune(key())
        timed = [c for c in result.candidates if c.timed_seconds is not None]
        assert timed, "no candidates reached timed validation"
        assert all(c.exact is not None for c in timed)

    def test_inexact_candidates_never_win(self, tuner):
        result = tuner.tune(key())
        if result.override is not None:
            winner = result.override.as_dict()
            rejected = [
                c.override
                for c in result.candidates
                if c.exact is False
            ]
            assert winner not in rejected

    def test_goto_key_tunes_through_goto_engine(self, tuner, intel, rng):
        result = tuner.tune(key(engine="goto"))
        assert result.source == "search"
        a = rng.standard_normal((96, 160)).astype(np.float32)
        b = rng.standard_normal((160, 128)).astype(np.float32)
        base = GotoGemm(intel, tuned=False).multiply(a, b)
        run = GotoGemm(
            intel, plan=result.override, tuned=False
        ).multiply(a, b)
        assert np.array_equal(run.c, base.c)


class TestGuards:
    def test_machine_mismatch_rejected(self, tuner):
        with pytest.raises(ConfigurationError, match="machine"):
            tuner.tune(key(machine=amd_ryzen_9_5950x().name))

    def test_unreasonable_surface_stores_unvalidated_marker(
        self, intel, tmp_path
    ):
        """Beyond the operand-synthesis budget the analytic plan is kept
        (and persisted) rather than allocating huge throwaway matrices."""
        tuner = PlanTuner(
            intel,
            TuneConfig(cache_root=tmp_path, max_surface_elements=1000),
        )
        result = tuner.tune(key())
        assert result.override is None
        assert not result.validated
        hit = tuner.tune(key())
        assert hit.source == "cache" and not hit.validated

    def test_min_speedup_bar_keeps_analytic_plan(self, intel, tmp_path):
        """An unreachable adoption bar means every key resolves to the
        analytic marker — tuning can only ever opt in to faster plans."""
        tuner = PlanTuner(
            intel,
            TuneConfig(cache_root=tmp_path, repeats=1, min_speedup=1e9),
        )
        result = tuner.tune(key())
        assert result.override is None
        assert result.tuned_seconds == result.analytic_seconds

    def test_use_cache_false_re_searches(self, intel, tmp_path):
        tuner = PlanTuner(
            intel, TuneConfig(cache_root=tmp_path, repeats=1, use_cache=False)
        )
        assert tuner.tune(key()).source == "search"
        assert tuner.tune(key()).source == "search"


class TestTunedEngines:
    def test_tuned_true_resolves_from_cache(self, tuner, intel, tmp_path, rng):
        seeded = tuner.tune(key())
        from repro.tune import clear_resolution_memo

        clear_resolution_memo()
        config = TuneConfig(cache_root=tmp_path, repeats=1, top_k=2)
        a = rng.standard_normal((96, 160)).astype(np.float32)
        b = rng.standard_normal((160, 128)).astype(np.float32)
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        run = CakeGemm(intel, tuned=config).multiply(a, b)
        assert np.array_equal(run.c, base.c)
        if seeded.override is not None:
            assert run.plan_summary["override"] == seeded.override.as_dict()

    def test_default_tune_switch_is_inherited(self, intel, tmp_path, rng):
        """tuned=None engines follow set_default_tune (cake-bench
        --tuned); tuned=False engines never tune."""
        from repro.tune import set_default_tune

        config = TuneConfig(cache_root=tmp_path, repeats=1, top_k=2)
        a = rng.standard_normal((96, 160)).astype(np.float32)
        b = rng.standard_normal((160, 128)).astype(np.float32)
        base = CakeGemm(intel, tuned=False).multiply(a, b)
        set_default_tune(config)
        try:
            run = CakeGemm(intel).multiply(a, b)
            assert np.array_equal(run.c, base.c)
            off = CakeGemm(intel, tuned=False).multiply(a, b)
            assert "override" not in off.plan_summary
        finally:
            set_default_tune(None)
