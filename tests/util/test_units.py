"""Unit tests for repro.util.units conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    bytes_to_gib,
    bytes_to_mib,
    elements_per_cycle_to_gb_per_s,
    gb_per_s_to_elements_per_cycle,
    gflops,
    mm_flops,
)
from repro.util.units import BYTES_PER_GIB, BYTES_PER_MIB, FLOAT32_BYTES


class TestByteConversions:
    def test_mib(self):
        assert bytes_to_mib(BYTES_PER_MIB) == 1.0

    def test_gib(self):
        assert bytes_to_gib(2 * BYTES_PER_GIB) == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bytes_to_mib(-1)


class TestFlops:
    def test_mm_flops_convention(self):
        # 2 FLOPs per MAC
        assert mm_flops(10, 20, 30) == 2 * 10 * 20 * 30

    def test_gflops(self):
        assert gflops(2e9, 1.0) == 2.0

    def test_gflops_rejects_zero_time(self):
        with pytest.raises(ValueError):
            gflops(1.0, 0.0)


class TestBandwidthConversions:
    def test_known_value(self):
        # 1 element/cycle at 1 GHz, float32 => 4 GB/s
        assert elements_per_cycle_to_gb_per_s(1.0, 1e9) == pytest.approx(4.0)

    def test_inverse_known_value(self):
        assert gb_per_s_to_elements_per_cycle(4.0, 1e9) == pytest.approx(1.0)

    @given(
        st.floats(0.001, 1e6),
        st.floats(1e6, 1e10),
        st.integers(1, 16),
    )
    def test_round_trip(self, epc, clock, width):
        gb = elements_per_cycle_to_gb_per_s(epc, clock, width)
        back = gb_per_s_to_elements_per_cycle(gb, clock, width)
        assert back == pytest.approx(epc, rel=1e-12)

    def test_float32_default(self):
        assert FLOAT32_BYTES == 4
