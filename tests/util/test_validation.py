"""Unit tests for repro.util.validation."""

import pytest

from repro.util import (
    require_at_least,
    require_in,
    require_nonnegative,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive("x", 1)
        require_positive("x", 0.5)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive("x", bad)


class TestRequireNonnegative:
    def test_accepts_zero(self):
        require_nonnegative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            require_nonnegative("x", -1)


class TestRequireAtLeast:
    def test_accepts_boundary(self):
        require_at_least("alpha", 1.0, 1.0)

    def test_rejects_below(self):
        with pytest.raises(ValueError, match="alpha must be >= 1.0"):
            require_at_least("alpha", 0.99, 1.0)


class TestRequireIn:
    def test_accepts_member(self):
        require_in("mode", "a", ("a", "b"))

    def test_rejects_nonmember(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            require_in("mode", "c", ("a", "b"))
