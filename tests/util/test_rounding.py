"""Unit and property tests for repro.util.rounding."""

import pytest
from hypothesis import given, strategies as st

from repro.util import ceil_div, floor_to_multiple, round_to_multiple, split_length


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(9, 3) == 3

    def test_rounds_up(self):
        assert ceil_div(10, 3) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 5) == 1

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 3)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)


class TestRoundToMultiple:
    def test_rounds_up(self):
        assert round_to_multiple(10, 4) == 12

    def test_exact_unchanged(self):
        assert round_to_multiple(12, 4) == 12

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_result_is_multiple_and_ge(self, v, m):
        r = round_to_multiple(v, m)
        assert r % m == 0
        assert r >= v
        assert r - v < m


class TestFloorToMultiple:
    def test_rounds_down(self):
        assert floor_to_multiple(10, 4) == 8

    def test_clamps_small_values_up(self):
        # never returns 0 for positive input
        assert floor_to_multiple(3, 4) == 4

    def test_exact_unchanged(self):
        assert floor_to_multiple(12, 4) == 12

    @given(st.integers(1, 10**6), st.integers(1, 10**4))
    def test_result_is_positive_multiple(self, v, m):
        r = floor_to_multiple(v, m)
        assert r % m == 0
        assert r >= m


class TestSplitLength:
    def test_even_split(self):
        assert split_length(8, 4) == [4, 4]

    def test_remainder_goes_last(self):
        assert split_length(10, 4) == [4, 4, 2]

    def test_chunk_larger_than_total(self):
        assert split_length(3, 10) == [3]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_length(0, 4)
        with pytest.raises(ValueError):
            split_length(4, 0)

    @given(st.integers(1, 10**5), st.integers(1, 10**4))
    def test_partition_properties(self, total, chunk):
        sizes = split_length(total, chunk)
        assert sum(sizes) == total
        assert all(s == chunk for s in sizes[:-1])
        assert 0 < sizes[-1] <= chunk
