"""Tests for the exception hierarchy contract."""

import pickle

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    BackendCapabilityError,
    CakeError,
    ConfigurationError,
    DeadlineExceededError,
    FleetError,
    ProtocolError,
    ScheduleError,
    SimulationError,
    WorkerCrashError,
)
from repro.gemm.sharded import ShardExecutionError
from repro.gemm.verify import IdentityFailure, NumericFaultError
from repro.runtime.faults import InjectedFault
from repro.runtime.executor import RuntimeStats
from repro.runtime.outcome import (
    IncompleteRunError,
    RunReport,
    TaskExecutionError,
    TaskOutcome,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, ScheduleError, SimulationError]
    )
    def test_subclasses_base(self, exc):
        assert issubclass(exc, CakeError)
        assert issubclass(exc, Exception)

    def test_catchable_at_boundary(self):
        """A caller catching CakeError sees every domain failure."""
        from repro.core.shaping import alpha_from_bandwidth_ratio

        with pytest.raises(CakeError):
            alpha_from_bandwidth_ratio(0.5)

    def test_distinct_types(self):
        assert not issubclass(ScheduleError, ConfigurationError)
        assert not issubclass(SimulationError, ScheduleError)


def _failed_outcome() -> TaskOutcome:
    return TaskOutcome(
        task_id="grid/0", ok=False, error_type="ValueError",
        error_message="boom", attempts=3,
    )


#: One representative instance per CakeError subclass. Every entry must
#: survive ``pickle.loads(pickle.dumps(exc))`` with its payload intact:
#: shard workers and the serve dispatcher move these across
#: process/thread boundaries, and an exception that arrives as a bare
#: ``TypeError`` from its own constructor is a silent loss of the
#: structured failure the whole robustness story depends on.
_EXAMPLES = {
    CakeError: lambda: CakeError("base failure"),
    ConfigurationError: lambda: ConfigurationError("cache too small"),
    ScheduleError: lambda: ScheduleError("block visited twice"),
    SimulationError: lambda: SimulationError("event in the past"),
    BackendCapabilityError: lambda: BackendCapabilityError(
        "blas-group", "accumulation dtype not supported",
        np.dtype(np.float16),
    ),
    AdmissionError: lambda: AdmissionError(
        "capacity", "queue is full", queue_depth=8, capacity=8,
        retry_after=0.25,
    ),
    DeadlineExceededError: lambda: DeadlineExceededError(
        "shard", budget=1.5, elapsed=2.75
    ),
    FleetError: lambda: FleetError(
        "no-workers", "every slot exhausted its restart budget",
        workers=4,
    ),
    WorkerCrashError: lambda: WorkerCrashError(
        worker=2, pid=4242, exitcode=-9, restarts=3,
        request_id="17:0badc0de",
    ),
    ProtocolError: lambda: ProtocolError("bad frame magic b'XXXX'"),
    NumericFaultError: lambda: NumericFaultError(
        "CB(1, 2, 3)", (1, 2, 3),
        IdentityFailure(
            identity="row", strip=4, residual=0.5, tolerance=1e-6
        ),
    ),
    ShardExecutionError: lambda: ShardExecutionError([(0, 1), (1, 0)], 2),
    InjectedFault: lambda: InjectedFault("scripted worker crash"),
    TaskExecutionError: lambda: TaskExecutionError(_failed_outcome()),
    IncompleteRunError: lambda: IncompleteRunError(
        RunReport(
            rows=[None],
            failures=[_failed_outcome()],
            stats=RuntimeStats(
                tasks=1, cache_hits=0, executed=1, workers=1,
                shards=0, wall_seconds=0.1,
            ),
        ),
        experiment="bench",
    ),
}


def _all_cake_errors() -> list[type]:
    """Every CakeError subclass importable from the package, found by
    walking the live class hierarchy — a new subclass that is not given
    an example above fails the suite rather than dodging the contract.
    """
    seen: list[type] = [CakeError]
    frontier = [CakeError]
    while frontier:
        for sub in frontier.pop().__subclasses__():
            if sub not in seen:
                seen.append(sub)
                frontier.append(sub)
    return seen


class TestPickleRoundTrip:
    def test_every_subclass_has_an_example(self):
        missing = [
            cls.__name__
            for cls in _all_cake_errors()
            if cls not in _EXAMPLES
        ]
        assert not missing, (
            f"CakeError subclasses without a pickle round-trip example: "
            f"{missing}"
        )

    @pytest.mark.parametrize(
        "cls", list(_EXAMPLES), ids=lambda cls: cls.__name__
    )
    def test_round_trip(self, cls):
        original = _EXAMPLES[cls]()
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert str(clone) == str(original)
        # Payload attributes survive, not just the formatted message.
        for name, value in vars(original).items():
            got = getattr(clone, name)
            if isinstance(value, (TaskOutcome, RunReport)):
                continue  # nested dataclasses compared by their fields
            assert got == value, f"{cls.__name__}.{name} lost in transit"

    def test_backend_capability_dtype_survives(self):
        # The regression this class exists for: __reduce__ used to drop
        # the dtype keyword, so unpickled copies lost which dtype the
        # backend refused.
        original = BackendCapabilityError(
            "torch", "needs float32", np.dtype(np.float64)
        )
        clone = pickle.loads(pickle.dumps(original))
        assert clone.dtype == np.dtype(np.float64)
        assert clone.backend == "torch"
        assert isinstance(clone, TypeError)  # dual inheritance intact

    def test_worker_crash_forensics_survive(self):
        # The attributes the fleet operator actually reads — which slot,
        # which pid, which signal, how many restarts, which request —
        # must cross the supervisor/worker process boundary intact.
        original = WorkerCrashError(
            worker=1, pid=31337, exitcode=-9, restarts=2,
            request_id="3:deadbeef",
        )
        clone = pickle.loads(pickle.dumps(original))
        assert (clone.worker, clone.pid, clone.exitcode) == (1, 31337, -9)
        assert clone.restarts == 2
        assert clone.request_id == "3:deadbeef"
        assert isinstance(clone, FleetError)  # catchable as the family

    def test_task_execution_error_keeps_outcome(self):
        clone = pickle.loads(
            pickle.dumps(TaskExecutionError(_failed_outcome()))
        )
        assert clone.outcome.task_id == "grid/0"
        assert clone.failures[0].error_type == "ValueError"
