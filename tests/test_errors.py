"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CakeError,
    ConfigurationError,
    ScheduleError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, ScheduleError, SimulationError]
    )
    def test_subclasses_base(self, exc):
        assert issubclass(exc, CakeError)
        assert issubclass(exc, Exception)

    def test_catchable_at_boundary(self):
        """A caller catching CakeError sees every domain failure."""
        from repro.core.shaping import alpha_from_bandwidth_ratio

        with pytest.raises(CakeError):
            alpha_from_bandwidth_ratio(0.5)

    def test_distinct_types(self):
        assert not issubclass(ScheduleError, ConfigurationError)
        assert not issubclass(SimulationError, ScheduleError)
