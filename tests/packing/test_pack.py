"""Tests for operand packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.packing import pack_a_cake, pack_b_cake, packing_cost
from repro.machines import intel_i9_10900k


def small_matrix(max_dim=60):
    shapes = st.tuples(st.integers(1, max_dim), st.integers(1, max_dim))
    return shapes.flatmap(
        lambda s: arrays(np.float64, s, elements=st.floats(-10, 10, width=64))
    )


class TestPackA:
    def test_blocks_reassemble_to_source(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a_cake(a, 8, 5)
        rebuilt = np.vstack(
            [np.hstack(row) for row in packed.blocks]
        )
        np.testing.assert_array_equal(rebuilt, a)

    def test_shapes(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a_cake(a, 8, 5)
        assert packed.strips == 4  # 8+8+8+1
        assert packed.k_panels == 4  # 5+5+5+2
        assert packed.block(0, 0).shape == (8, 5)
        assert packed.block(3, 3).shape == (1, 2)

    def test_blocks_are_contiguous_copies(self, rng):
        a = rng.standard_normal((16, 16))
        packed = pack_a_cake(a, 8, 8)
        blk = packed.block(0, 0)
        assert blk.flags["C_CONTIGUOUS"]
        blk[0, 0] = 999.0
        assert a[0, 0] != 999.0  # packing copied, not aliased

    def test_elements_preserved(self, rng):
        a = rng.standard_normal((25, 17))
        assert pack_a_cake(a, 8, 5).elements == a.size

    def test_rejects_non_2d(self):
        with pytest.raises(TypeError):
            pack_a_cake(np.zeros(5), 2, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pack_a_cake(np.zeros((0, 3)), 2, 2)

    @settings(max_examples=30)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_roundtrip_property(self, a, mc, kc):
        packed = pack_a_cake(a, mc, kc)
        rebuilt = np.vstack([np.hstack(row) for row in packed.blocks])
        np.testing.assert_array_equal(rebuilt, a)


class TestPackB:
    def test_panels_reassemble_to_source(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b_cake(b, 6, 10)
        rebuilt = np.vstack([np.hstack(row) for row in packed.panels])
        np.testing.assert_array_equal(rebuilt, b)

    def test_panel_lookup(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b_cake(b, 6, 10)
        np.testing.assert_array_equal(packed.panel(0, 1), b[0:6, 10:20])

    @settings(max_examples=30)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_roundtrip_property(self, b, kc, nb):
        packed = pack_b_cake(b, kc, nb)
        rebuilt = np.vstack([np.hstack(row) for row in packed.panels])
        np.testing.assert_array_equal(rebuilt, b)


class TestPackingCost:
    def test_read_plus_write(self):
        m = intel_i9_10900k()
        cost = packing_cost(m, elements_a=1000, elements_b=500)
        assert cost.bytes_moved == 2 * 1500 * 4

    def test_seconds_scale_with_traffic_factor(self):
        m = intel_i9_10900k()
        cost = packing_cost(m, 10**6, 10**6)
        expected = (
            2 * 2 * 10**6 * 4 * m.external_traffic_factor
        ) / m.dram_bytes_per_second
        assert cost.seconds == pytest.approx(expected)

    def test_addition(self):
        m = intel_i9_10900k()
        c = packing_cost(m, 100, 0) + packing_cost(m, 0, 100)
        assert c.bytes_moved == packing_cost(m, 100, 100).bytes_moved
