"""Tests for operand packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.packing import (
    BufferPool,
    pack_a,
    pack_a_cake,
    pack_b,
    pack_b_cake,
    packing_cost,
)
from repro.machines import intel_i9_10900k


def small_matrix(max_dim=60):
    shapes = st.tuples(st.integers(1, max_dim), st.integers(1, max_dim))
    return shapes.flatmap(
        lambda s: arrays(np.float64, s, elements=st.floats(-10, 10, width=64))
    )


class TestPackA:
    def test_blocks_reassemble_to_source(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a_cake(a, 8, 5)
        rebuilt = np.vstack(
            [np.hstack(row) for row in packed.blocks]
        )
        np.testing.assert_array_equal(rebuilt, a)

    def test_shapes(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a_cake(a, 8, 5)
        assert packed.strips == 4  # 8+8+8+1
        assert packed.k_panels == 4  # 5+5+5+2
        assert packed.block(0, 0).shape == (8, 5)
        assert packed.block(3, 3).shape == (1, 2)

    def test_blocks_are_contiguous_copies(self, rng):
        a = rng.standard_normal((16, 16))
        packed = pack_a_cake(a, 8, 8)
        blk = packed.block(0, 0)
        assert blk.flags["C_CONTIGUOUS"]
        blk[0, 0] = 999.0
        assert a[0, 0] != 999.0  # packing copied, not aliased

    def test_elements_preserved(self, rng):
        a = rng.standard_normal((25, 17))
        assert pack_a_cake(a, 8, 5).elements == a.size

    def test_rejects_non_2d(self):
        with pytest.raises(TypeError):
            pack_a_cake(np.zeros(5), 2, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pack_a_cake(np.zeros((0, 3)), 2, 2)

    @settings(max_examples=30)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_roundtrip_property(self, a, mc, kc):
        packed = pack_a_cake(a, mc, kc)
        rebuilt = np.vstack([np.hstack(row) for row in packed.blocks])
        np.testing.assert_array_equal(rebuilt, a)


class TestPackB:
    def test_panels_reassemble_to_source(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b_cake(b, 6, 10)
        rebuilt = np.vstack([np.hstack(row) for row in packed.panels])
        np.testing.assert_array_equal(rebuilt, b)

    def test_panel_lookup(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b_cake(b, 6, 10)
        np.testing.assert_array_equal(packed.panel(0, 1), b[0:6, 10:20])

    @settings(max_examples=30)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_roundtrip_property(self, b, kc, nb):
        packed = pack_b_cake(b, kc, nb)
        rebuilt = np.vstack([np.hstack(row) for row in packed.panels])
        np.testing.assert_array_equal(rebuilt, b)


def _assert_grids_bit_identical(fast, oracle):
    assert len(fast) == len(oracle)
    for fast_row, oracle_row in zip(fast, oracle):
        assert len(fast_row) == len(oracle_row)
        for f, o in zip(fast_row, oracle_row):
            assert f.shape == o.shape
            assert f.dtype == o.dtype
            assert f.flags["C_CONTIGUOUS"]
            assert f.tobytes() == o.tobytes()  # bit-identical layout


class TestVectorizedVsOracle:
    """The strided packer must match the loop oracle bit for bit."""

    @settings(max_examples=40)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_pack_a_matches_oracle(self, a, mc, kc):
        fast = pack_a(a, mc, kc)
        oracle = pack_a(a, mc, kc, exact=True)
        _assert_grids_bit_identical(fast.blocks, oracle.blocks)

    @settings(max_examples=40)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_pack_b_matches_oracle(self, b, kc, nb):
        fast = pack_b(b, kc, nb)
        oracle = pack_b(b, kc, nb, exact=True)
        _assert_grids_bit_identical(fast.panels, oracle.panels)

    @pytest.mark.parametrize("shape", [(1, 1), (1, 37), (37, 1), (31, 29), (97, 89)])
    def test_prime_ragged_shapes(self, shape, rng):
        x = rng.standard_normal(shape)
        for chunk in (1, 2, 7, 13, max(shape)):
            _assert_grids_bit_identical(
                pack_a(x, chunk, chunk).blocks,
                pack_a(x, chunk, chunk, exact=True).blocks,
            )

    def test_fortran_ordered_input(self, rng):
        x = np.asfortranarray(rng.standard_normal((45, 37)))
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_transposed_view_input(self, rng):
        x = rng.standard_normal((37, 45)).T  # F-ordered view, no copy
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_strided_slice_input(self, rng):
        base = rng.standard_normal((90, 74))
        x = base[::2, ::2]  # non-contiguous in both dimensions
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_reverse_strided_input(self, rng):
        x = rng.standard_normal((25, 17))[::-1]
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_float32_dtype_preserved(self, rng):
        x = rng.standard_normal((25, 17)).astype(np.float32)
        packed = pack_a(x, 8, 5)
        assert all(b.dtype == np.float32 for row in packed.blocks for b in row)
        _assert_grids_bit_identical(
            packed.blocks, pack_a(x, 8, 5, exact=True).blocks
        )


class TestChecksums:
    """Pack-time ABFT checksum vectors (repro.gemm.verify's inputs)."""

    def test_a_column_checksums_match_numpy(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a(a, 8, 5, checksums=True)
        for si in range(packed.strips):
            for ki in range(packed.k_panels):
                blk = packed.block(si, ki)
                np.testing.assert_array_equal(
                    packed.checksum(si, ki), blk.sum(axis=0)
                )

    def test_b_row_checksums_match_numpy(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b(b, 6, 10, checksums=True)
        for ki in range(packed.k_panels):
            for ni in range(packed.n_panels):
                np.testing.assert_array_equal(
                    packed.checksum(ki, ni), packed.panel(ki, ni).sum(axis=1)
                )

    def test_exact_path_checksums_bit_identical(self, rng):
        a = rng.standard_normal((31, 29))
        fast = pack_a(a, 8, 5, checksums=True)
        oracle = pack_a(a, 8, 5, exact=True, checksums=True)
        for f_row, o_row in zip(fast.checksums, oracle.checksums):
            for f, o in zip(f_row, o_row):
                assert f.tobytes() == o.tobytes()

    def test_checksum_elements_accounting(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a(a, 8, 5, checksums=True)
        m, k = a.shape
        # Checksums: one length-k vector per strip row. Magnitudes: one
        # more length-k vector per strip row plus one length-m column
        # per k-panel.
        assert packed.checksum_elements == (
            2 * packed.strips * k + packed.k_panels * m
        )
        assert pack_a(a, 8, 5).checksum_elements == 0

    def test_magnitudes_match_numpy(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a(a, 8, 5, checksums=True)
        for si in range(packed.strips):
            for ki in range(packed.k_panels):
                blk = np.abs(packed.block(si, ki))
                cols, rows = packed.magnitude(si, ki)
                np.testing.assert_array_equal(cols, blk.sum(axis=0))
                np.testing.assert_array_equal(rows, blk.sum(axis=1))

    def test_b_magnitudes_match_numpy(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b(b, 6, 10, checksums=True)
        for ki in range(packed.k_panels):
            for ni in range(packed.n_panels):
                pan = np.abs(packed.panel(ki, ni))
                cols, rows = packed.magnitude(ki, ni)
                np.testing.assert_array_equal(cols, pan.sum(axis=0))
                np.testing.assert_array_equal(rows, pan.sum(axis=1))

    def test_checksum_buffer_returns_to_pool(self, rng):
        pool = BufferPool()
        a = rng.standard_normal((25, 17))
        packed = pack_a(a, 8, 5, pool=pool, checksums=True)
        plain = pack_a(a, 8, 5, pool=pool)
        assert len(packed.buffers) > len(plain.buffers)
        packed.release_to(pool)
        repacked = pack_a(a, 8, 5, pool=pool, checksums=True)
        assert {id(b) for b in repacked.buffers} == {
            id(b) for b in packed.buffers
        }

    def test_checksum_without_flag_raises(self, rng):
        packed = pack_a(rng.standard_normal((10, 8)), 4, 4)
        with pytest.raises(ValueError, match="checksums"):
            packed.checksum(0, 0)

    def test_float32_checksums_stay_float32(self, rng):
        a = rng.standard_normal((20, 12)).astype(np.float32)
        packed = pack_a(a, 8, 5, checksums=True)
        assert packed.checksum(0, 0).dtype == np.float32

    @settings(max_examples=30)
    @given(small_matrix(32), st.integers(1, 12), st.integers(1, 12))
    def test_checksum_property(self, a, mc, kc):
        packed = pack_a(a, mc, kc, checksums=True)
        for si, row in enumerate(packed.blocks):
            for ki, blk in enumerate(row):
                np.testing.assert_array_equal(
                    packed.checksum(si, ki), blk.sum(axis=0)
                )


class TestBufferPool:
    def test_lease_shape_and_dtype(self):
        pool = BufferPool()
        buf = pool.lease((4, 5), np.float32)
        assert buf.shape == (4, 5) and buf.dtype == np.float32

    def test_release_then_lease_reuses_storage(self):
        pool = BufferPool()
        first = pool.lease((8, 8), np.float64)
        pool.release(first)
        second = pool.lease((8, 8), np.float64)
        assert second is first
        assert pool.hits == 1 and pool.misses == 1

    def test_no_cross_shape_reuse(self):
        pool = BufferPool()
        pool.release(pool.lease((8, 8), np.float64))
        other = pool.lease((8, 9), np.float64)
        assert other.shape == (8, 9)
        assert pool.hits == 0

    def test_retention_cap_evicts(self):
        pool = BufferPool(max_retained_bytes=1000)
        small = np.empty(64, dtype=np.float64)  # 512 B
        pool.release(small, np.empty(64, dtype=np.float64),
                     np.empty(64, dtype=np.float64))
        assert pool.retained_bytes <= 1000

    def test_oversized_buffer_not_retained(self):
        pool = BufferPool(max_retained_bytes=100)
        pool.release(np.empty(1000, dtype=np.float64))
        assert pool.retained_bytes == 0

    def test_pack_through_pool_reuses_buffers(self, rng):
        pool = BufferPool()
        x = rng.standard_normal((50, 40))
        packed = pack_a(x, 8, 6, pool=pool)
        backing = {id(buf) for buf in packed.buffers}
        packed.release_to(pool)
        repacked = pack_a(x + 1.0, 8, 6, pool=pool)
        assert backing == {id(buf) for buf in repacked.buffers}
        rebuilt = np.vstack([np.hstack(row) for row in repacked.blocks])
        np.testing.assert_array_equal(rebuilt, x + 1.0)

    def test_clear(self):
        pool = BufferPool()
        pool.release(np.empty(10))
        pool.clear()
        assert pool.retained_bytes == 0

    def test_zero_byte_lease_short_circuits(self):
        # Regression: zero-element requests used to round-trip the lock
        # and the retention bookkeeping for an allocation that costs
        # nothing. They now bypass the pool entirely.
        pool = BufferPool()
        for shape in [(0,), (0, 5), (5, 0), (3, 0, 4)]:
            buf = pool.lease(shape, np.float64)
            assert buf.shape == shape and buf.size == 0
        assert pool.hits == 0 and pool.misses == 0

    def test_zero_byte_release_not_retained(self):
        pool = BufferPool()
        pool.release(np.empty((0, 8)), np.empty(0, dtype=np.float32))
        assert pool.retained_bytes == 0
        # And a later zero-size lease still works (fresh empty array).
        assert pool.lease((0, 8), np.float64).size == 0
        assert pool.hits == 0

    def test_concurrent_lease_release_stress(self):
        # Hammer one pool from several threads: no two concurrent leases
        # may alias storage, and the retention ledger must stay exact.
        import threading

        pool = BufferPool(max_retained_bytes=64 * 1024)
        shapes = [(16, 16), (32, 8), (8, 8), (0, 4)]
        errors: list[str] = []
        barrier = threading.Barrier(4)

        def worker(seed: int) -> None:
            barrier.wait()
            for i in range(200):
                shape = shapes[(seed + i) % len(shapes)]
                buf = pool.lease(shape, np.float64)
                if buf.shape != shape:
                    errors.append(f"wrong shape {buf.shape} != {shape}")
                    return
                if buf.size:
                    # Stamp and verify: an aliased concurrent lease would
                    # tear this pattern.
                    buf.fill(float(seed * 1000 + i))
                    if not (buf == float(seed * 1000 + i)).all():
                        errors.append("aliased buffer detected")
                        return
                pool.release(buf)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert 0 <= pool.retained_bytes <= pool.max_retained_bytes
        # The ledger must agree with the buffers actually retained.
        held = sum(
            buf.nbytes for bucket in pool._free.values() for buf in bucket
        )
        assert pool.retained_bytes == held


class TestPackingCost:
    def test_read_plus_write(self):
        m = intel_i9_10900k()
        cost = packing_cost(m, elements_a=1000, elements_b=500)
        assert cost.bytes_moved == 2 * 1500 * 4

    def test_seconds_scale_with_traffic_factor(self):
        m = intel_i9_10900k()
        cost = packing_cost(m, 10**6, 10**6)
        expected = (
            2 * 2 * 10**6 * 4 * m.external_traffic_factor
        ) / m.dram_bytes_per_second
        assert cost.seconds == pytest.approx(expected)

    def test_addition(self):
        m = intel_i9_10900k()
        c = packing_cost(m, 100, 0) + packing_cost(m, 0, 100)
        assert c.bytes_moved == packing_cost(m, 100, 100).bytes_moved
