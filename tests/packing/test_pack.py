"""Tests for operand packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.packing import (
    BufferPool,
    pack_a,
    pack_a_cake,
    pack_b,
    pack_b_cake,
    packing_cost,
)
from repro.machines import intel_i9_10900k


def small_matrix(max_dim=60):
    shapes = st.tuples(st.integers(1, max_dim), st.integers(1, max_dim))
    return shapes.flatmap(
        lambda s: arrays(np.float64, s, elements=st.floats(-10, 10, width=64))
    )


class TestPackA:
    def test_blocks_reassemble_to_source(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a_cake(a, 8, 5)
        rebuilt = np.vstack(
            [np.hstack(row) for row in packed.blocks]
        )
        np.testing.assert_array_equal(rebuilt, a)

    def test_shapes(self, rng):
        a = rng.standard_normal((25, 17))
        packed = pack_a_cake(a, 8, 5)
        assert packed.strips == 4  # 8+8+8+1
        assert packed.k_panels == 4  # 5+5+5+2
        assert packed.block(0, 0).shape == (8, 5)
        assert packed.block(3, 3).shape == (1, 2)

    def test_blocks_are_contiguous_copies(self, rng):
        a = rng.standard_normal((16, 16))
        packed = pack_a_cake(a, 8, 8)
        blk = packed.block(0, 0)
        assert blk.flags["C_CONTIGUOUS"]
        blk[0, 0] = 999.0
        assert a[0, 0] != 999.0  # packing copied, not aliased

    def test_elements_preserved(self, rng):
        a = rng.standard_normal((25, 17))
        assert pack_a_cake(a, 8, 5).elements == a.size

    def test_rejects_non_2d(self):
        with pytest.raises(TypeError):
            pack_a_cake(np.zeros(5), 2, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pack_a_cake(np.zeros((0, 3)), 2, 2)

    @settings(max_examples=30)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_roundtrip_property(self, a, mc, kc):
        packed = pack_a_cake(a, mc, kc)
        rebuilt = np.vstack([np.hstack(row) for row in packed.blocks])
        np.testing.assert_array_equal(rebuilt, a)


class TestPackB:
    def test_panels_reassemble_to_source(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b_cake(b, 6, 10)
        rebuilt = np.vstack([np.hstack(row) for row in packed.panels])
        np.testing.assert_array_equal(rebuilt, b)

    def test_panel_lookup(self, rng):
        b = rng.standard_normal((19, 33))
        packed = pack_b_cake(b, 6, 10)
        np.testing.assert_array_equal(packed.panel(0, 1), b[0:6, 10:20])

    @settings(max_examples=30)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_roundtrip_property(self, b, kc, nb):
        packed = pack_b_cake(b, kc, nb)
        rebuilt = np.vstack([np.hstack(row) for row in packed.panels])
        np.testing.assert_array_equal(rebuilt, b)


def _assert_grids_bit_identical(fast, oracle):
    assert len(fast) == len(oracle)
    for fast_row, oracle_row in zip(fast, oracle):
        assert len(fast_row) == len(oracle_row)
        for f, o in zip(fast_row, oracle_row):
            assert f.shape == o.shape
            assert f.dtype == o.dtype
            assert f.flags["C_CONTIGUOUS"]
            assert f.tobytes() == o.tobytes()  # bit-identical layout


class TestVectorizedVsOracle:
    """The strided packer must match the loop oracle bit for bit."""

    @settings(max_examples=40)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_pack_a_matches_oracle(self, a, mc, kc):
        fast = pack_a(a, mc, kc)
        oracle = pack_a(a, mc, kc, exact=True)
        _assert_grids_bit_identical(fast.blocks, oracle.blocks)

    @settings(max_examples=40)
    @given(small_matrix(), st.integers(1, 16), st.integers(1, 16))
    def test_pack_b_matches_oracle(self, b, kc, nb):
        fast = pack_b(b, kc, nb)
        oracle = pack_b(b, kc, nb, exact=True)
        _assert_grids_bit_identical(fast.panels, oracle.panels)

    @pytest.mark.parametrize("shape", [(1, 1), (1, 37), (37, 1), (31, 29), (97, 89)])
    def test_prime_ragged_shapes(self, shape, rng):
        x = rng.standard_normal(shape)
        for chunk in (1, 2, 7, 13, max(shape)):
            _assert_grids_bit_identical(
                pack_a(x, chunk, chunk).blocks,
                pack_a(x, chunk, chunk, exact=True).blocks,
            )

    def test_fortran_ordered_input(self, rng):
        x = np.asfortranarray(rng.standard_normal((45, 37)))
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_transposed_view_input(self, rng):
        x = rng.standard_normal((37, 45)).T  # F-ordered view, no copy
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_strided_slice_input(self, rng):
        base = rng.standard_normal((90, 74))
        x = base[::2, ::2]  # non-contiguous in both dimensions
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_reverse_strided_input(self, rng):
        x = rng.standard_normal((25, 17))[::-1]
        _assert_grids_bit_identical(
            pack_a(x, 8, 5).blocks, pack_a(x, 8, 5, exact=True).blocks
        )

    def test_float32_dtype_preserved(self, rng):
        x = rng.standard_normal((25, 17)).astype(np.float32)
        packed = pack_a(x, 8, 5)
        assert all(b.dtype == np.float32 for row in packed.blocks for b in row)
        _assert_grids_bit_identical(
            packed.blocks, pack_a(x, 8, 5, exact=True).blocks
        )


class TestBufferPool:
    def test_lease_shape_and_dtype(self):
        pool = BufferPool()
        buf = pool.lease((4, 5), np.float32)
        assert buf.shape == (4, 5) and buf.dtype == np.float32

    def test_release_then_lease_reuses_storage(self):
        pool = BufferPool()
        first = pool.lease((8, 8), np.float64)
        pool.release(first)
        second = pool.lease((8, 8), np.float64)
        assert second is first
        assert pool.hits == 1 and pool.misses == 1

    def test_no_cross_shape_reuse(self):
        pool = BufferPool()
        pool.release(pool.lease((8, 8), np.float64))
        other = pool.lease((8, 9), np.float64)
        assert other.shape == (8, 9)
        assert pool.hits == 0

    def test_retention_cap_evicts(self):
        pool = BufferPool(max_retained_bytes=1000)
        small = np.empty(64, dtype=np.float64)  # 512 B
        pool.release(small, np.empty(64, dtype=np.float64),
                     np.empty(64, dtype=np.float64))
        assert pool.retained_bytes <= 1000

    def test_oversized_buffer_not_retained(self):
        pool = BufferPool(max_retained_bytes=100)
        pool.release(np.empty(1000, dtype=np.float64))
        assert pool.retained_bytes == 0

    def test_pack_through_pool_reuses_buffers(self, rng):
        pool = BufferPool()
        x = rng.standard_normal((50, 40))
        packed = pack_a(x, 8, 6, pool=pool)
        backing = {id(buf) for buf in packed.buffers}
        packed.release_to(pool)
        repacked = pack_a(x + 1.0, 8, 6, pool=pool)
        assert backing == {id(buf) for buf in repacked.buffers}
        rebuilt = np.vstack([np.hstack(row) for row in repacked.blocks])
        np.testing.assert_array_equal(rebuilt, x + 1.0)

    def test_clear(self):
        pool = BufferPool()
        pool.release(np.empty(10))
        pool.clear()
        assert pool.retained_bytes == 0


class TestPackingCost:
    def test_read_plus_write(self):
        m = intel_i9_10900k()
        cost = packing_cost(m, elements_a=1000, elements_b=500)
        assert cost.bytes_moved == 2 * 1500 * 4

    def test_seconds_scale_with_traffic_factor(self):
        m = intel_i9_10900k()
        cost = packing_cost(m, 10**6, 10**6)
        expected = (
            2 * 2 * 10**6 * 4 * m.external_traffic_factor
        ) / m.dram_bytes_per_second
        assert cost.seconds == pytest.approx(expected)

    def test_addition(self):
        m = intel_i9_10900k()
        c = packing_cost(m, 100, 0) + packing_cost(m, 0, 100)
        assert c.bytes_moved == packing_cost(m, 100, 100).bytes_moved
