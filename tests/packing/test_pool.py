"""BufferPool / SharedBufferPool lease semantics.

The shared-memory pool is the transport of the process-sharded executor
(:mod:`repro.gemm.sharded`): packed buffers must stay inside their
segments for the whole lease/release/re-lease life cycle (a copy would
silently detach the worker's view from the parent's bytes), zero-byte
leases must short-circuit exactly like the in-process pool
(``SharedMemory(create=True, size=0)`` would raise), and ``destroy``
must actually unlink every segment.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.packing.pool import BufferPool, SegmentSpec, SharedBufferPool


@pytest.fixture
def pool():
    p = SharedBufferPool()
    yield p
    p.destroy()


class TestSharedLeases:
    def test_release_does_not_copy(self, pool):
        # The regression this file exists for: release must return the
        # buffer object itself to the free list, so a re-lease hands
        # back the SAME shared mapping — not a private copy.
        buf = pool.lease((16, 8), np.float64)
        buf[...] = 7.0
        name = pool.segment_of(buf).name
        pool.release(buf)
        again = pool.lease((16, 8), np.float64)
        assert again is buf
        assert pool.segment_of(again).name == name
        assert (again == 7.0).all()  # same bytes, same segment

    def test_zero_byte_lease_short_circuits(self, pool):
        # Exactly the in-process path: no segment, no lock, no stats.
        buf = pool.lease((0, 5), np.float64)
        assert buf.shape == (0, 5)
        with pytest.raises(KeyError):
            pool.segment_of(buf)
        pool.release(buf)  # must be a no-op, not a crash
        assert pool.retained_bytes == 0
        assert pool.hits == pool.misses == 0

    def test_segment_of_rejects_foreign_arrays(self, pool):
        with pytest.raises(KeyError):
            pool.segment_of(np.zeros((3, 3)))

    def test_segment_spec_rebuilds_the_same_mapping(self, pool, rng):
        buf = pool.lease((6, 7), np.float32)
        buf[...] = rng.standard_normal((6, 7)).astype(np.float32)
        spec = pool.segment_of(buf)
        assert isinstance(spec, SegmentSpec)
        assert spec.shape == (6, 7)
        seg = shared_memory.SharedMemory(name=spec.name)
        try:
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype_str), buffer=seg.buf
            )
            assert np.array_equal(view, buf)
            view[0, 0] = 42.0  # writes travel both ways: one mapping
            assert buf[0, 0] == 42.0
        finally:
            del view
            seg.close()

    def test_concurrent_leases_never_share_segments(self, pool):
        first = pool.lease((8, 8), np.float64)
        second = pool.lease((8, 8), np.float64)
        assert first is not second
        assert pool.segment_of(first).name != pool.segment_of(second).name


class TestDestroy:
    def test_destroy_unlinks_every_segment(self):
        pool = SharedBufferPool()
        specs = []
        for shape in ((4, 4), (2, 10)):
            specs.append(pool.segment_of(pool.lease(shape, np.float64)))
        pool.destroy()
        for spec in specs:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=spec.name)

    def test_destroy_covers_released_buffers_too(self):
        pool = SharedBufferPool()
        buf = pool.lease((4, 4), np.float64)
        spec = pool.segment_of(buf)
        pool.release(buf)
        del buf
        pool.destroy()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.name)


class TestInProcessPoolUnchanged:
    def test_zero_byte_lease_short_circuits(self):
        pool = BufferPool()
        buf = pool.lease((0, 3), np.float64)
        assert buf.size == 0
        pool.release(buf)
        assert pool.retained_bytes == 0
        assert pool.hits == pool.misses == 0

    def test_lease_release_recycles(self):
        pool = BufferPool()
        buf = pool.lease((5, 5), np.float64)
        pool.release(buf)
        assert pool.lease((5, 5), np.float64) is buf
        assert pool.hits == 1


class TestStatsCounters:
    def test_lease_hit_miss_counters(self):
        pool = BufferPool()
        first = pool.lease((4, 4), np.float32)
        second = pool.lease((4, 4), np.float32)  # no free buffer: miss
        assert (pool.lease_count, pool.hit_count, pool.miss_count) == (
            2, 0, 2,
        )
        pool.release(first, second)
        pool.lease((4, 4), np.float32)
        assert (pool.lease_count, pool.hit_count, pool.miss_count) == (
            3, 1, 2,
        )

    def test_stats_snapshot_is_consistent(self):
        pool = BufferPool()
        buf = pool.lease((8, 8), np.float64)
        pool.release(buf)
        pool.lease((8, 8), np.float64)
        stats = pool.stats()
        assert stats == {
            "leases": 2,
            "hits": 1,
            "misses": 1,
            "retained_bytes": 0,
        }
        assert stats["leases"] == stats["hits"] + stats["misses"]

    def test_zero_element_leases_stay_invisible(self):
        pool = BufferPool()
        pool.release(pool.lease((0, 9), np.float64))
        assert pool.lease_count == 0
        assert pool.stats()["leases"] == 0

    def test_threaded_contention_counters_balance(self):
        # Regression for the serve layer's shared-pool accounting: many
        # threads lease/release the same shape concurrently, and the
        # counters must balance exactly (every lease is a hit or a miss,
        # no lost updates) while no two live leases alias storage.
        import threading

        pool = BufferPool()
        threads_n, rounds = 8, 25
        barrier = threading.Barrier(threads_n)
        errors: list[str] = []

        def worker(tag: float) -> None:
            barrier.wait()
            for _ in range(rounds):
                buf = pool.lease((16, 16), np.float64)
                buf[...] = tag  # stamp; an aliased lease would corrupt
                if not (buf == tag).all():
                    errors.append("aliased lease observed")
                pool.release(buf)

        threads = [
            threading.Thread(target=worker, args=(float(i + 1),))
            for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        stats = pool.stats()
        assert stats["leases"] == threads_n * rounds
        assert stats["hits"] + stats["misses"] == stats["leases"]
        # At most one fresh allocation per thread can be in flight at
        # once, so misses never exceed the thread count.
        assert 1 <= stats["misses"] <= threads_n
