"""Tests for the cake-plan CLI."""

import pytest

from repro.bench.plan_cli import main


class TestPlanCli:
    def test_intel_plan(self, capsys):
        assert main(
            ["--machine", "intel-i9-10900k", "-m", "2304", "-n", "2304", "-k", "2304"]
        ) == 0
        out = capsys.readouterr().out
        assert "CAKE" in out and "GOTO" in out
        assert "alpha=1 mc=kc=192" in out

    def test_cores_override(self, capsys):
        assert main(
            ["--machine", "arm-cortex-a53", "-m", "600", "-n", "600", "-k", "600",
             "--cores", "2"]
        ) == 0
        assert "2 cores" in capsys.readouterr().out

    def test_dram_override_changes_alpha(self, capsys):
        """Throttling DRAM in what-if mode makes the plan stretch alpha
        (the Intel LLC has room to trade)."""
        main(
            ["--machine", "intel-i9-10900k", "-m", "2304", "-n", "2304",
             "-k", "2304", "--dram-gb-s", "1.0"]
        )
        out = capsys.readouterr().out
        assert "alpha=1 " not in out  # no longer the plentiful default

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            main(["--machine", "cray-1", "-m", "8", "-n", "8", "-k", "8"])
