"""Integration: every registered experiment runs at quick scale.

This is the harness's smoke net — any structural regression in the
figure generators (renamed keys, broken plans, schedule errors) surfaces
here before a full-scale benchmark run.
"""

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.ablations import ABLATIONS

ALL = sorted({**EXPERIMENTS, **ABLATIONS})


@pytest.mark.parametrize("name", ALL)
def test_experiment_runs_quick(name):
    report = run_experiment(name, "quick")
    assert report.experiment_id == name
    assert report.lines, name
    assert report.data, name
    # Every report renders and serialises.
    assert report.text().startswith(f"== {name}:")
    assert isinstance(report.csv(), str)
