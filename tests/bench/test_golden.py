"""Golden-file regression tests for the bench row generators.

Each covered experiment runs at quick scale, its report is flattened to
header-keyed rows (the same shape ``BENCH_*.json`` carries), and the
result is diffed against a committed fixture under ``tests/golden/``.
Any numeric drift in the analytical models — block geometry, IO
counters, bandwidth curves — shows up here as a readable JSON diff
instead of a silently changed figure.

To intentionally re-baseline after a model change::

    CAKE_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/bench/test_golden.py

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench import run_experiment
from repro.runtime import ExperimentRuntime, rows_from_report

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: Experiments pinned by golden files: the cheap, fully deterministic
#: generators spanning every analysis family (machine table, CB
#: scaling, stall/access profiles, shape sweep, speedup, core scaling).
PINNED = ("table2", "fig4", "fig7a", "fig7b", "fig8", "fig9a", "fig10")


def _canonical_rows(name: str) -> str:
    report = run_experiment(name, "quick")
    rows = rows_from_report(report)
    return json.dumps(rows, sort_keys=True, indent=1, default=str) + "\n"


@pytest.mark.parametrize("name", PINNED)
def test_rows_match_golden(name):
    path = GOLDEN_DIR / f"{name}_quick.json"
    actual = _canonical_rows(name)
    if os.environ.get("CAKE_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path}; run with CAKE_REGEN_GOLDEN=1 "
        "to create it"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"{name} quick-scale rows drifted from {path.name}; if the model "
        "change is intentional, regenerate with CAKE_REGEN_GOLDEN=1 and "
        "review the diff"
    )


def test_golden_rows_survive_the_runtime():
    """Routing a pinned experiment through the runtime changes nothing."""
    name = "fig8"
    direct = _canonical_rows(name)
    report = run_experiment(name, "quick", runtime=ExperimentRuntime(workers=2))
    routed = json.dumps(
        rows_from_report(report), sort_keys=True, indent=1, default=str
    ) + "\n"
    assert routed == direct


def test_no_orphan_golden_fixtures():
    """Every committed fixture corresponds to a pinned experiment."""
    fixtures = {p.stem for p in GOLDEN_DIR.glob("*_quick.json")}
    assert fixtures == {f"{name}_quick" for name in PINNED}
