"""Tests for the experiment registry, report formatting, and CLI."""

import pytest

from repro.bench import EXPERIMENTS, ExperimentReport, run_experiment
from repro.bench.ablations import ABLATIONS
from repro.bench.cli import main
from repro.bench.report import format_table


class TestFormatTable:
    def test_alignment(self):
        lines = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_formatting(self):
        lines = format_table(["x"], [[1.23456], [1234.5678]])
        assert "1.235" in lines[2]
        assert "1234.6" in lines[3]

    def test_empty_rows(self):
        lines = format_table(["a", "b"], [])
        assert len(lines) == 2  # header + rule only


class TestExperimentReport:
    def test_text_layout(self):
        rep = ExperimentReport("x1", "A Title")
        rep.add_line("hello")
        text = rep.text()
        assert text.startswith("== x1: A Title ==")
        assert "hello" in text

    def test_add_table(self):
        rep = ExperimentReport("x1", "t")
        rep.add_table(["a"], [[1]])
        assert len(rep.lines) == 3


class TestRegistry:
    def test_every_figure_has_an_experiment(self):
        expected = {
            "table2", "fig4", "fig7a", "fig7b", "fig8",
            "fig9a", "fig9b", "fig10", "fig11", "fig12",
            "verify", "backends", "sharded", "serve", "autotune",
        }
        assert expected == set(EXPERIMENTS)

    def test_ablations_registered(self):
        assert {
            "ablation-schedule", "ablation-alpha", "ablation-lru",
            "packing", "archsim",
        } == set(ABLATIONS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    @pytest.mark.parametrize("name", ["table2", "fig4", "ablation-schedule"])
    def test_quick_scale_runs(self, name):
        rep = run_experiment(name, "quick")
        assert rep.experiment_id == name
        assert rep.lines

    def test_quick_fig9b_runs(self):
        rep = run_experiment("fig9b", "quick")
        assert rep.data["series"]


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "ablation-lru" in out

    def test_list_describes_every_experiment(self, capsys):
        """Each --list line carries a one-line description; the
        autotune experiment is registered."""
        assert main(["--list"]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        registry = {**EXPERIMENTS, **ABLATIONS}
        assert len(lines) == len(registry)
        assert "autotune" in {line.split()[0] for line in lines}
        for line in lines:
            name, description = line.split(None, 1)
            assert name in registry
            assert description.strip()

    def test_list_survives_empty_docstrings(self):
        """A generator without a docstring gets a placeholder instead of
        an IndexError (''.splitlines()[0] was the old failure mode)."""
        from repro.bench.cli import describe_experiment

        def undocumented(scale="full", *, runtime=None):
            pass

        def blank(scale="full", *, runtime=None):
            """   """

        assert describe_experiment(undocumented) == "(no description)"
        assert describe_experiment(blank) == "(no description)"
        assert describe_experiment(lambda: None) == "(no description)"

    def test_single_experiment(self, capsys, tmp_path):
        assert main(["table2", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table2.txt").exists()
        assert "Intel i9-10900K" in capsys.readouterr().out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCliFaultTolerance:
    """--retries / --task-timeout / --on-error / --inject-faults plumbing."""

    def _transient_plan(self, tmp_path) -> str:
        import json

        return json.dumps(
            {
                "state_dir": str(tmp_path / "fault-state"),
                "rules": [{"match": "*", "kind": "raise", "times": 1}],
            }
        )

    def test_inject_faults_with_retries_completes_cleanly(self, tmp_path, capsys):
        status = main(
            [
                "fig9a",
                "--scale",
                "quick",
                "--retries",
                "2",
                "--inject-faults",
                self._transient_plan(tmp_path),
            ]
        )
        assert status == 0
        assert "CAKE" in capsys.readouterr().out

    def test_collect_mode_failure_exits_nonzero_and_marks_json(
        self, tmp_path, capsys
    ):
        import json

        plan = json.dumps({"rules": [{"match": "*", "times": 999}]})
        out_dir = tmp_path / "json"
        status = main(
            [
                "fig9a",
                "--scale",
                "quick",
                "--on-error",
                "collect",
                "--inject-faults",
                plan,
                "--json",
                str(out_dir),
            ]
        )
        assert status == 1
        err = capsys.readouterr().err
        assert "FAILED" in err and "InjectedFault" in err
        payload = json.loads((out_dir / "BENCH_fig9a.json").read_text())
        assert payload["complete"] is False
        assert payload["failures"]

    def test_inject_faults_plan_file(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(self._transient_plan(tmp_path))
        status = main(
            ["fig9a", "--scale", "quick", "--retries", "1",
             "--inject-faults", f"@{plan_path}"]
        )
        assert status == 0
        capsys.readouterr()

    def test_bare_inject_faults_requires_env(self, monkeypatch, capsys):
        monkeypatch.delenv("CAKE_FAULT_PLAN", raising=False)
        with pytest.raises(SystemExit):
            main(["fig9a", "--scale", "quick", "--inject-faults"])
        assert "CAKE_FAULT_PLAN" in capsys.readouterr().err

    def test_rejects_bad_on_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig9a", "--on-error", "explode"])
        capsys.readouterr()
