"""Tests for batched convolution via a single GEMM."""

import numpy as np
import pytest

from repro.dnn import conv2d_batched_via_gemm, conv2d_via_gemm
from repro.gemm import CakeGemm


class TestBatchedConv:
    def test_matches_per_sample(self, intel, rng):
        xb = rng.standard_normal((3, 2, 8, 8))
        w = rng.standard_normal((4, 2, 3, 3))
        engine = CakeGemm(intel)
        batched = conv2d_batched_via_gemm(xb, w, engine=engine)
        for i, x in enumerate(xb):
            single = conv2d_via_gemm(x, w, engine=engine)
            np.testing.assert_allclose(batched.y[i], single.y, rtol=1e-9)

    def test_with_padding_stride_bias(self, intel, rng):
        xb = rng.standard_normal((2, 3, 9, 9))
        w = rng.standard_normal((5, 3, 3, 3))
        bias = rng.standard_normal(5)
        engine = CakeGemm(intel)
        batched = conv2d_batched_via_gemm(
            xb, w, bias, stride=2, padding=1, engine=engine
        )
        for i, x in enumerate(xb):
            single = conv2d_via_gemm(
                x, w, bias, stride=2, padding=1, engine=engine
            )
            np.testing.assert_allclose(batched.y[i], single.y, rtol=1e-9)

    def test_gemm_shape_widens_with_batch(self, intel, rng):
        """Batching widens N — the AI-raising effect the docstring claims."""
        xb = rng.standard_normal((4, 2, 8, 8))
        w = rng.standard_normal((4, 2, 3, 3))
        engine = CakeGemm(intel)
        batched = conv2d_batched_via_gemm(xb, w, engine=engine)
        single = conv2d_via_gemm(xb[0], w, engine=engine)
        assert batched.run.space.n == 4 * single.run.space.n
        # Wider N amortises packing/input IO: intensity must not drop.
        assert (
            batched.run.arithmetic_intensity
            >= single.run.arithmetic_intensity
        )

    def test_wrong_rank_rejected(self, intel, rng):
        with pytest.raises(ValueError, match=r"\(B, C_in, H, W\)"):
            conv2d_batched_via_gemm(
                rng.standard_normal((2, 8, 8)),
                rng.standard_normal((4, 2, 3, 3)),
                engine=CakeGemm(intel),
            )

    def test_channel_mismatch_rejected(self, intel, rng):
        with pytest.raises(ValueError, match="channels"):
            conv2d_batched_via_gemm(
                rng.standard_normal((2, 3, 8, 8)),
                rng.standard_normal((4, 2, 3, 3)),
                engine=CakeGemm(intel),
            )
