"""Tests for the conv-to-GEMM lowering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn import (
    ConvLayer,
    conv2d_gemm_shape,
    conv2d_via_gemm,
    im2col,
    resnet_like_layers,
    tiny_cnn_layers,
)
from repro.gemm import CakeGemm, GotoGemm


def direct_conv(x: np.ndarray, w: np.ndarray, stride: int = 1) -> np.ndarray:
    """Independent reference convolution (sliding-window einsum)."""
    c_out, c_in, r, s = w.shape
    windows = np.lib.stride_tricks.sliding_window_view(x, (c_in, r, s))[0]
    windows = windows[::stride, ::stride]
    return np.einsum("hwcrs,ocrs->ohw", windows, w)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.standard_normal((3, 8, 8))
        cols = im2col(x, 3, 3)
        assert cols.shape == (3 * 9, 6 * 6)

    def test_stride(self, rng):
        x = rng.standard_normal((2, 9, 9))
        cols = im2col(x, 3, 3, stride=2)
        assert cols.shape == (18, 16)  # 4x4 output positions

    def test_values_match_explicit_patches(self, rng):
        x = rng.standard_normal((2, 5, 5))
        cols = im2col(x, 2, 2)
        # patch at output position (1, 2)
        patch = x[:, 1:3, 2:4].reshape(-1)
        np.testing.assert_array_equal(cols[:, 1 * 4 + 2], patch)

    def test_kernel_too_big_rejected(self, rng):
        with pytest.raises(ValueError, match="does not fit"):
            im2col(rng.standard_normal((1, 3, 3)), 4, 4)

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError, match=r"\(C, H, W\)"):
            im2col(np.zeros((4, 4)), 2, 2)

    @settings(max_examples=20)
    @given(
        st.integers(1, 3), st.integers(4, 9), st.integers(4, 9),
        st.integers(1, 3), st.integers(1, 2),
    )
    def test_gemm_equals_direct_conv(self, c, h, w, r, stride):
        rng = np.random.default_rng(c * 100 + h * 10 + w)
        x = rng.standard_normal((c, h, w))
        weights = rng.standard_normal((2, c, r, r))
        cols = im2col(x, r, r, stride)
        y = (weights.reshape(2, -1) @ cols).reshape(2, *direct_conv(x, weights, stride).shape[1:])
        np.testing.assert_allclose(y, direct_conv(x, weights, stride), rtol=1e-10)


class TestConvViaGemm:
    def test_matches_direct_conv_cake(self, intel, rng):
        x = rng.standard_normal((3, 16, 16))
        w = rng.standard_normal((8, 3, 3, 3))
        result = conv2d_via_gemm(x, w, engine=CakeGemm(intel))
        np.testing.assert_allclose(result.y, direct_conv(x, w), rtol=1e-9)

    def test_matches_direct_conv_goto(self, arm, rng):
        x = rng.standard_normal((4, 12, 12))
        w = rng.standard_normal((6, 4, 3, 3))
        result = conv2d_via_gemm(x, w, engine=GotoGemm(arm))
        np.testing.assert_allclose(result.y, direct_conv(x, w), rtol=1e-9)

    def test_default_engine(self, rng):
        x = rng.standard_normal((2, 8, 8))
        w = rng.standard_normal((4, 2, 3, 3))
        result = conv2d_via_gemm(x, w)
        np.testing.assert_allclose(result.y, direct_conv(x, w), rtol=1e-9)

    def test_run_report_attached(self, intel, rng):
        x = rng.standard_normal((2, 8, 8))
        w = rng.standard_normal((4, 2, 3, 3))
        result = conv2d_via_gemm(x, w, engine=CakeGemm(intel))
        assert result.run.gflops > 0

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="channels"):
            conv2d_via_gemm(
                rng.standard_normal((3, 8, 8)),
                rng.standard_normal((4, 2, 3, 3)),
            )

    def test_bad_weights_rank_rejected(self, rng):
        with pytest.raises(ValueError, match="C_out"):
            conv2d_via_gemm(
                rng.standard_normal((3, 8, 8)),
                rng.standard_normal((4, 27)),
            )


class TestLayerZoo:
    def test_gemm_shape_formula(self):
        assert conv2d_gemm_shape(3, 32, 32, 32, 3, 3) == (32, 30 * 30, 27)

    def test_tiny_cnn_chains(self):
        """Each layer's input channels match the previous output, and
        spatial sizes match after the example's pooling points."""
        layers = tiny_cnn_layers()
        assert layers[0].c_in == 3
        for prev, cur in zip(layers, layers[1:]):
            assert cur.c_in == prev.c_out

    def test_resnet_shapes_are_skewed(self):
        """The motivating workload: early layers are N >> M (Figure 8's
        skewed regime)."""
        m, n, k = resnet_like_layers()[0].gemm_shape()
        assert n > 10 * m

    def test_layer_is_frozen(self):
        layer = ConvLayer("x", 1, 8, 8, 1, 3, 3)
        with pytest.raises(AttributeError):
            layer.c_in = 2
