"""Tests for padding/stride/bias and the backward-pass GEMM lowerings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn import (
    col2im,
    conv2d_gemm_shape,
    conv2d_input_gradient,
    conv2d_via_gemm,
    conv2d_weight_gradient,
    im2col,
)
from repro.gemm import CakeGemm


def padded_direct_conv(x, w, stride=1, padding=0):
    """Reference convolution with padding and stride (einsum-based)."""
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    c_out, c_in, r, s = w.shape
    windows = np.lib.stride_tricks.sliding_window_view(x, (c_in, r, s))[0]
    windows = windows[::stride, ::stride]
    return np.einsum("hwcrs,ocrs->ohw", windows, w)


class TestPaddingAndStride:
    def test_same_padding(self, intel, rng):
        """3x3 kernel, padding 1: output spatial size equals input."""
        x = rng.standard_normal((3, 10, 10))
        w = rng.standard_normal((5, 3, 3, 3))
        res = conv2d_via_gemm(x, w, padding=1, engine=CakeGemm(intel))
        assert res.y.shape == (5, 10, 10)
        np.testing.assert_allclose(
            res.y, padded_direct_conv(x, w, padding=1), rtol=1e-9
        )

    def test_stride_two_with_padding(self, intel, rng):
        x = rng.standard_normal((2, 11, 11))
        w = rng.standard_normal((4, 2, 3, 3))
        res = conv2d_via_gemm(x, w, stride=2, padding=1, engine=CakeGemm(intel))
        np.testing.assert_allclose(
            res.y, padded_direct_conv(x, w, stride=2, padding=1), rtol=1e-9
        )

    def test_bias(self, intel, rng):
        x = rng.standard_normal((2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        bias = rng.standard_normal(3)
        res = conv2d_via_gemm(x, w, bias, engine=CakeGemm(intel))
        expected = padded_direct_conv(x, w) + bias[:, None, None]
        np.testing.assert_allclose(res.y, expected, rtol=1e-9)

    def test_bad_bias_shape(self, intel, rng):
        x = rng.standard_normal((2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        with pytest.raises(ValueError, match="bias"):
            conv2d_via_gemm(x, w, np.zeros(5), engine=CakeGemm(intel))

    def test_gemm_shape_accounts_for_padding(self):
        assert conv2d_gemm_shape(3, 10, 10, 5, 3, 3, padding=1) == (5, 100, 27)

    def test_negative_padding_rejected(self, rng):
        with pytest.raises(ValueError, match="padding"):
            im2col(rng.standard_normal((1, 5, 5)), 3, 3, padding=-1)


class TestCol2Im:
    def test_adjoint_identity(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining property of
        an adjoint pair, checked on random tensors."""
        x = rng.standard_normal((2, 7, 7))
        cols_shape = im2col(x, 3, 3, stride=2, padding=1).shape
        y = rng.standard_normal(cols_shape)
        lhs = np.sum(im2col(x, 3, 3, 2, 1) * y)
        rhs = np.sum(x * col2im(y, (2, 7, 7), 3, 3, 2, 1))
        assert lhs == pytest.approx(rhs)

    def test_shape_check(self, rng):
        with pytest.raises(ValueError, match="expected"):
            col2im(rng.standard_normal((5, 5)), (1, 6, 6), 2, 2)


class TestGradients:
    def _numeric_weight_grad(self, x, w, dy, stride, padding, eps=1e-6):
        grad = np.zeros_like(w)
        it = np.nditer(w, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            wp, wm = w.copy(), w.copy()
            wp[idx] += eps
            wm[idx] -= eps
            yp = padded_direct_conv(x, wp, stride, padding)
            ym = padded_direct_conv(x, wm, stride, padding)
            grad[idx] = np.sum((yp - ym) * dy) / (2 * eps)
            it.iternext()
        return grad

    def test_weight_gradient_matches_numeric(self, intel, rng):
        x = rng.standard_normal((2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        dy = rng.standard_normal((3, 4, 4))
        res = conv2d_weight_gradient(x, dy, (3, 3), engine=CakeGemm(intel))
        numeric = self._numeric_weight_grad(x, w, dy, 1, 0)
        np.testing.assert_allclose(res.y, numeric, rtol=1e-4, atol=1e-6)

    def test_weight_gradient_with_padding_stride(self, intel, rng):
        x = rng.standard_normal((1, 7, 7))
        w = rng.standard_normal((2, 1, 3, 3))
        dy = rng.standard_normal(padded_direct_conv(x, w, 2, 1).shape)
        res = conv2d_weight_gradient(
            x, dy, (3, 3), stride=2, padding=1, engine=CakeGemm(intel)
        )
        numeric = self._numeric_weight_grad(x, w, dy, 2, 1)
        np.testing.assert_allclose(res.y, numeric, rtol=1e-4, atol=1e-6)

    def test_input_gradient_matches_numeric(self, intel, rng):
        x = rng.standard_normal((2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        dy = rng.standard_normal((3, 4, 4))
        res = conv2d_input_gradient(w, dy, (2, 6, 6), engine=CakeGemm(intel))

        eps = 1e-6
        numeric = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            diff = padded_direct_conv(xp, w) - padded_direct_conv(xm, w)
            numeric[idx] = np.sum(diff * dy) / (2 * eps)
            it.iternext()
        np.testing.assert_allclose(res.y, numeric, rtol=1e-4, atol=1e-6)

    def test_dy_shape_mismatch_rejected(self, intel, rng):
        x = rng.standard_normal((2, 6, 6))
        dy = rng.standard_normal((3, 5, 5))  # wrong spatial size
        with pytest.raises(ValueError, match="patch positions"):
            conv2d_weight_gradient(x, dy, (3, 3), engine=CakeGemm(intel))

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(1, 2), st.integers(5, 8), st.integers(1, 3),
        st.integers(0, 1), st.integers(1, 2),
    )
    def test_gradient_gemms_are_consistent(self, c, h, c_out, padding, stride):
        """dW from the GEMM lowering equals the einsum formulation for
        random geometries."""
        from repro.machines import intel_i9_10900k

        rng = np.random.default_rng(c * 37 + h * 5 + c_out)
        x = rng.standard_normal((c, h, h))
        r = 3
        if h + 2 * padding < r:
            return
        w = rng.standard_normal((c_out, c, r, r))
        y = padded_direct_conv(x, w, stride, padding)
        dy = rng.standard_normal(y.shape)
        res = conv2d_weight_gradient(
            x, dy, (r, r), stride=stride, padding=padding,
            engine=CakeGemm(intel_i9_10900k()),
        )
        cols = im2col(x, r, r, stride, padding)
        expected = (dy.reshape(c_out, -1) @ cols.T).reshape(w.shape)
        np.testing.assert_allclose(res.y, expected, rtol=1e-9)
