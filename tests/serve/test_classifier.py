"""Shape classification: the dispatcher's coalescing identity."""

import numpy as np
import pytest

from repro.serve.classifier import (
    SMALL_SURFACE_ELEMENTS,
    ShapeClass,
    classify,
)


def _operands(m, k, n, dtype=np.float32):
    return (
        np.zeros((m, k), dtype=dtype),
        np.zeros((k, n), dtype=dtype),
    )


class TestClassify:
    def test_key_groups_identical_problems(self):
        a1, b1 = _operands(64, 128, 96)
        a2, b2 = _operands(64, 128, 96)
        assert classify("cake", a1, b1).key == classify("cake", a2, b2).key

    def test_key_separates_engine_shape_dtype_cores(self):
        a, b = _operands(64, 128, 96)
        base = classify("cake", a, b)
        assert classify("goto", a, b).key != base.key
        a64, b64 = _operands(64, 128, 96, dtype=np.float64)
        assert classify("cake", a64, b64).key != base.key
        at, bt = _operands(96, 128, 64)
        assert classify("cake", at, bt).key != base.key
        assert classify("cake", a, b, cores=4).key != base.key

    def test_small_threshold_is_total_surface(self):
        a, b = _operands(16, 16, 16)
        assert classify("cake", a, b).small
        # Surface = m*k + k*n + m*n elements; straddle the threshold.
        side = int((SMALL_SURFACE_ELEMENTS / 3) ** 0.5)
        big_a, big_b = _operands(2 * side, 2 * side, 2 * side)
        assert not classify("cake", big_a, big_b).small
        tiny = classify(
            "cake", a, b, small_surface=3 * 16 * 16 - 1
        )
        assert not tiny.small

    def test_describe_is_human_readable(self):
        a, b = _operands(256, 2048, 1024)
        label = classify("cake", a, b).describe()
        assert label == "cake:256x1024x2048:f4"

    def test_frozen_and_hashable(self):
        a, b = _operands(8, 8, 8)
        cls = classify("cake", a, b)
        assert isinstance(cls, ShapeClass)
        assert hash(cls.key)  # usable as a dict key
        with pytest.raises(AttributeError):
            cls.m = 5
