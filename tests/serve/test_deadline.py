"""Deadline propagation: spent budgets terminate, generous ones don't.

Satellite 3b of ISSUE 8: the property suite pins that a deadline can
only fire once its budget is genuinely spent — a generous budget never
expires early at any layer (pure arithmetic, the shard executor, the
server) — and the concrete tests pin the other direction: a hung shard
worker cannot outlive the budget, and a request that expires while
queued never executes.
"""

import tempfile
import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeadlineExceededError
from repro.gemm.cake import CakeGemm
from repro.gemm.sharded import ShardConfig
from repro.gemm.verify import VerifyConfig
from repro.runtime.deadline import Deadline
from repro.runtime.faults import NumericFaultPlan, NumericFaultRule
from repro.serve.server import MultiplyServer

_clock = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
_budget = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestDeadlineArithmetic:
    @given(now=_clock, budget=_budget)
    def test_fresh_deadline_is_never_expired(self, now, budget):
        deadline = Deadline.after(budget, now=now)
        assert deadline.at == now + budget
        assert deadline.budget == budget
        assert not deadline.expired(now)
        # remaining == (now + budget) - now, exact up to one rounding
        # of the sum at the clock's magnitude.
        assert abs(deadline.remaining(now) - budget) <= 4 * np.spacing(
            now + budget
        )

    @given(
        now=_clock,
        budget=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        fraction=st.floats(min_value=0.0, max_value=0.99),
    )
    def test_generous_budget_never_fires_early(
        self, now, budget, fraction
    ):
        # The heart of the satellite: while a meaningful share of the
        # budget remains, no layer asking the deadline may see expiry.
        deadline = Deadline.after(budget, now=now)
        later = now + fraction * budget
        assert not deadline.expired(later)
        assert deadline.remaining(later) > 0.0

    @given(now=_clock, budget=_budget, elapsed=_clock)
    def test_expiry_matches_the_absolute_instant(
        self, now, budget, elapsed
    ):
        deadline = Deadline.after(budget, now=now)
        later = now + elapsed
        if later < deadline.at:
            assert not deadline.expired(later)
            assert deadline.remaining(later) > 0.0
        else:
            assert deadline.expired(later)
            assert deadline.remaining(later) == 0.0

    @given(now=_clock, budget=_budget, elapsed=_clock)
    def test_remaining_is_clamped_and_consistent(
        self, now, budget, elapsed
    ):
        deadline = Deadline.after(budget, now=now)
        remaining = deadline.remaining(now + elapsed)
        assert remaining >= 0.0
        assert (remaining == 0.0) == deadline.expired(now + elapsed)

    def test_default_clock_is_monotonic(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 59.0 < deadline.remaining() <= 60.0


class TestShardDeadline:
    def test_generous_budget_never_fires_early(self, intel, rng):
        # A real sharded run under a budget that dwarfs its runtime:
        # the deadline plumbing must be invisible — same bits, no error.
        a = rng.standard_normal((48, 384)).astype(np.float32)
        b = rng.standard_normal((384, 192)).astype(np.float32)
        reference = CakeGemm(intel, cores=1).multiply(a, b).c
        run = CakeGemm(
            intel,
            cores=1,
            processes=ShardConfig(
                processes=2, deadline=time.monotonic() + 600.0
            ),
        ).multiply(a, b)
        assert np.array_equal(run.c, reference)

    def test_hung_worker_cannot_outlive_the_budget(self, intel, rng):
        # One shard worker sleeps far past the budget; the shard
        # executor's bounded wait must kill the pool and raise the
        # structured deadline error instead of stranding the caller.
        a = rng.standard_normal((48, 384)).astype(np.float32)
        b = rng.standard_normal((384, 192)).astype(np.float32)
        hang = VerifyConfig(
            enabled=False,
            inject=NumericFaultPlan(
                rules=(
                    NumericFaultRule(kind="hang", hang_seconds=30.0),
                ),
                state_dir=tempfile.mkdtemp(prefix="serve-hang-"),
            ),
        )
        engine = CakeGemm(
            intel,
            cores=1,
            verify=hang,
            processes=ShardConfig(
                processes=2,
                deadline=time.monotonic() + 1.0,
                inline_fallback=False,
            ),
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError) as exc:
            engine.multiply(a, b)
        assert exc.value.stage == "shard"
        # Fired at the budget, not after the 30 s hang drained.
        assert time.monotonic() - started < 15.0

    def test_already_spent_budget_fails_before_dispatch(
        self, intel, rng
    ):
        a = rng.standard_normal((32, 128)).astype(np.float32)
        b = rng.standard_normal((128, 64)).astype(np.float32)
        engine = CakeGemm(
            intel,
            cores=1,
            processes=ShardConfig(
                processes=2, deadline=time.monotonic() - 1.0
            ),
        )
        with pytest.raises(DeadlineExceededError):
            engine.multiply(a, b)


class TestServerDeadline:
    def test_generous_budgets_always_complete(self, intel, rng):
        a = rng.standard_normal((32, 128)).astype(np.float32)
        b = rng.standard_normal((128, 64)).astype(np.float32)
        reference = CakeGemm(intel, cores=1).multiply(a, b).c
        with MultiplyServer(intel, cores=1) as server:
            for budget in (5.0, 60.0, 3600.0):
                run = server.multiply(a, b, deadline=budget)
                assert np.array_equal(run.c, reference)
        assert server.stats().deadline_exceeded == 0

    def test_expiry_while_queued_never_executes(self, intel, rng):
        a = rng.standard_normal((32, 128)).astype(np.float32)
        b = rng.standard_normal((128, 64)).astype(np.float32)
        server = MultiplyServer(intel, cores=1, executors=1)
        with server:
            with server._cond:
                # Admitted with a live budget, then the dispatcher is
                # kept frozen until the budget is gone.
                handle = server.submit(a, b, deadline=0.05)
                time.sleep(0.1)
            with pytest.raises(DeadlineExceededError):
                handle.result(timeout=10.0)
        assert handle.report.status == "deadline"
        # executed counts engine passes; an expired-in-queue request
        # must never have reached one.
        stats = server.stats()
        assert stats.executed == 0
        assert stats.completed == 0

    def test_default_deadline_applies_to_submits(self, intel, rng):
        a = rng.standard_normal((32, 128)).astype(np.float32)
        b = rng.standard_normal((128, 64)).astype(np.float32)
        with MultiplyServer(
            intel, cores=1, default_deadline=60.0
        ) as server:
            handle = server.submit(a, b)
            handle.result(timeout=60.0)
        assert handle.deadline is not None
        assert handle.deadline.budget == 60.0
        assert handle.report.deadline == 60.0
