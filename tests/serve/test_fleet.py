"""Tests for the supervised multi-process serving fleet.

The fleet's contract is the serve contract under process death: every
response bit-identical to a direct engine call or a structured
``CakeError``, every admitted handle resolving — while workers are
killed, hung, and restarted underneath. Spawning a worker costs real
time (numpy import per process), so most tests share one module-scoped
two-worker fleet; the terminal/drain tests build their own small fleets
because they destroy them.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    CakeError,
    FleetError,
    ProtocolError,
    WorkerCrashError,
)
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.machines.presets import intel_i9_10900k
from repro.runtime.executor import RetryPolicy
from repro.runtime.restart import RestartPolicy
from repro.serve.fleet import FleetClient, FleetFrontDoor, FleetServer
from repro.serve.protocol import (
    PROTOCOL,
    decode_error,
    recv_frame,
    send_frame,
)
from repro.serve.soak import run_fleet_soak

RESULT_TIMEOUT = 60.0


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def machine():
    return intel_i9_10900k()


@pytest.fixture(scope="module")
def operands(machine):
    rng = np.random.default_rng(20210)
    a = rng.standard_normal((24, 96)).astype(np.float32)
    b = rng.standard_normal((96, 64)).astype(np.float32)
    return {
        "a": a,
        "b": b,
        "cake": CakeGemm(machine, cores=1).multiply(a, b).c,
        "goto": GotoGemm(machine, cores=1).multiply(a, b).c,
    }


@pytest.fixture(scope="module")
def fleet(machine):
    server = FleetServer(
        machine,
        workers=2,
        capacity=32,
        worker_capacity=32,
        cores=1,
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        restart_policy=RestartPolicy(
            max_restarts=100,
            backoff=RetryPolicy(retries=0, base_delay=0.05, max_delay=0.2),
            reset_after=5.0,
        ),
        max_redispatch=3,
        max_inflight_per_worker=8,
    )
    server.start()
    assert _wait_until(
        lambda: len(server.supervisor.ready_indices()) == 2, timeout=60.0
    ), "fleet workers never became ready"
    yield server
    server.stop(drain=False)


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["cake", "goto"])
    def test_engine_results_match_direct_call(self, fleet, operands, engine):
        run = fleet.multiply(
            operands["a"], operands["b"], engine=engine,
        )
        assert np.array_equal(run.c, operands[engine])

    def test_threaded_request_matches_direct_call(self, fleet, operands):
        run = fleet.multiply(operands["a"], operands["b"], workers=2)
        assert np.array_equal(run.c, operands["cake"])

    def test_validation_runs_in_parent(self, fleet, operands):
        with pytest.raises(ValueError, match="engine"):
            fleet.submit(operands["a"], operands["b"], engine="nope")
        with pytest.raises(ValueError, match="2-D"):
            fleet.submit(operands["a"][0], operands["b"])  # 1-D operand


class TestBackpressure:
    def test_capacity_shed_carries_aggregate_retry_hint(
        self, fleet, operands
    ):
        # Freeze the fleet dispatcher (its Condition is re-entrant for
        # this thread) and fill the queue to capacity: the next submit
        # must shed with reason="capacity" and an aggregate-backlog
        # retry_after, and every frozen request must still resolve
        # after release.
        handles = []
        with fleet._cond:
            free = fleet.capacity - len(fleet._queue) - len(fleet._assigned)
            for _ in range(free):
                handles.append(
                    fleet.submit(
                        operands["a"], operands["b"], deadline=RESULT_TIMEOUT
                    )
                )
            with pytest.raises(AdmissionError) as excinfo:
                fleet.submit(
                    operands["a"], operands["b"], deadline=RESULT_TIMEOUT
                )
        assert excinfo.value.reason == "capacity"
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 0
        assert excinfo.value.queue_depth >= fleet.capacity
        for handle in handles:
            run = handle.result(timeout=RESULT_TIMEOUT)
            assert np.array_equal(run.c, operands["cake"])

    def test_spent_deadline_sheds_at_the_door(self, fleet, operands):
        with pytest.raises(AdmissionError) as excinfo:
            fleet.submit(operands["a"], operands["b"], deadline=-1.0)
        assert excinfo.value.reason == "deadline"


class TestFaultRecovery:
    def test_hang_is_detected_and_requests_survive(self, fleet, operands):
        before = fleet.stats()
        # Stall one worker's control loop far past the heartbeat
        # timeout: the supervisor must declare it hung, restart it, and
        # re-dispatch anything it held — no request may hang with it.
        fleet.hang_worker(0, 30.0)
        handles = [
            fleet.submit(
                operands["a"], operands["b"], deadline=RESULT_TIMEOUT
            )
            for _ in range(4)
        ]
        for handle in handles:
            run = handle.result(timeout=RESULT_TIMEOUT)
            assert np.array_equal(run.c, operands["cake"])
        assert _wait_until(
            lambda: fleet.stats().worker_hangs > before.worker_hangs
        )
        assert _wait_until(
            lambda: len(fleet.supervisor.ready_indices()) == 2, timeout=60.0
        ), "hung worker never came back"

    def test_kill_restarts_worker_and_service_continues(
        self, fleet, operands
    ):
        before = fleet.stats()
        fleet.kill_worker(0)
        assert _wait_until(
            lambda: fleet.stats().worker_crashes > before.worker_crashes
        ), "crash never detected"
        run = fleet.multiply(
            operands["a"], operands["b"], deadline=RESULT_TIMEOUT
        )
        assert np.array_equal(run.c, operands["cake"])
        assert _wait_until(
            lambda: len(fleet.supervisor.ready_indices()) == 2, timeout=60.0
        ), "killed worker never restarted"
        assert fleet.stats().worker_restarts > before.worker_restarts


class TestBoundedRestarts:
    def test_crash_mid_request_and_terminal_after_budget(
        self, machine, operands
    ):
        # One worker, one restart, no re-dispatch: the first kill with a
        # request in flight must resolve that handle with a structured
        # WorkerCrashError; the second kill exhausts the budget and the
        # slot goes TERMINAL; submits then fail fast with FleetError.
        fleet = FleetServer(
            machine,
            workers=1,
            capacity=8,
            worker_capacity=8,
            cores=1,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
            restart_policy=RestartPolicy(
                max_restarts=1,
                backoff=RetryPolicy(
                    retries=0, base_delay=0.05, max_delay=0.1
                ),
                reset_after=None,
            ),
            max_redispatch=0,
        )
        fleet.start()
        try:
            assert _wait_until(
                lambda: fleet.supervisor.ready_indices() == [0], timeout=60.0
            )
            # Stall the worker's control loop so the dispatched request
            # deterministically stays in flight, then kill the process
            # out from under it.
            fleet.hang_worker(0, 30.0)
            handle = fleet.submit(
                operands["a"], operands["b"], deadline=RESULT_TIMEOUT
            )
            assert _wait_until(lambda: fleet.stats().in_flight >= 1)
            fleet.kill_worker(0)
            with pytest.raises(WorkerCrashError) as excinfo:
                handle.result(timeout=RESULT_TIMEOUT)
            assert excinfo.value.worker == 0
            assert excinfo.value.request_id is not None
            assert fleet.stats().failed >= 1

            # Second kill: budget spent -> TERMINAL, structured refusal.
            assert _wait_until(
                lambda: fleet.supervisor.ready_indices() == [0], timeout=60.0
            ), "worker did not restart after first kill"
            fleet.kill_worker(0)
            assert _wait_until(
                lambda: fleet.supervisor.all_terminal(), timeout=30.0
            ), "slot never went terminal"
            with pytest.raises(FleetError) as excinfo:
                fleet.submit(operands["a"], operands["b"])
            assert excinfo.value.reason == "no-workers"
            assert fleet.stats().workers_terminal == 1
        finally:
            fleet.stop(drain=False)


class TestGracefulDrain:
    def test_submit_racing_shutdown_never_hangs(self, machine, operands):
        # The satellite regression: submits racing stop(drain=True) must
        # each end in a structured AdmissionError or a resolved handle —
        # never a hung ResponseHandle — and the shed_shutdown counter
        # must account for exactly the shutdown-shed outcomes.
        fleet = FleetServer(
            machine,
            workers=1,
            capacity=16,
            worker_capacity=16,
            cores=1,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
        )
        fleet.start()
        assert _wait_until(
            lambda: fleet.supervisor.ready_indices() == [0], timeout=60.0
        )
        outcomes = {
            "ok": 0,
            "shed_shutdown_raise": 0,
            "shed_other": 0,
            "resolved_shutdown": 0,
            "resolved_other": 0,
            "hung": 0,
        }
        lock = threading.Lock()
        stop_submitting = threading.Event()

        def submitter():
            while not stop_submitting.is_set():
                try:
                    handle = fleet.submit(
                        operands["a"], operands["b"], deadline=RESULT_TIMEOUT
                    )
                except AdmissionError as exc:
                    with lock:
                        if exc.reason == "shutdown":
                            outcomes["shed_shutdown_raise"] += 1
                            if outcomes["shed_shutdown_raise"] >= 3:
                                stop_submitting.set()
                        else:
                            outcomes["shed_other"] += 1
                    continue
                try:
                    run = handle.result(timeout=RESULT_TIMEOUT)
                    with lock:
                        outcomes["ok"] += 1
                except AdmissionError as exc:
                    with lock:
                        if exc.reason == "shutdown":
                            outcomes["resolved_shutdown"] += 1
                        else:
                            outcomes["resolved_other"] += 1
                except TimeoutError:
                    with lock:
                        outcomes["hung"] += 1
                    stop_submitting.set()
                except CakeError:
                    with lock:
                        outcomes["resolved_other"] += 1

        threads = [
            threading.Thread(target=submitter, name=f"drain-race-{i}")
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.5)  # let traffic build before pulling the plug
        fleet.stop(drain=True, timeout=10.0)
        stop_submitting.set()
        for thread in threads:
            thread.join(timeout=2 * RESULT_TIMEOUT)
        assert not any(t.is_alive() for t in threads), "submitter wedged"
        assert outcomes["hung"] == 0, f"hung handles: {outcomes}"
        total = sum(v for k, v in outcomes.items() if k != "hung")
        assert total > 0
        # Pin the counter path: shed_shutdown counts the submit-raised
        # sheds plus the handles resolved with AdmissionError("shutdown").
        expected = (
            outcomes["shed_shutdown_raise"] + outcomes["resolved_shutdown"]
        )
        assert fleet.stats().shed_shutdown == expected, outcomes


class TestFrontDoor:
    def test_remote_round_trip_is_bit_identical(self, fleet, operands):
        with FleetFrontDoor(fleet) as door:
            host, port = door.address
            with FleetClient(host, port) as client:
                out = client.multiply(operands["a"], operands["b"])
                assert np.array_equal(out.c, operands["cake"])
                assert out.report["status"] == "ok"

    def test_remote_errors_arrive_structured(self, fleet, operands):
        with FleetFrontDoor(fleet) as door:
            host, port = door.address
            with FleetClient(host, port) as client:
                with pytest.raises(ValueError, match="engine"):
                    client.multiply(
                        operands["a"], operands["b"], engine="nope"
                    )
                with pytest.raises(AdmissionError) as excinfo:
                    client.multiply(
                        operands["a"], operands["b"], deadline=-1.0
                    )
                assert excinfo.value.reason == "deadline"
                # The connection survives structured errors.
                out = client.multiply(operands["a"], operands["b"])
                assert np.array_equal(out.c, operands["cake"])

    def test_wrong_protocol_version_is_refused(self, fleet):
        import socket

        with FleetFrontDoor(fleet) as door:
            host, port = door.address
            with socket.create_connection((host, port), timeout=10) as sock:
                send_frame(sock, {"kind": "hello", "proto": "cake-serve/v0"})
                header, _ = recv_frame(sock)
                assert header["kind"] == "error"
                with pytest.raises(ProtocolError):
                    raise decode_error(header["error"])

    def test_hello_announces_protocol_and_fleet_size(self, fleet):
        import socket

        with FleetFrontDoor(fleet) as door:
            host, port = door.address
            with socket.create_connection((host, port), timeout=10) as sock:
                send_frame(sock, {"kind": "hello", "proto": PROTOCOL})
                header, _ = recv_frame(sock)
                assert header["proto"] == PROTOCOL
                assert header["workers"] == fleet.workers


class TestFleetSoakSmoke:
    def test_short_kill_injected_soak_is_clean(self):
        report = run_fleet_soak(
            seconds=4.0,
            clients=2,
            workers=2,
            n=96,
            kill_every=1.5,
            hang_every=3.0,
            hang_seconds=1.5,
        )
        assert report["silent_wrong"] == 0
        assert report["unstructured_failures"] == 0
        assert not report["deadlocked"]
        assert report["ok"] > 0
        assert report["kills_injected"] >= 1
