"""Admission control: every submit answered, spent deadlines never run.

The hypothesis properties here are satellite 3a of ISSUE 8: a request
whose deadline budget is non-positive at submit time is *always* shed
at the front door with ``reason="deadline"`` — no combination of queue
state, capacity, latency history, or executor count may admit it, and
the server-level test pins that such a request is never executed.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AdmissionError
from repro.serve.admission import (
    DEFAULT_SERVICE_ESTIMATE,
    admission_decision,
    retry_after_hint,
)
from repro.serve.server import MultiplyServer


class TestDecision:
    def test_admits_when_room_and_budget(self):
        assert (
            admission_decision(
                queue_depth=3, capacity=8, deadline_budget=1.0
            )
            is None
        )
        assert (
            admission_decision(
                queue_depth=0, capacity=1, deadline_budget=None
            )
            is None
        )

    def test_capacity_shed_carries_queue_state_and_hint(self):
        err = admission_decision(
            queue_depth=8,
            capacity=8,
            deadline_budget=None,
            executors=2,
            service_estimate=0.1,
        )
        assert isinstance(err, AdmissionError)
        assert err.reason == "capacity"
        assert (err.queue_depth, err.capacity) == (8, 8)
        assert err.retry_after == pytest.approx(4 * 0.1)

    def test_shutdown_outranks_everything(self):
        err = admission_decision(
            queue_depth=0,
            capacity=8,
            deadline_budget=-1.0,
            stopping=True,
        )
        assert err.reason == "shutdown"
        assert err.retry_after is None

    def test_retry_after_floors_to_one_wave(self):
        assert retry_after_hint(0, 4, None) == DEFAULT_SERVICE_ESTIMATE
        assert retry_after_hint(1, 8, 0.2) == pytest.approx(0.2)
        # Garbage estimates fall back to the default, never to zero.
        assert retry_after_hint(2, 1, -5.0) == pytest.approx(
            2 * DEFAULT_SERVICE_ESTIMATE
        )

    @given(
        queue_depth=st.integers(min_value=0, max_value=1_000),
        capacity=st.integers(min_value=1, max_value=1_000),
        budget=st.floats(
            max_value=0.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        executors=st.integers(min_value=1, max_value=64),
        estimate=st.one_of(
            st.none(),
            st.floats(
                min_value=-10.0,
                max_value=10.0,
                allow_nan=False,
            ),
        ),
    )
    def test_spent_budget_always_shed_as_deadline(
        self, queue_depth, capacity, budget, executors, estimate
    ):
        err = admission_decision(
            queue_depth=queue_depth,
            capacity=capacity,
            deadline_budget=budget,
            executors=executors,
            service_estimate=estimate,
        )
        assert isinstance(err, AdmissionError)
        assert err.reason == "deadline"
        assert err.retry_after is None  # retrying the same budget is futile

    @given(
        queue_depth=st.integers(min_value=0, max_value=1_000),
        capacity=st.integers(min_value=1, max_value=1_000),
        budget=st.one_of(
            st.none(),
            st.floats(
                min_value=1e-6,
                max_value=1e6,
                allow_nan=False,
            ),
        ),
    )
    def test_decision_is_total(self, queue_depth, capacity, budget):
        # Every input either admits or sheds with a known reason —
        # there is no third outcome and no exception.
        err = admission_decision(
            queue_depth=queue_depth,
            capacity=capacity,
            deadline_budget=budget,
        )
        if err is not None:
            assert err.reason in ("capacity", "deadline", "shutdown")
        if queue_depth < capacity:
            assert err is None  # positive budget + room always admits


class TestServerFrontDoor:
    def test_spent_deadline_never_executes(self, intel):
        a = np.ones((8, 8), dtype=np.float32)
        with MultiplyServer(intel, cores=1) as server:
            for budget in (0.0, -1.0, -1e-9):
                with pytest.raises(AdmissionError) as exc:
                    server.submit(a, a, deadline=budget)
                assert exc.value.reason == "deadline"
            stats = server.stats()
        assert stats.shed_deadline == 3
        assert stats.admitted == 0
        assert stats.executed == 0  # shed at the door, never run

    def test_capacity_shed_when_queue_is_full(self, intel):
        a = np.ones((8, 8), dtype=np.float32)
        server = MultiplyServer(intel, cores=1, capacity=2, executors=1)
        with server:
            # The condition guards the queue with an RLock, so holding
            # it from the test thread freezes the dispatcher while
            # reentrant submits fill the bounded queue deterministically.
            with server._cond:
                server.submit(a, a)
                server.submit(a, a)
                with pytest.raises(AdmissionError) as exc:
                    server.submit(a, a)
            assert exc.value.reason == "capacity"
            assert exc.value.queue_depth == 2
            assert exc.value.capacity == 2
            assert exc.value.retry_after is not None
        stats = server.stats()
        assert stats.shed_capacity == 1
        assert stats.completed == 2  # the admitted pair still finished

    def test_submit_after_stop_is_shutdown_shed(self, intel):
        a = np.ones((8, 8), dtype=np.float32)
        server = MultiplyServer(intel, cores=1)
        server.start()
        server.stop()
        with pytest.raises(AdmissionError) as exc:
            server.submit(a, a)
        assert exc.value.reason == "shutdown"

    def test_invalid_engine_is_a_value_error(self, intel):
        a = np.ones((4, 4), dtype=np.float32)
        with MultiplyServer(intel, cores=1) as server:
            with pytest.raises(ValueError, match="engine"):
                server.submit(a, a, engine="strassen")
