"""The multiply server's core contracts.

Every admitted request terminates exactly one way — a product
bit-identical to the direct engine call, or a structured error — and
the dispatcher's batching/retry/degradation machinery may change
latency but never bits.
"""

import tempfile

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    BackendCapabilityError,
    CakeError,
)
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.sharded import ShardConfig
from repro.gemm.verify import NumericFaultError, VerifyConfig
from repro.runtime.executor import RetryPolicy
from repro.runtime.faults import NumericFaultPlan, NumericFaultRule
from repro.serve.batching import Rung, degradation_rungs, oracle_rung
from repro.serve.request import MultiplyRequest, content_seed
from repro.serve.server import MultiplyServer


@pytest.fixture
def operands(rng):
    a = rng.standard_normal((48, 256)).astype(np.float32)
    b = rng.standard_normal((256, 96)).astype(np.float32)
    return a, b


class TestBitIdentity:
    def test_served_equals_direct_for_every_profile(
        self, intel, operands
    ):
        a, b = operands
        references = {
            "cake": CakeGemm(intel, cores=1).multiply(a, b).c,
            "goto": GotoGemm(intel, cores=1).multiply(a, b).c,
        }
        profiles = [
            dict(engine="cake"),
            dict(engine="goto"),
            dict(engine="cake", workers=2),
            dict(engine="cake", verify=True),
            dict(engine="cake", backend="blas-group"),
        ]
        with MultiplyServer(intel, cores=1) as server:
            for profile in profiles:
                run = server.multiply(a, b, **profile)
                reference = references[profile.get("engine", "cake")]
                assert np.array_equal(run.c, reference), profile

    def test_multiply_is_submit_plus_result(self, intel, operands):
        a, b = operands
        with MultiplyServer(intel, cores=1) as server:
            handle = server.submit(a, b)
            run = handle.result(timeout=60.0)
            assert handle.done()
            assert handle.report.status == "ok"
            assert handle.report.attempts == 1
            assert np.array_equal(
                run.c, CakeGemm(intel, cores=1).multiply(a, b).c
            )


class TestCoalescing:
    def test_same_class_requests_share_one_batch(self, intel, operands):
        a, b = operands
        with MultiplyServer(
            intel, cores=1, executors=1, max_batch=8
        ) as server:
            # Freeze the dispatcher (the condition is an RLock) so all
            # four same-class requests are queued before it wakes: they
            # must leave in one coalesced scoop.
            with server._cond:
                handles = [server.submit(a, b) for _ in range(4)]
            runs = [h.result(timeout=60.0) for h in handles]
        reference = CakeGemm(intel, cores=1).multiply(a, b).c
        for run in runs:
            assert np.array_equal(run.c, reference)
        stats = server.stats()
        assert stats.batches == 1
        assert stats.coalesced == 3
        assert all(h.report.batch_size == 4 for h in handles)

    def test_coalesced_requests_reuse_pooled_buffers(
        self, intel, operands
    ):
        a, b = operands
        with MultiplyServer(intel, cores=1, executors=1) as server:
            with server._cond:
                handles = [server.submit(a, b) for _ in range(3)]
            for handle in handles:
                handle.result(timeout=60.0)
            pool = server.pool.stats()
        # First request allocates, the rest lease the released buffers.
        assert pool["hits"] > 0
        assert pool["misses"] <= pool["hits"]

    def test_verified_requests_run_solo(self, intel, operands):
        a, b = operands
        with MultiplyServer(intel, cores=1, executors=1) as server:
            with server._cond:
                handles = [
                    server.submit(a, b, verify=True) for _ in range(3)
                ]
            for handle in handles:
                handle.result(timeout=60.0)
        stats = server.stats()
        assert stats.batches == 3
        assert stats.coalesced == 0

    def test_priority_orders_the_queue(self, intel, operands):
        a, b = operands
        server = MultiplyServer(intel, cores=1, executors=1)
        with server:
            with server._cond:
                low = server.submit(a, b, priority=0, verify=True)
                high = server.submit(a, b, priority=5, verify=True)
                mid = server.submit(a, b, priority=1, verify=True)
                batch = server._take_batch_locked()
                assert batch[0].handle is high
                batch2 = server._take_batch_locked()
                assert batch2[0].handle is mid
                # Put them back so the dispatcher resolves everything.
                server._queue.extend(batch + batch2)
                server._cond.notify_all()
            for handle in (low, mid, high):
                handle.result(timeout=60.0)


class TestRetries:
    def test_transient_fault_heals_on_server_retry(self, intel, operands):
        a, b = operands
        # Fail-once budget on disk: detection without in-engine recovery,
        # so only the *server's* retry can produce the clean pass.
        verify = VerifyConfig(
            max_retries=0,
            oracle_fallback=False,
            inject=NumericFaultPlan(
                rules=(
                    NumericFaultRule(
                        block=0, strip=0, kind="scale", factor=3.0
                    ),
                ),
                state_dir=tempfile.mkdtemp(prefix="serve-retry-"),
            ),
        )
        with MultiplyServer(intel, cores=1) as server:
            handle = server.submit(a, b, verify=verify)
            run = handle.result(timeout=60.0)
        assert np.array_equal(
            run.c, CakeGemm(intel, cores=1).multiply(a, b).c
        )
        assert handle.report.retries == 1
        assert handle.report.attempts == 2
        assert server.stats().retries == 1

    def test_exhausted_retries_fail_structured(self, intel, operands):
        a, b = operands
        # No state_dir: the in-process rule re-fires on every attempt,
        # so retries exhaust and the request must fail structured.
        verify = VerifyConfig(
            max_retries=0,
            oracle_fallback=False,
            inject=NumericFaultPlan(
                rules=(
                    NumericFaultRule(
                        block=0,
                        strip=0,
                        kind="scale",
                        factor=3.0,
                        times=1_000_000,
                    ),
                ),
            ),
        )
        with MultiplyServer(
            intel,
            cores=1,
            retry_policy=RetryPolicy(
                retries=1, base_delay=0.001, max_delay=0.002
            ),
        ) as server:
            handle = server.submit(a, b, verify=verify)
            with pytest.raises(NumericFaultError):
                handle.result(timeout=60.0)
        assert handle.report.status == "failed"
        assert handle.report.error == "NumericFaultError"
        assert server.stats().failed == 1

    def test_retry_schedule_is_content_seeded(self, operands):
        a, b = operands
        policy = RetryPolicy(retries=3, base_delay=0.05, max_delay=1.0)
        seed = MultiplyRequest(a=a, b=b).seed()
        assert seed == content_seed(a, b)  # stable, derived from content
        replay = [policy.delay(seed, k) for k in (1, 2, 3)]
        assert replay == [policy.delay(seed, k) for k in (1, 2, 3)]
        other = content_seed(b.T.copy(), a.T.copy())
        assert other != seed  # different content, decorrelated backoff


class TestDegradation:
    def test_ladder_shape(self):
        a = np.zeros((4, 4), dtype=np.float32)
        request = MultiplyRequest(
            a=a,
            b=a,
            workers=4,
            backend="blas-group",
            processes=ShardConfig(processes=2),
        )
        rungs = degradation_rungs(request)
        assert [
            (1 if isinstance(r.processes, int) or r.processes is None
             else r.processes.processes,
             r.workers, r.backend)
            for r in rungs
        ] == [
            (2, 4, "blas-group"),  # as requested
            (1, 4, "blas-group"),  # drop sharding
            (1, None, "blas-group"),  # drop threading
            (1, None, "numpy"),  # drop the fast backend
        ]
        assert rungs[-1] == oracle_rung()

    def test_bottom_rung_request_gets_one_rung(self):
        a = np.zeros((4, 4), dtype=np.float32)
        request = MultiplyRequest(a=a, b=a)
        assert degradation_rungs(request) == [Rung(None, None, None)]

    def test_capability_error_degrades_to_oracle(self, intel, operands):
        a, b = operands
        reference = CakeGemm(intel, cores=1).multiply(a, b).c

        class Refusing:
            def multiply(self, a, b):
                raise BackendCapabilityError(
                    "blas-group", "refuses for this test",
                    np.dtype(np.float32),
                )

        with MultiplyServer(intel, cores=1) as server:
            inner = server.engines

            class FlakyEngines:
                def engine_for(self, request, shape_class, rung,
                               deadline_at=None, override=None):
                    if rung.backend != "numpy":
                        return Refusing()
                    return inner.engine_for(
                        request, shape_class, rung, deadline_at,
                        override=override,
                    )

            server.engines = FlakyEngines()
            handle = server.submit(a, b, backend="blas-group")
            run = handle.result(timeout=60.0)
        assert np.array_equal(run.c, reference)  # degradation kept bits
        assert handle.report.status == "ok"
        assert len(handle.report.degradations) == 1
        step = handle.report.degradations[0]
        assert step["reason"] == "BackendCapabilityError"
        assert "numpy" in step["to"]
        assert server.stats().degradations == 1

    def test_persistent_transient_fault_walks_the_ladder(
        self, intel, operands
    ):
        a, b = operands
        reference = CakeGemm(intel, cores=1).multiply(a, b).c

        class Failing:
            def multiply(self, a, b):
                raise NumericFaultError(
                    "CB(0, 0, 0)", (0, 0, 0), _identity_failure()
                )

        def _identity_failure():
            from repro.gemm.verify import IdentityFailure

            return IdentityFailure(
                identity="column", strip=None,
                residual=1.0, tolerance=1e-9,
            )

        with MultiplyServer(
            intel,
            cores=1,
            retry_policy=RetryPolicy(
                retries=1, base_delay=0.001, max_delay=0.002
            ),
        ) as server:
            inner = server.engines

            class FlakyEngines:
                def engine_for(self, request, shape_class, rung,
                               deadline_at=None, override=None):
                    if rung.workers is not None:
                        return Failing()  # the threaded rung never works
                    return inner.engine_for(
                        request, shape_class, rung, deadline_at,
                        override=override,
                    )

            server.engines = FlakyEngines()
            handle = server.submit(a, b, workers=2)
            run = handle.result(timeout=60.0)
        assert np.array_equal(run.c, reference)
        assert handle.report.retries == 1  # exhausted on the first rung
        assert len(handle.report.degradations) == 1
        assert handle.report.degradations[0]["reason"] == (
            "NumericFaultError"
        )


class TestLifecycle:
    def test_stop_without_drain_sheds_queued_structured(
        self, intel, operands
    ):
        a, b = operands
        server = MultiplyServer(intel, cores=1, executors=1)
        server.start()
        with server._cond:
            handles = [
                server.submit(a, b, verify=True) for _ in range(3)
            ]
        server.stop(drain=False)
        resolved = {"ok": 0, "shed": 0}
        for handle in handles:
            try:
                handle.result(timeout=5.0)
                resolved["ok"] += 1
            except AdmissionError as err:
                assert err.reason == "shutdown"
                resolved["shed"] += 1
        # Every handle terminated — some may have slipped into execution
        # before stop, but none is stranded and none failed unstructured.
        assert resolved["ok"] + resolved["shed"] == 3
        assert server.stats().shed_shutdown == resolved["shed"]

    def test_stop_with_drain_finishes_queued_work(self, intel, operands):
        a, b = operands
        reference = CakeGemm(intel, cores=1).multiply(a, b).c
        server = MultiplyServer(intel, cores=1, executors=1)
        server.start()
        with server._cond:
            handles = [server.submit(a, b) for _ in range(3)]
        server.stop(drain=True)
        for handle in handles:
            assert np.array_equal(
                handle.result(timeout=5.0).c, reference
            )

    def test_start_is_idempotent_and_restartable(self, intel, operands):
        a, b = operands
        server = MultiplyServer(intel, cores=1)
        assert server.start() is server.start()
        server.multiply(a, b)
        server.stop()
        server.start()  # a stopped server can serve again
        run = server.multiply(a, b)
        server.stop()
        assert np.array_equal(
            run.c, CakeGemm(intel, cores=1).multiply(a, b).c
        )

    def test_constructor_validates_bounds(self, intel):
        with pytest.raises(ValueError):
            MultiplyServer(intel, capacity=0)
        with pytest.raises(ValueError):
            MultiplyServer(intel, executors=0)
        with pytest.raises(ValueError):
            MultiplyServer(intel, max_batch=0)


class TestHandleContract:
    def test_first_resolution_wins(self, intel, operands):
        a, b = operands
        with MultiplyServer(intel, cores=1) as server:
            handle = server.submit(a, b)
            run = handle.result(timeout=60.0)
            # A later resolution attempt must be a no-op.
            assert not handle.resolve(error=CakeError("too late"))
            assert handle.error is None
            assert handle.result() is run

    def test_result_timeout_does_not_resolve(self, intel, operands):
        a, b = operands
        server = MultiplyServer(intel, cores=1, executors=1)
        with server:
            with server._cond:
                handle = server.submit(a, b)
                # Dispatcher frozen: the call times out, the request
                # stays pending and completes after release.
                with pytest.raises(TimeoutError):
                    handle.result(timeout=0.05)
                assert not handle.done()
            run = handle.result(timeout=60.0)
        assert handle.report.status == "ok"
        assert run.c is not None

    def test_stats_snapshot_is_coherent(self, intel, operands):
        a, b = operands
        with MultiplyServer(intel, cores=1) as server:
            for _ in range(3):
                server.multiply(a, b)
            stats = server.stats()
        d = stats.as_dict()
        assert d["submitted"] == d["admitted"] == 3
        assert d["completed"] == 3
        assert d["failed"] == 0
        assert d["p50_seconds"] > 0.0
        assert d["p99_seconds"] >= d["p50_seconds"]
        assert d["pool"]["leases"] == (
            d["pool"]["hits"] + d["pool"]["misses"]
        )
