"""Tests for the ``cake-serve/v1`` frame protocol.

The wire format is the trust boundary of the fleet: a malformed peer
must produce a structured :class:`~repro.errors.ProtocolError`, never a
hang or a silently-truncated array, and structured serve errors must
arrive client-side as the *same* exception types with their payloads
intact. Everything here runs over a local socketpair — no fleet, no
processes — so it pins the codec alone.
"""

import socket
import struct

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    BackendCapabilityError,
    CakeError,
    DeadlineExceededError,
    FleetError,
    ProtocolError,
    WorkerCrashError,
)
from repro.serve.protocol import (
    MAGIC,
    MAX_HEADER_BYTES,
    decode_arrays,
    decode_error,
    encode_arrays,
    encode_error,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFrames:
    def test_round_trip_header_and_blob(self, pair):
        left, right = pair
        send_frame(left, {"kind": "exec", "id": 7}, b"payload-bytes")
        header, blob = recv_frame(right)
        assert header == {"kind": "exec", "id": 7}
        assert blob == b"payload-bytes"

    def test_empty_blob(self, pair):
        left, right = pair
        send_frame(left, {"kind": "hello"})
        header, blob = recv_frame(right)
        assert header["kind"] == "hello"
        assert blob == b""

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_bad_magic_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sII", b"XXXX", 2, 0) + b"{}")
        with pytest.raises(ProtocolError, match="magic"):
            recv_frame(right)

    def test_truncated_frame_raises(self, pair):
        left, right = pair
        # Announce a 64-byte header but send only 3 bytes before EOF.
        left.sendall(struct.pack("!4sII", MAGIC, 64, 0) + b"{..")
        left.close()
        with pytest.raises(ProtocolError, match="truncated"):
            recv_frame(right)

    def test_oversized_header_rejected_without_reading_it(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sII", MAGIC, MAX_HEADER_BYTES + 1, 0))
        with pytest.raises(ProtocolError, match="over limit"):
            recv_frame(right)

    def test_unparsable_header_raises(self, pair):
        left, right = pair
        left.sendall(struct.pack("!4sII", MAGIC, 3, 0) + b"{{{")
        with pytest.raises(ProtocolError, match="unparsable"):
            recv_frame(right)

    def test_sequential_frames(self, pair):
        left, right = pair
        for i in range(3):
            send_frame(left, {"i": i}, bytes([i]) * i)
        for i in range(3):
            header, blob = recv_frame(right)
            assert header["i"] == i
            assert blob == bytes([i]) * i


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_round_trip_preserves_bits(self, rng, dtype):
        a = rng.standard_normal((5, 9)).astype(dtype)
        b = rng.standard_normal((9, 3)).astype(dtype)
        manifest, blob = encode_arrays([a, b])
        out_a, out_b = decode_arrays(manifest, blob)
        assert np.array_equal(out_a, a) and out_a.dtype == a.dtype
        assert np.array_equal(out_b, b) and out_b.dtype == b.dtype

    def test_fortran_order_input_arrives_equal(self, rng):
        a = np.asfortranarray(rng.standard_normal((4, 6)).astype(np.float32))
        (out,) = decode_arrays(*encode_arrays([a]))
        assert np.array_equal(out, a)

    def test_decoded_arrays_are_writable(self, rng):
        a = rng.standard_normal((3, 3)).astype(np.float32)
        (out,) = decode_arrays(*encode_arrays([a]))
        out[0, 0] = 42.0  # would raise on a read-only frombuffer view

    def test_blob_overrun_is_structured(self):
        manifest = [{"dtype": "float32", "shape": [4, 4]}]
        with pytest.raises(ProtocolError, match="overruns"):
            decode_arrays(manifest, b"\x00" * 8)

    def test_trailing_bytes_are_structured(self, rng):
        a = rng.standard_normal((2, 2)).astype(np.float32)
        manifest, blob = encode_arrays([a])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_arrays(manifest, blob + b"\x00")


class TestErrorCodec:
    @pytest.mark.parametrize(
        "exc",
        [
            AdmissionError(
                "capacity", "queue is full", queue_depth=8, capacity=8,
                retry_after=0.25,
            ),
            AdmissionError("shutdown", "server is stopping", 0, 4, None),
            DeadlineExceededError("queue", budget=0.5, elapsed=0.7),
            FleetError("no-workers", "all slots terminal", workers=3),
            WorkerCrashError(
                worker=1, pid=777, exitcode=-9, restarts=2,
                request_id="4:cafef00d",
            ),
            ProtocolError("bad frame magic"),
            BackendCapabilityError(
                "torch", "needs float32", np.dtype(np.float16)
            ),
            ValueError("engine must be one of ('cake', 'goto')"),
            TypeError("operands must be 2-D"),
        ],
        ids=lambda exc: type(exc).__name__,
    )
    def test_structured_errors_survive_the_wire(self, exc):
        clone = decode_error(encode_error(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        for name, value in vars(exc).items():
            assert getattr(clone, name) == value, name

    def test_unknown_type_degrades_to_cake_error(self):
        payload = encode_error(RuntimeError("something odd"))
        clone = decode_error(payload)
        assert isinstance(clone, CakeError)
        assert "RuntimeError" in str(clone)
        assert "something odd" in str(clone)
