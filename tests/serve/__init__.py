"""Tests for the GEMM-as-a-service layer (repro.serve)."""
