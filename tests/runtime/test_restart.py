"""Tests for the shared capped-backoff restart ladder.

Both the experiment runtime's pool rebuilds and the fleet supervisor's
worker restarts walk a :class:`~repro.runtime.restart.RestartTracker`;
these tests pin the ladder's arithmetic on its own: the cap, the
deterministic backoff schedule, the zero-delay fast path, and the
health reset that keeps long-lived workers off the terminal track.
"""

import pytest

from repro.runtime.executor import RetryPolicy
from repro.runtime.restart import RestartPolicy, RestartTracker


class TestRestartPolicy:
    def test_defaults_are_sane(self):
        policy = RestartPolicy()
        assert policy.max_restarts == 5
        assert policy.backoff.base_delay > 0
        assert policy.reset_after == 30.0

    @pytest.mark.parametrize("bad", [-1, -5])
    def test_negative_max_restarts_rejected(self, bad):
        with pytest.raises(ValueError, match="max_restarts"):
            RestartPolicy(max_restarts=bad)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_reset_after_rejected(self, bad):
        with pytest.raises(ValueError, match="reset_after"):
            RestartPolicy(reset_after=bad)

    def test_none_reset_after_allowed(self):
        assert RestartPolicy(reset_after=None).reset_after is None


class TestRestartTracker:
    def _policy(self, max_restarts, base_delay=0.1):
        return RestartPolicy(
            max_restarts=max_restarts,
            backoff=RetryPolicy(
                retries=0, base_delay=base_delay, max_delay=5.0
            ),
            reset_after=None,
        )

    def test_cap_then_terminal(self):
        tracker = RestartTracker(self._policy(2))
        assert tracker.next_delay() is not None
        assert tracker.next_delay() is not None
        assert tracker.exhausted
        assert tracker.next_delay() is None  # terminal, forever
        assert tracker.next_delay() is None
        assert tracker.total_restarts == 2

    def test_zero_budget_is_immediately_terminal(self):
        tracker = RestartTracker(self._policy(0))
        assert tracker.exhausted
        assert tracker.next_delay() is None
        assert tracker.total_restarts == 0

    def test_zero_base_delay_restarts_immediately(self):
        # The experiment runtime's pool-rebuild ladder: no backoff,
        # just a capped count.
        tracker = RestartTracker(self._policy(3, base_delay=0.0))
        assert tracker.next_delay() == 0.0

    def test_backoff_schedule_is_deterministic_per_seed(self):
        first = RestartTracker(self._policy(4), seed=7)
        second = RestartTracker(self._policy(4), seed=7)
        schedule = [first.next_delay() for _ in range(4)]
        assert schedule == [second.next_delay() for _ in range(4)]
        # Sibling slots decorrelate through their seeds.
        other = RestartTracker(self._policy(4), seed=8)
        assert schedule != [other.next_delay() for _ in range(4)]

    def test_health_reset_refreshes_budget(self):
        policy = RestartPolicy(
            max_restarts=1,
            backoff=RetryPolicy(retries=0, base_delay=0.0, max_delay=0.0),
            reset_after=10.0,
        )
        tracker = RestartTracker(policy)
        assert tracker.next_delay() is not None
        assert tracker.exhausted
        # A long healthy stretch before the next failure forgives the
        # old incident; a short one does not.
        tracker.note_healthy_seconds(10.0)
        assert not tracker.exhausted
        assert tracker.next_delay() is not None
        tracker.note_healthy_seconds(9.9)
        assert tracker.exhausted
        assert tracker.next_delay() is None
        # The lifetime total keeps counting through resets.
        assert tracker.total_restarts == 2
