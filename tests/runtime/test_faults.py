"""Fault injector: rule matching, firing budgets, plan parsing, safety."""

import json

import pytest

from repro.errors import CakeError
from repro.runtime import FaultInjector, FaultPlan, FaultRule, InjectedFault
from repro.runtime.faults import in_worker_process


class TestFaultRule:
    def test_prefix_and_wildcard_matching(self):
        rule = FaultRule(match="abc")
        assert rule.matches("abc123")
        assert not rule.matches("xyz")
        assert FaultRule(match="*").matches("anything")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(match="*", kind="explode")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule(match="*", times=0)

    def test_injected_fault_is_a_cake_error(self):
        assert issubclass(InjectedFault, CakeError)


class TestFiringBudget:
    def test_rule_fires_exactly_times_then_passes(self):
        plan = FaultPlan(rules=(FaultRule(match="*", times=2),))
        injector = FaultInjector(plan)
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                injector.before_attempt("task-a", attempt)
        injector.before_attempt("task-a", 3)  # exhausted: no raise

    def test_budgets_are_per_task(self):
        plan = FaultPlan(rules=(FaultRule(match="*", times=1),))
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFault):
            injector.before_attempt("task-a", 1)
        with pytest.raises(InjectedFault):
            injector.before_attempt("task-b", 1)
        injector.before_attempt("task-a", 2)
        injector.before_attempt("task-b", 2)

    def test_state_dir_persists_across_injector_instances(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule(match="*", times=1),), state_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            FaultInjector(plan).before_attempt("task-a", 1)
        # A fresh injector (think: rebuilt worker process) sees the
        # firing count on disk and does not re-fire.
        FaultInjector(plan).before_attempt("task-a", 1)

    def test_nonmatching_rules_never_fire(self):
        plan = FaultPlan(rules=(FaultRule(match="zzz"),))
        FaultInjector(plan).before_attempt("task-a", 1)  # no raise


class TestInlineSafety:
    """kill/hang only physically fire in pool workers; inline they raise."""

    def test_not_in_worker_process_here(self):
        assert not in_worker_process()

    @pytest.mark.parametrize("kind", ["kill", "hang"])
    def test_kill_and_hang_downgrade_to_raise_inline(self, kind):
        plan = FaultPlan(rules=(FaultRule(match="*", kind=kind, hang_seconds=9999.0),))
        with pytest.raises(InjectedFault, match=kind):
            FaultInjector(plan).before_attempt("task-a", 1)


class TestPlanParsing:
    def test_from_json_object(self):
        plan = FaultPlan.from_json(
            {"state_dir": "/tmp/x", "rules": [{"match": "*", "kind": "raise", "times": 3}]}
        )
        assert plan.state_dir == "/tmp/x"
        assert plan.rules == (FaultRule(match="*", kind="raise", times=3),)

    def test_from_json_bare_list(self):
        plan = FaultPlan.from_json([{"match": "ab"}])
        assert plan.state_dir is None
        assert plan.rules[0].match == "ab"

    def test_from_spec_inline_and_file(self, tmp_path):
        doc = {"rules": [{"match": "*", "times": 2}]}
        inline = FaultPlan.from_spec(json.dumps(doc))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        from_file = FaultPlan.from_spec(f"@{path}")
        assert inline == from_file

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("CAKE_FAULT_PLAN", '{"rules": [{"match": "*"}]}')
        plan = FaultPlan.from_env()
        assert plan is not None and plan.rules[0].match == "*"
        monkeypatch.delenv("CAKE_FAULT_PLAN")
        assert FaultPlan.from_env() is None

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="no rules"):
            FaultPlan.from_json({"rules": []})

    def test_non_object_plan_rejected(self):
        with pytest.raises(ValueError, match="fault plan"):
            FaultPlan.from_json("nope")

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan(rules=(FaultRule(match="*", kind="kill"),), state_dir="/tmp/s")
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestNumericKillRule:
    """The 'kill' numeric kind: shard-worker crashes, inert elsewhere."""

    def _injector(self, state_dir=None, **rule_kw):
        import numpy as np

        from repro.runtime.faults import (
            NumericFaultInjector,
            NumericFaultPlan,
            NumericFaultRule,
        )

        plan = NumericFaultPlan(
            rules=(NumericFaultRule(kind="kill", **rule_kw),),
            state_dir=state_dir,
        )
        return NumericFaultInjector(plan), np.ones((4, 4))

    def test_kill_is_a_valid_numeric_kind(self):
        from repro.runtime.faults import NumericFaultRule

        NumericFaultRule(kind="kill")  # no raise
        with pytest.raises(ValueError, match="unknown numeric fault kind"):
            NumericFaultRule(kind="explode")

    def test_inert_and_budget_free_outside_workers(self, tmp_path):
        # Inline (orchestrator / inline-fallback) execution: a kill rule
        # neither fires nor consumes its budget — the count files a
        # shared state_dir would propagate to real workers stay absent.
        assert not in_worker_process()
        injector, panel = self._injector(state_dir=str(tmp_path), times=1)
        for _ in range(3):
            assert injector.corrupt(0, 0, panel) is False
        assert injector.fired == 0
        assert (panel == 1.0).all()
        assert not list(tmp_path.glob("numeric.*"))

    def test_numeric_state_dir_persists_across_instances(self, tmp_path):
        import numpy as np

        from repro.runtime.faults import (
            NumericFaultInjector,
            NumericFaultPlan,
            NumericFaultRule,
        )

        plan = NumericFaultPlan(
            rules=(NumericFaultRule(kind="scale", factor=2.0, times=1),),
            state_dir=str(tmp_path),
        )
        panel = np.ones((2, 2))
        assert NumericFaultInjector(plan).corrupt(0, 0, panel) is True
        assert (panel == 2.0).all()
        # A fresh injector (think: rebuilt shard worker) sees the spent
        # budget on disk and does not re-corrupt.
        assert NumericFaultInjector(plan).corrupt(0, 0, panel) is False
        assert (panel == 2.0).all()

    def test_numeric_plan_json_carries_state_dir(self):
        from repro.runtime.faults import NumericFaultPlan

        plan = NumericFaultPlan.from_json(
            {
                "state_dir": "/tmp/nf",
                "rules": [{"block": 0, "strip": "*", "kind": "kill"}],
            }
        )
        assert plan.state_dir == "/tmp/nf"
        assert plan.rules[0].kind == "kill"

    def test_numeric_plan_is_picklable(self):
        import pickle

        from repro.runtime.faults import NumericFaultPlan, NumericFaultRule

        plan = NumericFaultPlan(
            rules=(NumericFaultRule(kind="kill"),), state_dir="/tmp/nf"
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
