"""Runtime-vs-direct equivalence for every rewired analysis function.

The runtime is an execution strategy, not a model change: fanning a
figure's grid over the task runner (serial or parallel, cold or warm
cache) must reproduce the direct in-process computation exactly.
"""

import numpy as np
import pytest

from repro.analysis.scaling import scaling_series
from repro.analysis.speedup import speedup_series
from repro.analysis.sweep import relative_throughput_grid
from repro.machines import arm_cortex_a53, intel_i9_10900k
from repro.runtime import ExperimentRuntime

SIZES = (500, 1000, 1500)


class TestSweepEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_relative_throughput_grid(self, workers):
        direct = relative_throughput_grid(
            intel_i9_10900k(), aspect=1.0, m_values=SIZES, k_values=SIZES
        )
        routed = relative_throughput_grid(
            intel_i9_10900k(),
            aspect=1.0,
            m_values=SIZES,
            k_values=SIZES,
            runtime=ExperimentRuntime(workers=workers),
        )
        assert np.array_equal(direct.ratio, routed.ratio)
        assert direct.m_values == routed.m_values
        assert direct.k_values == routed.k_values


class TestSpeedupEquivalence:
    @pytest.mark.parametrize("engine", ["cake", "goto"])
    def test_speedup_series(self, engine):
        direct = speedup_series(intel_i9_10900k(), 2000, engine=engine)
        routed = speedup_series(
            intel_i9_10900k(),
            2000,
            engine=engine,
            runtime=ExperimentRuntime(workers=2),
        )
        assert routed == direct

    def test_bad_engine_rejected_before_fanout(self):
        with pytest.raises(ValueError):
            speedup_series(
                intel_i9_10900k(),
                2000,
                engine="blis",
                runtime=ExperimentRuntime(),
            )


class TestScalingEquivalence:
    @pytest.mark.parametrize(
        "machine", [intel_i9_10900k, arm_cortex_a53], ids=lambda f: f.__name__
    )
    def test_scaling_series_with_extrapolation(self, machine):
        spec = machine()
        direct = scaling_series(spec, 2000, extrapolate_to=spec.cores + 2)
        routed = scaling_series(
            spec,
            2000,
            extrapolate_to=spec.cores + 2,
            runtime=ExperimentRuntime(workers=2),
        )
        assert routed == direct


class TestWarmCacheEquivalence:
    def test_cached_rerun_reproduces_grid(self, tmp_path):
        runtime = ExperimentRuntime(cache_dir=tmp_path)
        cold = relative_throughput_grid(
            intel_i9_10900k(),
            aspect=1.0,
            m_values=SIZES,
            k_values=SIZES,
            runtime=runtime,
        )
        warm = relative_throughput_grid(
            intel_i9_10900k(),
            aspect=1.0,
            m_values=SIZES,
            k_values=SIZES,
            runtime=runtime,
        )
        assert np.array_equal(cold.ratio, warm.ratio)
        assert runtime.last_stats.executed == 0
        assert runtime.last_stats.cache_hits == runtime.last_stats.tasks
