"""On-disk result cache: round-trips, quarantine, schema versioning."""

import json

from repro.runtime import CACHE_SCHEMA, ResultCache


class TestResultCache:
    def test_store_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        row = {"task_id": "abc123", "gflops": 512.5, "serves": {"L1": 7}}
        cache.store("abc123", row)
        assert cache.load("abc123") == row
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("nonexistent") is None
        assert cache.stats.misses == 1

    def test_corrupt_file_is_quarantined_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("bad000", {"x": 1})
        path = next(tmp_path.glob("*.json"))
        path.write_text("{truncated")
        assert cache.load("bad000") is None
        assert cache.stats.corrupt == 1
        assert not path.exists(), "corrupt entry should vacate the slot"
        # The evidence survives for postmortems...
        quarantined = tmp_path / "bad000.corrupt"
        assert quarantined.read_text() == "{truncated"
        # ...and the slot is reusable afterwards.
        cache.store("bad000", {"x": 2})
        assert cache.load("bad000") == {"x": 2}

    def test_unversioned_legacy_entry_is_a_stale_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        # A pre-versioning cache stored the bare row as the document.
        (tmp_path / "old123.json").write_text(json.dumps({"gflops": 9.0}))
        assert cache.load("old123") is None
        assert cache.stats.stale == 1
        assert cache.stats.corrupt == 0
        # The fresh store upgrades the slot in place.
        cache.store("old123", {"gflops": 9.0})
        assert cache.load("old123") == {"gflops": 9.0}

    def test_unknown_schema_version_is_a_stale_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "fut456.json").write_text(
            json.dumps({"schema": "cake-cache/v999", "row": {"x": 1}})
        )
        assert cache.load("fut456") is None
        assert cache.stats.stale == 1

    def test_store_overwrites_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("key", {"v": 1})
        cache.store("key", {"v": 2})
        assert cache.load("key") == {"v": 2}
        assert len(cache) == 1
        # No stray temp files left behind.
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".json")]
        assert leftovers == []

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.store(f"id{i}", {"i": i})
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0
        assert cache.load("id0") is None

    def test_entries_are_versioned_json_envelopes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("readable", {"gflops": 1.5})
        path = next(tmp_path.glob("*.json"))
        assert json.loads(path.read_text()) == {
            "schema": CACHE_SCHEMA,
            "row": {"gflops": 1.5},
        }

    def test_creates_root_directory(self, tmp_path):
        root = tmp_path / "deep" / "cache"
        cache = ResultCache(root)
        cache.store("k", {"v": 0})
        assert root.is_dir()
        assert cache.load("k") == {"v": 0}
