"""Fault-tolerance integration: every recovery path, driven by injection.

Each test scripts a failure (raise / worker kill / hang) through
:mod:`repro.runtime.faults` and asserts the runtime recovers to the
exact rows a fault-free serial run produces — fault tolerance is an
execution detail, never a result change.
"""

import pytest

from repro.runtime import (
    ExperimentRuntime,
    ExperimentTask,
    FaultPlan,
    FaultRule,
    IncompleteRunError,
    RetryPolicy,
    RunReport,
    TaskExecutionError,
    ensure_rows,
)

#: Fast backoff so retry-heavy tests stay quick; the schedule is still
#: the deterministic policy, just scaled down.
FAST_RETRY = RetryPolicy(retries=2, base_delay=0.001, max_delay=0.01)


def _grid(count: int = 3) -> list[ExperimentTask]:
    return [
        ExperimentTask(
            kind="predict",
            engine=engine,
            machine="Intel i9-10900K",
            m=256 + 128 * i,
            n=512,
            k=256,
        )
        for i in range(count)
        for engine in ("cake", "goto")
    ]


@pytest.fixture(scope="module")
def reference_rows():
    """Fault-free serial rows: the byte-identity baseline."""
    return ExperimentRuntime().run(_grid())


class TestRetryDeterminism:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_failures_retry_to_identical_rows(
        self, workers, reference_rows, tmp_path
    ):
        tasks = _grid()
        plan = FaultPlan(
            rules=(FaultRule(match="*", kind="raise", times=1),),
            state_dir=str(tmp_path),
        )
        runtime = ExperimentRuntime(
            workers=workers, retry_policy=FAST_RETRY, faults=plan
        )
        rows = runtime.run(tasks)
        assert rows == reference_rows
        assert runtime.last_stats.retries == len(tasks)
        assert runtime.last_stats.failures == 0

    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(retries=3, base_delay=0.05, max_delay=2.0)
        d1 = policy.delay(seed=12345, attempt=1)
        assert d1 == policy.delay(seed=12345, attempt=1)
        assert d1 != policy.delay(seed=12345, attempt=2)
        assert d1 != policy.delay(seed=54321, attempt=1)
        for attempt in range(1, 50):
            assert 0.0 <= policy.delay(seed=7, attempt=attempt) <= 2.0 * 1.5


class TestPermanentFailure:
    def test_collect_returns_report_with_traceback(self, reference_rows):
        tasks = _grid()
        bad = tasks[2].task_id
        plan = FaultPlan(rules=(FaultRule(match=bad, times=999),))
        runtime = ExperimentRuntime(
            workers=2, retry_policy=FAST_RETRY, on_error="collect", faults=plan
        )
        report = runtime.run(tasks)
        assert isinstance(report, RunReport)
        assert not report.ok
        assert [o.task_id for o in report.failures] == [bad]
        assert "InjectedFault" in report.failures[0].traceback
        assert report.failures[0].attempts == FAST_RETRY.retries + 1
        # Every other cell still produced its exact row.
        assert report.rows[2] is None
        assert [r for i, r in enumerate(report.rows) if i != 2] == [
            r for i, r in enumerate(reference_rows) if i != 2
        ]
        assert runtime.last_stats.failures == 1
        with pytest.raises(IncompleteRunError):
            ensure_rows(report)

    def test_raise_mode_raises_with_captured_outcome(self):
        tasks = _grid()
        plan = FaultPlan(rules=(FaultRule(match=tasks[0].task_id, times=999),))
        runtime = ExperimentRuntime(workers=2, retry_policy=FAST_RETRY, faults=plan)
        with pytest.raises(TaskExecutionError) as excinfo:
            runtime.run(tasks)
        assert excinfo.value.outcome.task_id == tasks[0].task_id
        assert "InjectedFault" in excinfo.value.outcome.traceback
        # The grid still finished: the report has every other row.
        assert sum(r is not None for r in runtime.last_report.rows) == len(tasks) - 1

    def test_collect_mode_clean_run_reports_ok(self, reference_rows):
        report = ExperimentRuntime(on_error="collect").run(_grid())
        assert report.ok
        assert report.require_rows() == reference_rows
        assert ensure_rows(report) == reference_rows


class TestPoolRecovery:
    def test_worker_kill_rebuilds_pool_and_completes(
        self, reference_rows, tmp_path
    ):
        tasks = _grid()
        plan = FaultPlan(
            rules=(FaultRule(match=tasks[0].task_id, kind="kill"),),
            state_dir=str(tmp_path),
        )
        runtime = ExperimentRuntime(workers=2, faults=plan)
        rows = runtime.run(tasks)
        assert rows == reference_rows
        assert runtime.last_stats.pool_rebuilds >= 1
        assert runtime.last_stats.failures == 0

    def test_hang_times_out_and_recovers(self, reference_rows, tmp_path):
        tasks = _grid()
        plan = FaultPlan(
            rules=(
                FaultRule(match=tasks[1].task_id, kind="hang", hang_seconds=30.0),
            ),
            state_dir=str(tmp_path),
        )
        runtime = ExperimentRuntime(workers=2, task_timeout=0.5, faults=plan)
        rows = runtime.run(tasks)
        assert rows == reference_rows
        assert runtime.last_stats.timeouts >= 1
        assert runtime.last_stats.pool_rebuilds >= 1

    def test_repeated_crashes_degrade_to_inline(self, reference_rows):
        tasks = _grid()
        bad = tasks[2].task_id
        # No state_dir: every rebuilt pool re-kills, until the inline
        # fallback (where kill downgrades to raise) settles it.
        plan = FaultPlan(rules=(FaultRule(match=bad, kind="kill", times=999),))
        runtime = ExperimentRuntime(
            workers=2, on_error="collect", faults=plan, max_pool_rebuilds=1
        )
        report = runtime.run(tasks)
        assert runtime.last_stats.inline_fallbacks == 1
        assert runtime.last_stats.pool_rebuilds == 2
        assert [o.task_id for o in report.failures] == [bad]
        assert [r for i, r in enumerate(report.rows) if i != 2] == [
            r for i, r in enumerate(reference_rows) if i != 2
        ]


class TestCheckpointResume:
    def test_interrupted_run_resumes_only_missing_cells(
        self, reference_rows, tmp_path
    ):
        tasks = _grid()
        bad = tasks[4].task_id
        cache_dir = tmp_path / "cache"
        # Run 1 "dies" on one cell (permanent injected failure stands in
        # for a mid-run kill): everything else checkpoints to the cache.
        plan = FaultPlan(rules=(FaultRule(match=bad, times=999),))
        first = ExperimentRuntime(
            workers=2,
            cache_dir=cache_dir,
            retry_policy=FAST_RETRY,
            on_error="collect",
            faults=plan,
        )
        report = first.run(tasks)
        assert len(report.failures) == 1
        # Run 2 (no faults) re-executes exactly the missing cell.
        resumed = ExperimentRuntime(cache_dir=cache_dir)
        rows = resumed.run(tasks)
        assert rows == reference_rows
        assert resumed.last_stats.executed == 1
        assert resumed.last_stats.cache_hits == len(tasks) - 1

    def test_rows_checkpoint_during_inline_failure(self, tmp_path):
        tasks = _grid()
        cache_dir = tmp_path / "cache"
        plan = FaultPlan(rules=(FaultRule(match=tasks[1].task_id, times=999),))
        runtime = ExperimentRuntime(cache_dir=cache_dir, faults=plan)
        with pytest.raises(TaskExecutionError):
            runtime.run(tasks)
        # Every successful cell was stored despite the raise.
        assert len(runtime.cache) == len(tasks) - 1


class TestDuplicateTasks:
    def test_duplicates_execute_once_and_fan_out(self):
        tasks = _grid(2)
        duplicated = [tasks[0], tasks[1], tasks[0], tasks[1], tasks[0]]
        runtime = ExperimentRuntime()
        rows = runtime.run(duplicated)
        assert runtime.last_stats.executed == 2
        assert runtime.last_stats.deduped == 3
        assert rows[0] == rows[2] == rows[4]
        assert rows[1] == rows[3]
        assert [r["task_id"] for r in rows] == [t.task_id for t in duplicated]

    def test_duplicates_store_once_in_cache(self, tmp_path):
        tasks = _grid(1)
        runtime = ExperimentRuntime(cache_dir=tmp_path)
        runtime.run([tasks[0], tasks[0], tasks[1]])
        assert runtime.cache.stats.stores == 2
        assert len(runtime.cache) == 2

    def test_duplicates_of_cached_tasks_count_as_dedupe(self, tmp_path):
        tasks = _grid(1)
        ExperimentRuntime(cache_dir=tmp_path).run(tasks)
        runtime = ExperimentRuntime(cache_dir=tmp_path)
        runtime.run([tasks[0], tasks[0]])
        assert runtime.last_stats.executed == 0
        assert runtime.last_stats.cache_hits == 1
        assert runtime.last_stats.deduped == 1


class TestReportPlumbing:
    def test_bench_payload_marks_incomplete_runs(self):
        from repro.runtime import bench_payload

        tasks = _grid(1)
        plan = FaultPlan(rules=(FaultRule(match=tasks[0].task_id, times=999),))
        runtime = ExperimentRuntime(on_error="collect", faults=plan)
        report = runtime.run(tasks)
        payload = bench_payload(
            "smoke",
            report.successful_rows(),
            wall_seconds=0.1,
            runtime_stats=report.stats,
            failures=report.failures,
        )
        assert payload["complete"] is False
        assert payload["failures"][0]["task_id"] == tasks[0].task_id
        assert "InjectedFault" in payload["failures"][0]["traceback"]
        assert payload["runtime"]["failures"] == 1

    def test_bench_payload_defaults_to_complete(self):
        from repro.runtime import bench_payload

        payload = bench_payload("smoke", [], wall_seconds=0.1)
        assert payload["complete"] is True
        assert payload["failures"] == []

    def test_env_plan_reaches_runtime(self, monkeypatch, reference_rows, tmp_path):
        import json

        monkeypatch.setenv(
            "CAKE_FAULT_PLAN",
            json.dumps(
                {
                    "state_dir": str(tmp_path),
                    "rules": [{"match": "*", "kind": "raise", "times": 1}],
                }
            ),
        )
        runtime = ExperimentRuntime(retry_policy=FAST_RETRY)
        assert runtime.run(_grid()) == reference_rows
        assert runtime.last_stats.retries == len(_grid())
