"""Runtime executor: ordering, determinism, sharding, memoization."""

import pytest

from repro.runtime import ExperimentRuntime, ExperimentTask


def _grid(count: int = 10) -> list[ExperimentTask]:
    tasks = []
    for i in range(count):
        for engine in ("cake", "goto"):
            tasks.append(
                ExperimentTask(
                    kind="predict",
                    engine=engine,
                    machine="Intel i9-10900K",
                    m=400 + 100 * i,
                    n=500,
                    k=300,
                )
            )
    return tasks


class TestOrderingAndDeterminism:
    def test_rows_come_back_in_input_order(self):
        tasks = _grid()
        rows = ExperimentRuntime().run(tasks)
        assert [r["task_id"] for r in rows] == [t.task_id for t in tasks]

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_parallel_matches_serial_byte_for_byte(self, workers):
        tasks = _grid(6)
        serial = ExperimentRuntime(workers=1).run(tasks)
        parallel = ExperimentRuntime(workers=workers).run(tasks)
        assert parallel == serial

    def test_rerun_is_identical(self):
        tasks = _grid(4)
        runtime = ExperimentRuntime()
        assert runtime.run(tasks) == runtime.run(tasks)

    def test_empty_task_list(self):
        runtime = ExperimentRuntime(workers=4)
        assert runtime.run([]) == []
        assert runtime.last_stats.tasks == 0
        assert runtime.last_stats.shards == 0


class TestSharding:
    def test_round_robin_is_positional(self):
        runtime = ExperimentRuntime(workers=3)
        pending = [(i, None) for i in range(8)]
        shards = runtime._shard(pending)
        assert [[i for i, _ in shard] for shard in shards] == [
            [0, 3, 6],
            [1, 4, 7],
            [2, 5],
        ]

    def test_never_more_shards_than_tasks(self):
        runtime = ExperimentRuntime(workers=16)
        shards = runtime._shard([(0, None), (1, None)])
        assert len(shards) == 2

    def test_single_worker_never_splits(self):
        runtime = ExperimentRuntime(workers=1)
        pending = [(i, None) for i in range(5)]
        assert runtime._shard(pending) == [pending]

    def test_stats_record_shard_count(self):
        tasks = _grid(3)
        runtime = ExperimentRuntime(workers=2)
        runtime.run(tasks)
        assert runtime.last_stats.shards == 2
        assert runtime.last_stats.workers == 2

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ExperimentRuntime(workers=0)


class TestMemoization:
    def test_cold_then_warm(self, tmp_path):
        tasks = _grid(4)
        runtime = ExperimentRuntime(cache_dir=tmp_path)
        cold = runtime.run(tasks)
        assert runtime.last_stats.executed == len(tasks)
        assert runtime.last_stats.cache_hits == 0

        warm = runtime.run(tasks)
        assert warm == cold
        assert runtime.last_stats.executed == 0
        assert runtime.last_stats.cache_hits == len(tasks)

    def test_cache_is_shared_across_runtime_instances(self, tmp_path):
        tasks = _grid(2)
        first = ExperimentRuntime(cache_dir=tmp_path).run(tasks)
        second_rt = ExperimentRuntime(cache_dir=tmp_path)
        assert second_rt.run(tasks) == first
        assert second_rt.last_stats.executed == 0

    def test_partial_warm_mixes_cached_and_fresh_in_order(self, tmp_path):
        tasks = _grid(4)
        runtime = ExperimentRuntime(cache_dir=tmp_path)
        runtime.run(tasks[::2])  # warm the even positions only
        rows = runtime.run(tasks)
        assert [r["task_id"] for r in rows] == [t.task_id for t in tasks]
        assert runtime.last_stats.cache_hits == len(tasks[::2])
        assert runtime.last_stats.executed == len(tasks) - len(tasks[::2])

    def test_no_cache_dir_means_no_memoization(self):
        tasks = _grid(2)
        runtime = ExperimentRuntime()
        runtime.run(tasks)
        runtime.run(tasks)
        assert runtime.last_stats.cache_hits == 0
        assert runtime.last_stats.executed == len(tasks)


class TestRowLog:
    def test_drain_rows_accumulates_then_empties(self):
        tasks = _grid(2)
        runtime = ExperimentRuntime()
        runtime.run(tasks[:2])
        runtime.run(tasks[2:])
        drained = runtime.drain_rows()
        assert [r["task_id"] for r in drained] == [t.task_id for t in tasks]
        assert runtime.drain_rows() == []

    def test_wall_seconds_is_recorded(self):
        runtime = ExperimentRuntime()
        runtime.run(_grid(1))
        assert runtime.last_stats.wall_seconds > 0.0
