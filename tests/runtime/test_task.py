"""Task identity, seeds, machine resolution, and row round-trips."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.machines import amd_ryzen_9_5950x, arm_cortex_a53, intel_i9_10900k
from repro.perfmodel.predict import predict_cake
from repro.runtime import (
    MACHINE_FACTORIES,
    ExperimentTask,
    machine_key,
    prediction_from_row,
    run_task,
)


def _task(**overrides):
    base = dict(
        kind="predict", engine="cake", machine="Intel i9-10900K",
        m=500, n=400, k=300,
    )
    base.update(overrides)
    return ExperimentTask(**base)


class TestTaskIdentity:
    def test_id_is_stable_across_instances(self):
        assert _task().task_id == _task().task_id

    def test_id_depends_on_every_field(self):
        base = _task()
        for change in (
            {"engine": "goto"},
            {"machine": "ARM v8 Cortex-A53"},
            {"m": 501},
            {"n": 401},
            {"k": 301},
            {"cores": 4},
            {"alpha": 2.0},
            {"extrapolate_cores": 12},
            {"kind": "line_profile"},
        ):
            assert _task(**change).task_id != base.task_id, change

    def test_seed_derives_from_id(self):
        t = _task()
        assert t.seed == int(t.task_id[:12], 16)
        assert _task(m=501).seed != t.seed

    def test_rejects_unknown_kind_engine_machine(self):
        with pytest.raises(ConfigurationError):
            _task(kind="simulate")
        with pytest.raises(ConfigurationError):
            _task(engine="blis")
        with pytest.raises(ConfigurationError):
            _task(machine="Cray-1")

    def test_is_picklable(self):
        import pickle

        t = _task(cores=3, alpha=1.5)
        assert pickle.loads(pickle.dumps(t)) == t


class TestMachineResolution:
    def test_every_preset_is_registered(self):
        for factory in (intel_i9_10900k, amd_ryzen_9_5950x, arm_cortex_a53):
            spec = factory()
            assert machine_key(spec) == spec.name
            assert MACHINE_FACTORIES[spec.name]().name == spec.name

    def test_unknown_machine_raises(self):
        spec = dataclasses.replace(intel_i9_10900k(), name="Custom Xeon")
        with pytest.raises(ConfigurationError):
            machine_key(spec)

    def test_extrapolation_grows_the_machine(self):
        t = _task(machine="ARM v8 Cortex-A53", extrapolate_cores=8)
        spec = t.resolve_machine()
        assert spec.cores == 8
        assert spec.llc_bytes > arm_cortex_a53().llc_bytes

    def test_extrapolation_below_physical_restricts(self):
        t = _task(machine="Intel i9-10900K", extrapolate_cores=4)
        spec = t.resolve_machine()
        assert spec.cores == 4
        assert spec.llc_bytes == intel_i9_10900k().llc_bytes


class TestRunTask:
    def test_predict_row_matches_direct_prediction(self):
        t = _task(cores=6)
        row = run_task(t)
        direct = predict_cake(intel_i9_10900k(), 500, 400, 300, cores=6)
        assert row["gflops"] == direct.gflops
        assert row["seconds"] == direct.seconds
        assert row["dram_gb_per_s"] == direct.dram_gb_per_s
        assert row["active_cores"] == direct.cores

    def test_prediction_round_trips_through_row(self):
        t = _task(cores=6)
        rebuilt = prediction_from_row(run_task(t))
        assert rebuilt == predict_cake(
            intel_i9_10900k(), 500, 400, 300, cores=6
        )

    def test_rows_are_json_serializable(self):
        import json

        for kind, shape in (
            ("predict", (500, 400, 300)),
            ("line_profile", (64, 64, 64)),
            ("mem_profile", (128, 128, 128)),
        ):
            row = run_task(
                _task(kind=kind, m=shape[0], n=shape[1], k=shape[2])
            )
            assert json.loads(json.dumps(row)) == row

    def test_line_profile_row_matches_direct(self):
        from repro.memsim.linear import line_profile_goto

        t = _task(kind="line_profile", engine="goto", m=96, n=96, k=96, cores=2)
        row = run_task(t)
        direct = line_profile_goto(intel_i9_10900k(), 96, 96, 96, cores=2)
        assert row["serves"] == direct.serves
        assert row["dram_bytes"] == direct.dram_bytes
