"""Tests for the data-movement energy model."""

import pytest

from repro.gemm import CakeGemm, GotoGemm
from repro.perfmodel import EnergyModel, EnergyReport, estimate_energy


class TestEnergyModel:
    def test_defaults_ordering(self):
        """DRAM must cost far more per byte than internal SRAM — that
        ordering *is* the model's content."""
        m = EnergyModel()
        assert m.dram_pj_per_byte > 5 * m.internal_pj_per_byte

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_pj_per_byte=0.0)


class TestEstimateEnergy:
    def test_breakdown_sums(self, intel):
        run = CakeGemm(intel).analyze(800, 800, 800)
        rep = estimate_energy(run)
        assert rep.total_joules == pytest.approx(
            rep.dram_joules + rep.internal_joules + rep.compute_joules
        )
        assert 0 < rep.dram_fraction < 1
        assert rep.gflops_per_watt > 0

    def test_compute_energy_equal_for_both_engines(self, intel):
        """Same arithmetic => same compute energy; only movement differs."""
        cake = estimate_energy(CakeGemm(intel).analyze(1200, 1200, 1200))
        goto = estimate_energy(GotoGemm(intel).analyze(1200, 1200, 1200))
        assert cake.compute_joules == pytest.approx(goto.compute_joules)

    def test_cake_spends_less_on_dram(self, machine):
        """The conclusion's claim, quantified: CAKE's DRAM energy is
        below GOTO's on every platform at reduction-heavy sizes."""
        n = 2304
        cake = estimate_energy(CakeGemm(machine).analyze(n, n, n))
        goto = estimate_energy(GotoGemm(machine).analyze(n, n, n))
        assert cake.dram_joules < goto.dram_joules

    def test_cake_total_energy_wins_at_scale(self, intel):
        """CAKE's extra internal traffic is cheaper than the DRAM
        round-trips it replaces — the trade is energetically favourable."""
        n = 4608
        cake = estimate_energy(CakeGemm(intel).analyze(n, n, n))
        goto = estimate_energy(GotoGemm(intel).analyze(n, n, n))
        assert cake.total_joules < goto.total_joules
        assert cake.gflops_per_watt > goto.gflops_per_watt

    def test_custom_model(self, intel):
        run = CakeGemm(intel).analyze(400, 400, 400)
        cheap_dram = estimate_energy(
            run, EnergyModel(dram_pj_per_byte=1.0, internal_pj_per_byte=0.5)
        )
        default = estimate_energy(run)
        assert cheap_dram.dram_joules < default.dram_joules
