"""Tests for the per-block roofline pricing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.perfmodel import block_time
from repro.perfmodel.roofline import ZERO_TIME, block_times_batch


class TestBlockTime:
    def test_compute_bound(self, intel):
        bt = block_time(
            intel,
            active_cores=10,
            tile_cycles=1_000_000,
            kc=192,
            ext_bytes=64,
            int_elements=64,
        )
        assert bt.bound == "compute"
        assert bt.seconds == bt.compute_seconds

    def test_external_bound(self, intel):
        bt = block_time(
            intel,
            active_cores=10,
            tile_cycles=1,
            kc=192,
            ext_bytes=10**9,
            int_elements=64,
        )
        assert bt.bound == "external"
        assert bt.seconds == bt.external_seconds

    def test_internal_bound(self, intel):
        bt = block_time(
            intel,
            active_cores=1,
            tile_cycles=1,
            kc=192,
            ext_bytes=0,
            int_elements=10**9,
        )
        assert bt.bound == "internal"

    def test_compute_seconds_formula(self, intel):
        bt = block_time(
            intel, active_cores=4, tile_cycles=100.0, kc=100,
            ext_bytes=0, int_elements=0,
        )
        assert bt.compute_seconds == pytest.approx(
            100.0 / intel.tile_ops_per_second(100)
        )

    def test_external_seconds_include_traffic_factor(self, intel):
        bt = block_time(
            intel, active_cores=1, tile_cycles=0, kc=100,
            ext_bytes=1000, int_elements=0,
        )
        expected = 1000 * intel.external_traffic_factor / intel.dram_bytes_per_second
        assert bt.external_seconds == pytest.approx(expected)

    def test_internal_seconds_scale_with_cores(self, amd):
        """More active cores -> more internal-bandwidth supply (AMD's
        curve is linear, so exactly proportional)."""
        bt1 = block_time(
            amd, active_cores=1, tile_cycles=0, kc=100,
            ext_bytes=0, int_elements=10**6,
        )
        bt4 = block_time(
            amd, active_cores=4, tile_cycles=0, kc=100,
            ext_bytes=0, int_elements=10**6,
        )
        assert bt1.internal_seconds == pytest.approx(4 * bt4.internal_seconds)

    def test_addition_accumulates(self, intel):
        bt = block_time(
            intel, active_cores=1, tile_cycles=10, kc=10,
            ext_bytes=10, int_elements=10,
        )
        total = ZERO_TIME + bt + bt
        assert total.seconds == pytest.approx(2 * bt.seconds)
        assert total.compute_seconds == pytest.approx(2 * bt.compute_seconds)

    def test_addition_bound_is_argmax_of_sums(self):
        """Regression: the aggregate bound must come from the *summed*
        per-resource demand, not from whichever operand was added last.

        Two external-bound blocks plus one larger compute-bound block:
        external demand dominates the sum (6.0s vs 5.0s) even though the
        biggest single block — and the last one added — is compute-bound.
        """
        from repro.perfmodel.roofline import BlockTime

        external = BlockTime(
            seconds=3.0, compute_seconds=0.5, external_seconds=3.0,
            internal_seconds=0.1, bound="external",
        )
        compute = BlockTime(
            seconds=4.0, compute_seconds=4.0, external_seconds=0.0,
            internal_seconds=0.0, bound="compute",
        )
        total = ZERO_TIME + external + external + compute
        assert total.external_seconds == pytest.approx(6.0)
        assert total.compute_seconds == pytest.approx(5.0)
        assert total.bound == "external"
        # The mirror image: repeated compute demand dominates.
        assert (ZERO_TIME + compute + compute + external).bound == "compute"

    def test_rejects_bad_args(self, intel):
        with pytest.raises(ValueError):
            block_time(
                intel, active_cores=0, tile_cycles=1, kc=1,
                ext_bytes=0, int_elements=0,
            )
        with pytest.raises(ValueError):
            block_time(
                intel, active_cores=1, tile_cycles=-1, kc=1,
                ext_bytes=0, int_elements=0,
            )

    @given(
        st.floats(0, 1e9), st.floats(0, 1e9), st.floats(0, 1e9),
    )
    def test_max_semantics(self, cycles, ext, internal):
        """Block time is always the max of the three components."""
        from repro.machines import intel_i9_10900k

        machine = intel_i9_10900k()
        bt = block_time(
            machine, active_cores=5, tile_cycles=cycles, kc=100,
            ext_bytes=ext, int_elements=internal,
        )
        assert bt.seconds == pytest.approx(
            max(bt.compute_seconds, bt.external_seconds, bt.internal_seconds)
        )


class TestBlockTimesBatch:
    def _pricing_inputs(self, rng, n=64):
        return {
            "active_cores": rng.integers(1, 11, size=n),
            "tile_cycles": rng.integers(1, 10**7, size=n).astype(float),
            "ext_bytes": rng.integers(0, 10**8, size=n),
            "int_elements": rng.integers(0, 10**7, size=n),
        }

    def test_per_block_values_match_scalar(self, machine, rng):
        inputs = self._pricing_inputs(rng)
        batch = block_times_batch(machine, kc=192, **inputs)
        for i in range(len(batch)):
            bt = block_time(
                machine,
                active_cores=int(inputs["active_cores"][i]),
                tile_cycles=float(inputs["tile_cycles"][i]),
                kc=192,
                ext_bytes=int(inputs["ext_bytes"][i]),
                int_elements=int(inputs["int_elements"][i]),
            )
            assert batch.seconds[i] == bt.seconds
            assert batch.compute_seconds[i] == bt.compute_seconds
            assert batch.external_seconds[i] == bt.external_seconds
            assert batch.internal_seconds[i] == bt.internal_seconds
            assert batch.bounds[i] == {
                "compute": 0, "external": 1, "internal": 2,
            }[bt.bound]

    def test_total_matches_sequential_accumulation(self, intel, rng):
        """total() reproduces the scalar ``total = total + bt`` chain
        bit for bit, including the aggregate bound."""
        inputs = self._pricing_inputs(rng)
        batch = block_times_batch(intel, kc=192, **inputs)
        total = ZERO_TIME
        for i in range(len(batch)):
            total = total + block_time(
                intel,
                active_cores=int(inputs["active_cores"][i]),
                tile_cycles=float(inputs["tile_cycles"][i]),
                kc=192,
                ext_bytes=int(inputs["ext_bytes"][i]),
                int_elements=int(inputs["int_elements"][i]),
            )
        got = batch.total()
        assert got.seconds == total.seconds
        assert got.compute_seconds == total.compute_seconds
        assert got.external_seconds == total.external_seconds
        assert got.internal_seconds == total.internal_seconds
        assert got.bound == total.bound

    def test_bound_tallies(self, intel):
        batch = block_times_batch(
            intel,
            active_cores=np.array([1, 1, 1]),
            tile_cycles=np.array([1e9, 1.0, 1.0]),
            kc=192,
            ext_bytes=np.array([0, 10**10, 0]),
            int_elements=np.array([0, 0, 10**10]),
        )
        assert batch.bound_tallies() == {
            "compute": 1, "external": 1, "internal": 1,
        }

    def test_rejects_nonpositive_cores(self, intel):
        with pytest.raises(ValueError):
            block_times_batch(
                intel,
                active_cores=np.array([1, 0]),
                tile_cycles=np.array([1.0, 1.0]),
                kc=192,
                ext_bytes=np.array([0, 0]),
                int_elements=np.array([0, 0]),
            )
