"""Tests for the per-block roofline pricing."""

import pytest
from hypothesis import given, strategies as st

from repro.perfmodel import block_time
from repro.perfmodel.roofline import ZERO_TIME


class TestBlockTime:
    def test_compute_bound(self, intel):
        bt = block_time(
            intel,
            active_cores=10,
            tile_cycles=1_000_000,
            kc=192,
            ext_bytes=64,
            int_elements=64,
        )
        assert bt.bound == "compute"
        assert bt.seconds == bt.compute_seconds

    def test_external_bound(self, intel):
        bt = block_time(
            intel,
            active_cores=10,
            tile_cycles=1,
            kc=192,
            ext_bytes=10**9,
            int_elements=64,
        )
        assert bt.bound == "external"
        assert bt.seconds == bt.external_seconds

    def test_internal_bound(self, intel):
        bt = block_time(
            intel,
            active_cores=1,
            tile_cycles=1,
            kc=192,
            ext_bytes=0,
            int_elements=10**9,
        )
        assert bt.bound == "internal"

    def test_compute_seconds_formula(self, intel):
        bt = block_time(
            intel, active_cores=4, tile_cycles=100.0, kc=100,
            ext_bytes=0, int_elements=0,
        )
        assert bt.compute_seconds == pytest.approx(
            100.0 / intel.tile_ops_per_second(100)
        )

    def test_external_seconds_include_traffic_factor(self, intel):
        bt = block_time(
            intel, active_cores=1, tile_cycles=0, kc=100,
            ext_bytes=1000, int_elements=0,
        )
        expected = 1000 * intel.external_traffic_factor / intel.dram_bytes_per_second
        assert bt.external_seconds == pytest.approx(expected)

    def test_internal_seconds_scale_with_cores(self, amd):
        """More active cores -> more internal-bandwidth supply (AMD's
        curve is linear, so exactly proportional)."""
        bt1 = block_time(
            amd, active_cores=1, tile_cycles=0, kc=100,
            ext_bytes=0, int_elements=10**6,
        )
        bt4 = block_time(
            amd, active_cores=4, tile_cycles=0, kc=100,
            ext_bytes=0, int_elements=10**6,
        )
        assert bt1.internal_seconds == pytest.approx(4 * bt4.internal_seconds)

    def test_addition_accumulates(self, intel):
        bt = block_time(
            intel, active_cores=1, tile_cycles=10, kc=10,
            ext_bytes=10, int_elements=10,
        )
        total = ZERO_TIME + bt + bt
        assert total.seconds == pytest.approx(2 * bt.seconds)
        assert total.compute_seconds == pytest.approx(2 * bt.compute_seconds)

    def test_rejects_bad_args(self, intel):
        with pytest.raises(ValueError):
            block_time(
                intel, active_cores=0, tile_cycles=1, kc=1,
                ext_bytes=0, int_elements=0,
            )
        with pytest.raises(ValueError):
            block_time(
                intel, active_cores=1, tile_cycles=-1, kc=1,
                ext_bytes=0, int_elements=0,
            )

    @given(
        st.floats(0, 1e9), st.floats(0, 1e9), st.floats(0, 1e9),
    )
    def test_max_semantics(self, cycles, ext, internal):
        """Block time is always the max of the three components."""
        from repro.machines import intel_i9_10900k

        machine = intel_i9_10900k()
        bt = block_time(
            machine, active_cores=5, tile_cycles=cycles, kc=100,
            ext_bytes=ext, int_elements=internal,
        )
        assert bt.seconds == pytest.approx(
            max(bt.compute_seconds, bt.external_seconds, bt.internal_seconds)
        )
