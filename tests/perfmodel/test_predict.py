"""Tests for whole-problem predictions and the optimal-bandwidth curve.

These encode the paper's *qualitative* claims as machine-checkable
invariants of the model — the same claims the benchmark harness asserts
at full problem sizes, here at test-friendly sizes.
"""

import pytest

from repro.machines import extrapolated_machine
from repro.perfmodel import (
    cake_optimal_dram_gb_per_s,
    predict_cake,
    predict_goto,
)


class TestPredictBasics:
    def test_prediction_fields(self, intel):
        p = predict_cake(intel, 800, 700, 600, cores=4)
        assert p.engine == "cake"
        assert p.cores == 4
        assert (p.m, p.n, p.k) == (800, 700, 600)
        assert p.gflops > 0 and p.seconds > 0 and p.dram_gb_per_s > 0

    def test_goto_prediction(self, intel):
        p = predict_goto(intel, 800, 700, 600)
        assert p.engine == "goto"
        assert p.plan_summary["nc"] > 0

    def test_matches_engine_analyze(self, intel):
        """predict_* is exactly the engine's analytic walk, repackaged."""
        from repro.gemm import CakeGemm

        pred = predict_cake(intel, 512, 512, 512, cores=8)
        run = CakeGemm(intel, cores=8).analyze(512, 512, 512)
        assert pred.gflops == pytest.approx(run.gflops)
        assert pred.dram_gb_per_s == pytest.approx(run.dram_gb_per_s)

    def test_more_cores_rarely_slower(self, machine):
        """Within the physical machine, adding cores helps CAKE, give or
        take small internal-bandwidth/tiling-edge wobbles (<8%)."""
        times = [
            predict_cake(machine, 1920, 1920, 1920, cores=p).seconds
            for p in range(1, machine.cores + 1)
        ]
        for slower, faster in zip(times, times[1:]):
            assert faster <= slower * 1.08
        # And the overall scaling is genuinely strong.
        assert times[0] / times[-1] > 0.6 * machine.cores


class TestPaperClaims:
    def test_cake_moves_less_dram_data(self, machine):
        """Section 4.4: CAKE moves less total DRAM data than GOTO on
        every platform. (Total *bytes*, not average GB/s: on a fast
        machine at modest sizes CAKE can finish so much sooner that its
        average rate looks higher despite moving far less data.)"""
        from repro.gemm import CakeGemm, GotoGemm

        n = 1920
        c = CakeGemm(machine).analyze(n, n, n)
        g = GotoGemm(machine).analyze(n, n, n)
        assert c.dram_bytes < g.dram_bytes

    def test_goto_bandwidth_grows_with_cores(self, intel):
        g1 = predict_goto(intel, 3000, 3000, 3000, cores=1)
        g10 = predict_goto(intel, 3000, 3000, 3000, cores=10)
        assert g10.dram_gb_per_s > 4 * g1.dram_gb_per_s

    def test_cake_bandwidth_roughly_constant(self, intel):
        """At paper-like sizes CAKE's average bandwidth stays within ~2x
        across a 10x core sweep while GOTO's grows ~9x (the Figure 10a
        contrast; the residual CAKE growth is the packing burst's share
        of a shrinking runtime)."""
        n = 7680
        c1 = predict_cake(intel, n, n, n, cores=1)
        c10 = predict_cake(intel, n, n, n, cores=10)
        g1 = predict_goto(intel, n, n, n, cores=1)
        g10 = predict_goto(intel, n, n, n, cores=10)
        assert c10.dram_gb_per_s < 2 * c1.dram_gb_per_s
        assert g10.dram_gb_per_s > 4 * g1.dram_gb_per_s

    def test_arm_goto_is_external_bound(self, arm):
        g = predict_goto(arm, 1500, 1500, 1500)
        assert g.bound_blocks["external"] > g.bound_blocks["compute"]

    def test_intel_large_mm_is_compute_bound(self, intel):
        c = predict_cake(intel, 3000, 3000, 3000)
        assert c.bound_blocks["compute"] >= c.bound_blocks["external"]

    def test_extrapolated_machine_keeps_cake_scaling(self, intel):
        """The Figure 10b dotted-line contrast, at reduced size."""
        n = 3840
        base = predict_cake(intel, n, n, n)
        grown = predict_cake(extrapolated_machine(intel, 20), n, n, n)
        assert grown.gflops > 1.6 * base.gflops
        goto_grown = predict_goto(extrapolated_machine(intel, 20), n, n, n)
        assert grown.gflops > goto_grown.gflops


class TestOptimalCurve:
    def test_units_and_magnitude(self, intel):
        """Equation 4 on the Intel preset: (alpha+1)/alpha * mr * nr
        elements/cycle at the mc=192 tile rate, times the traffic
        factor, lands in the paper's few-GB/s regime."""
        opt = cake_optimal_dram_gb_per_s(intel, m=3000, n=3000, k=3000)
        assert 1.0 < opt < 8.0

    def test_independent_of_cores(self, intel):
        """The constant-bandwidth property itself."""
        opt4 = cake_optimal_dram_gb_per_s(
            intel.with_cores(4), m=3000, n=3000, k=3000
        )
        opt10 = cake_optimal_dram_gb_per_s(intel, m=3000, n=3000, k=3000)
        # mc shifts slightly with p through the LRU rule; near-constant.
        assert opt4 == pytest.approx(opt10, rel=0.35)

    def test_observed_at_least_optimal(self, machine):
        """Observed average bandwidth can exceed but not undershoot the
        per-block optimum (C write-back and packing only add traffic)."""
        n = 1920
        opt = cake_optimal_dram_gb_per_s(machine, m=n, n=n, k=n)
        observed = predict_cake(machine, n, n, n).dram_gb_per_s
        assert observed >= 0.8 * opt
