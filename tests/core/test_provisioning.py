"""Tests for the provisioning design tool."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    external_bandwidth_min,
    provision,
    scaling_table,
)
from repro.errors import ConfigurationError


class TestProvision:
    def test_basic_fields(self):
        r = provision(p=2, k=4, external_bw_tiles_per_cycle=6.0)
        assert r.bandwidth_ratio == pytest.approx(1.5)
        assert r.alpha == pytest.approx(2.0)  # 1/(R-1)
        assert r.block.m == 8 and r.block.k == 4

    def test_bandwidth_floor_enforced(self):
        with pytest.raises(ConfigurationError, match="floor"):
            provision(p=2, k=4, external_bw_tiles_per_cycle=4.0)

    @given(
        st.integers(1, 32), st.integers(1, 8), st.floats(1.05, 8.0),
    )
    def test_design_point_is_feasible(self, p, k, r):
        """The provisioned alpha satisfies Eq. 2 at the given bandwidth."""
        result = provision(p=p, k=k, external_bw_tiles_per_cycle=r * k)
        assert external_bandwidth_min(k, result.alpha) <= (
            result.external_bw_tiles_per_cycle + 1e-9
        )

    @given(st.integers(1, 32), st.integers(1, 8))
    def test_plentiful_bandwidth_gives_alpha_one(self, p, k):
        r = provision(p=p, k=k, external_bw_tiles_per_cycle=10.0 * k)
        assert r.alpha == 1.0


class TestScalingTable:
    def test_constant_external_bandwidth(self):
        rows = scaling_table(
            k=4, external_bw_tiles_per_cycle=6.0, p_values=(1, 2, 4, 8)
        )
        assert len({r.external_bw_tiles_per_cycle for r in rows}) == 1
        assert len({r.alpha for r in rows}) == 1

    def test_memory_grows_superlinearly(self):
        rows = scaling_table(
            k=4, external_bw_tiles_per_cycle=6.0, p_values=(1, 2, 4, 8)
        )
        mems = [r.local_memory_tiles for r in rows]
        for a, b in zip(mems, mems[1:]):
            assert b > 2 * a  # p doubles each step; memory more than doubles

    def test_internal_bw_grows_linearly(self):
        rows = scaling_table(
            k=4, external_bw_tiles_per_cycle=6.0, p_values=(1, 2, 4, 8)
        )
        bws = [r.internal_bw_tiles_per_cycle for r in rows]
        # Eq. 3: R*k + 2*p*k — differences double as p doubles.
        assert bws[1] - bws[0] == pytest.approx(2 * 1 * 4)
        assert bws[2] - bws[1] == pytest.approx(2 * 2 * 4)
