"""Unit and property tests for the CBBlock value type."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CBBlock

dims = st.integers(1, 10_000)


class TestCBBlockBasics:
    def test_volume(self):
        assert CBBlock(2, 3, 4).volume == 24

    def test_surfaces(self):
        b = CBBlock(m=2, n=3, k=4)
        assert b.surface_a == 8  # m x k
        assert b.surface_b == 12  # k x n
        assert b.surface_c == 6  # m x n

    def test_io_total_is_sum_of_surfaces(self):
        b = CBBlock(5, 7, 11)
        assert b.io_total == b.surface_a + b.surface_b + b.surface_c

    def test_input_io_excludes_c(self):
        b = CBBlock(5, 7, 11)
        assert b.input_io == b.surface_a + b.surface_b

    def test_flops_two_per_mac(self):
        assert CBBlock(2, 3, 4).flops() == 48

    def test_rejects_nonpositive_dims(self):
        for bad in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-1, 1, 1)]:
            with pytest.raises(ValueError):
                CBBlock(*bad)

    def test_frozen(self):
        b = CBBlock(1, 1, 1)
        with pytest.raises(AttributeError):
            b.m = 2

    def test_scaled(self):
        b = CBBlock(2, 3, 4).scaled(m=2, n=3)
        assert (b.m, b.n, b.k) == (4, 9, 4)


class TestCBBlockProperties:
    @given(dims, dims, dims)
    def test_volume_consistency(self, m, n, k):
        b = CBBlock(m, n, k)
        assert b.volume == m * n * k
        assert b.flops() == 2 * b.volume

    @given(dims, dims, dims, st.integers(1, 8))
    def test_figure4_constant_bandwidth_scaling(self, m, n, k, p):
        """Scaling M and N by p scales volume by p^2 but input IO by p.

        This is the Figure 4 property: arithmetic intensity (V / input IO)
        grows by p, so bandwidth (input IO / time, with time ~ n) stays
        constant.
        """
        base = CBBlock(m, n, k)
        grown = base.scaled(m=p, n=p)
        assert grown.volume == p * p * base.volume
        assert grown.input_io == p * base.input_io
