"""Tests for Section 4.3 LRU-aware block sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CakeCpuParams, cake_block_fits, solve_cake_mc, solve_goto_tiles
from repro.errors import ConfigurationError
from repro.util.units import BYTES_PER_KIB, BYTES_PER_MIB

INTEL_LLC = 20 * BYTES_PER_MIB // 4  # elements
INTEL_L2 = 256 * BYTES_PER_KIB // 4


class TestSolveCakeMc:
    def test_reproduces_paper_intel_example(self):
        """Section 4.4: Intel i9-10900K, p=10, alpha=1 => mc = kc = 192."""
        mc = solve_cake_mc(
            p=10, alpha=1.0, llc_elements=INTEL_LLC, l2_elements=INTEL_L2,
            mr=6, nr=16,
        )
        assert mc == 192

    def test_paper_cache_shares(self):
        """Section 4.4: with mc=192 the C and B surfaces take ~91%/9%."""
        mc, p = 192, 10
        c = p * p * mc * mc
        b = p * mc * mc
        assert c / (c + b) == pytest.approx(0.909, abs=0.001)
        # and B + C nearly fill the LLC
        assert 0.75 < (b + c) / INTEL_LLC < 1.0

    def test_result_is_multiple_of_mr(self):
        mc = solve_cake_mc(
            p=10, alpha=1.0, llc_elements=INTEL_LLC, l2_elements=INTEL_L2,
            mr=6, nr=16,
        )
        assert mc % 6 == 0

    def test_raising_alpha_shrinks_mc(self):
        mc1 = solve_cake_mc(
            p=10, alpha=1.0, llc_elements=INTEL_LLC, l2_elements=INTEL_L2,
            mr=6, nr=16,
        )
        mc4 = solve_cake_mc(
            p=10, alpha=4.0, llc_elements=INTEL_LLC, l2_elements=INTEL_L2,
            mr=6, nr=16,
        )
        assert mc4 < mc1

    def test_tiny_cache_infeasible(self):
        with pytest.raises(ConfigurationError):
            solve_cake_mc(
                p=64, alpha=1.0, llc_elements=256, l2_elements=64,
                mr=8, nr=8,
            )

    @given(
        st.integers(1, 32),
        st.floats(1.0, 8.0),
        st.integers(2**14, 2**24),
        st.integers(2**10, 2**18),
    )
    def test_solution_satisfies_lru_rule(self, p, alpha, llc, l2):
        """Whatever mc comes back must pass the C + 2(A+B) <= S check."""
        try:
            mc = solve_cake_mc(
                p=p, alpha=alpha, llc_elements=llc, l2_elements=l2, mr=4, nr=4
            )
        except ConfigurationError:
            return
        params = CakeCpuParams(p=p, mc=mc, kc=mc, alpha=alpha, mr=4, nr=4)
        assert cake_block_fits(params, llc)
        assert mc * mc <= l2


class TestCakeBlockFits:
    def test_known_fit(self):
        params = CakeCpuParams(p=10, mc=192, kc=192, alpha=1.0, mr=6, nr=16)
        assert cake_block_fits(params, INTEL_LLC)

    def test_known_overflow(self):
        params = CakeCpuParams(p=10, mc=240, kc=240, alpha=1.0, mr=6, nr=16)
        assert not cake_block_fits(params, INTEL_LLC)

    def test_slack_scales_budget(self):
        params = CakeCpuParams(p=10, mc=192, kc=192, alpha=1.0, mr=6, nr=16)
        assert not cake_block_fits(params, INTEL_LLC, slack=0.5)


class TestSolveGotoTiles:
    def test_intel_tiles(self):
        g = solve_goto_tiles(
            p=10, llc_elements=INTEL_LLC, l2_elements=INTEL_L2, mr=6, nr=16
        )
        assert g.mc == g.kc  # square A sub-block
        assert g.mc % 6 == 0
        assert g.mc * g.kc <= INTEL_L2
        assert g.kc * g.nc <= INTEL_LLC
        assert g.nc % 16 == 0

    def test_b_panel_fills_llc(self):
        """GOTO dedicates the LLC to B (Section 4.4: 'GOTO uses all of
        the L3 cache for B')."""
        g = solve_goto_tiles(
            p=10, llc_elements=INTEL_LLC, l2_elements=INTEL_L2, mr=6, nr=16
        )
        assert g.kc * g.nc > 0.95 * INTEL_LLC

    def test_tiny_l2_infeasible(self):
        with pytest.raises(ConfigurationError):
            solve_goto_tiles(p=1, llc_elements=1024, l2_elements=16, mr=8, nr=8)
