"""Tests for arithmetic-intensity algebra (Figure 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CBBlock,
    arithmetic_intensity,
    block_arithmetic_intensity,
    square_mm_intensity,
)


class TestArithmeticIntensity:
    def test_definition(self):
        assert arithmetic_intensity(100, 25) == 4.0

    def test_rejects_zero_io(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(100, 0)


class TestBlockIntensity:
    def test_resident_c_counts_inputs_only(self):
        b = CBBlock(4, 4, 4)
        assert block_arithmetic_intensity(b, resident_c=True) == pytest.approx(
            64 / 32
        )

    def test_streaming_c_counts_all_surfaces(self):
        b = CBBlock(4, 4, 4)
        assert block_arithmetic_intensity(b, resident_c=False) == pytest.approx(
            64 / 48
        )

    @given(st.integers(1, 512), st.integers(1, 512), st.integers(1, 512))
    def test_resident_c_always_higher(self, m, n, k):
        b = CBBlock(m, n, k)
        assert block_arithmetic_intensity(
            b, resident_c=True
        ) > block_arithmetic_intensity(b, resident_c=False)

    @given(st.integers(1, 100), st.integers(1, 16), st.integers(1, 8))
    def test_figure4_ai_grows_with_p_at_constant_bw(self, k, p, grow):
        """Growing a CB block p-fold in M and N multiplies AI by p."""
        base = CBBlock(p * k, p * k, k)
        grown = base.scaled(m=grow, n=grow)
        ai_base = block_arithmetic_intensity(base)
        ai_grown = block_arithmetic_intensity(grown)
        assert ai_grown == pytest.approx(grow * ai_base)


class TestSquareIntensity:
    def test_linear_in_n(self):
        """Section 5.2.3: AI of square MM is O(N)."""
        assert square_mm_intensity(3000) == pytest.approx(1000.0)
        assert square_mm_intensity(600) / square_mm_intensity(300) == pytest.approx(
            2.0
        )
