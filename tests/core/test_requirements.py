"""Tests for Equations 1-3 (Section 3 resource requirements)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    external_bandwidth_min,
    internal_bandwidth_required,
    internal_memory_required,
)

ps = st.integers(1, 128)
ks = st.integers(1, 64)
alphas = st.floats(1.0, 16.0)


class TestEquation1InternalMemory:
    def test_closed_form(self):
        # p=2, k=3, alpha=1: p*k^2 + alpha*p*k^2 + alpha*p^2*k^2
        assert internal_memory_required(2, 3, 1.0) == 18 + 18 + 36

    @given(ps, ks, alphas)
    def test_matches_surface_sum(self, p, k, alpha):
        expected = p * k * k + alpha * p * k * k + alpha * p * p * k * k
        assert internal_memory_required(p, k, alpha) == pytest.approx(expected)

    @given(ks, alphas)
    def test_quadratic_growth_in_p(self, k, alpha):
        """Doubling processing power ~quadruples the partial-C term.

        Section 3.1: to increase processing power p-fold, internal memory
        must grow by p^2. Check the asymptotic ratio for large p.
        """
        m1 = internal_memory_required(64, k, alpha)
        m2 = internal_memory_required(128, k, alpha)
        ratio = m2 / m1
        assert 3.5 < ratio <= 4.0 + 1e-9


class TestEquation2ExternalBandwidth:
    def test_closed_form(self):
        assert external_bandwidth_min(4, 1.0) == pytest.approx(8.0)

    @given(ps, ks, alphas)
    def test_independent_of_p(self, p, k, alpha):
        """The constant-bandwidth property: BW_min does not mention p."""
        assert external_bandwidth_min(k, alpha) == pytest.approx(
            (alpha + 1.0) / alpha * k
        )

    @given(ks)
    def test_alpha_reduces_requirement(self, k):
        assert external_bandwidth_min(k, 4.0) < external_bandwidth_min(k, 1.0)

    @given(ks, alphas)
    def test_lower_bound_is_k(self, k, alpha):
        # As alpha -> inf the requirement approaches k, never below.
        assert external_bandwidth_min(k, alpha) > k


class TestEquation3InternalBandwidth:
    def test_closed_form(self):
        # R*k + 2*p*k
        assert internal_bandwidth_required(p=4, k=2, r=2.0) == pytest.approx(20.0)

    @given(ps, ks, st.floats(1.0, 8.0))
    def test_linear_growth_in_p(self, p, k, r):
        """Section 3.3: internal bandwidth must scale with core count."""
        b1 = internal_bandwidth_required(p, k, r)
        b2 = internal_bandwidth_required(2 * p, k, r)
        assert b2 - b1 == pytest.approx(2 * p * k)
