"""Tests for the M/K block-direction extension (Section 3's sketch)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DIRECTIONS,
    analyze_direction,
    best_direction,
    block_compute_cycles,
    external_bandwidth_min,
)

ps = st.integers(1, 32)
ks = st.integers(1, 16)
alphas = st.floats(1.0, 8.0)


class TestComputeCycles:
    def test_paper_values(self):
        """Section 3: T = n, k or m unit times for N, M, K directions."""
        p, k, alpha = 4, 2, 2.0
        assert block_compute_cycles(p, k, alpha, "n") == alpha * p * k
        assert block_compute_cycles(p, k, alpha, "m") == k
        assert block_compute_cycles(p, k, alpha, "k") == p * k

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            block_compute_cycles(4, 2, 1.0, "q")  # type: ignore[arg-type]


class TestDirectionAnalysis:
    @given(ps, ks, alphas)
    def test_n_direction_matches_eq2(self, p, k, alpha):
        """The N-direction reproduces Equation 2 exactly."""
        a = analyze_direction(p, k, alpha, "n")
        assert a.external_bw_min == pytest.approx(
            external_bandwidth_min(k, alpha)
        )

    @given(ps, ks, alphas)
    def test_streamed_io_is_inputs(self, p, k, alpha):
        """Streamed traffic is the analytic input surfaces A + B."""
        for d in DIRECTIONS:
            a = analyze_direction(p, k, alpha, d)
            expected = p * k * k + alpha * p * k * k
            assert a.streamed_io == pytest.approx(expected)

    def test_resident_surfaces(self):
        assert analyze_direction(4, 2, 1.0, "n").resident_surface == "A"
        assert analyze_direction(4, 2, 1.0, "m").resident_surface == "B"
        assert analyze_direction(4, 2, 1.0, "k").resident_surface == "C"

    def test_k_direction_keeps_c_stationary(self):
        a = analyze_direction(4, 2, 1.0, "k")
        assert a.stationary_io == a.block.surface_c


class TestBestDirection:
    @given(ps, ks, st.floats(1.0001, 8.0))
    def test_n_direction_wins_for_alpha_above_one(self, p, k, alpha):
        """Streaming along the longest dimension needs the least
        bandwidth — the paper's choice of N is optimal under its own
        shaping."""
        assert best_direction(p, k, alpha).direction == "n"

    @given(ps, ks)
    def test_k_ties_n_at_alpha_one(self, p, k):
        """With alpha = 1 (n = m), the K-direction's longer compute time
        (m = p*k vs n = p*k) ties the N-direction's bandwidth floor."""
        n_dir = analyze_direction(p, k, 1.0, "n")
        k_dir = analyze_direction(p, k, 1.0, "k")
        assert n_dir.external_bw_min == pytest.approx(k_dir.external_bw_min)

    @given(ps, ks, alphas)
    def test_m_direction_always_worst(self, p, k, alpha):
        """T = k is the shortest compute time for the same input IO, so
        the M-direction demands the most bandwidth (p >= 1)."""
        m_bw = analyze_direction(p, k, alpha, "m").external_bw_min
        for d in ("n", "k"):
            assert m_bw >= analyze_direction(p, k, alpha, d).external_bw_min
