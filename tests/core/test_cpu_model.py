"""Tests for the Section 4 CPU adaptation (Equations 4-6 and GOTO)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CakeCpuParams,
    GotoCpuParams,
    cake_block_compute_cycles,
    cake_external_bw,
    cake_internal_bw,
    cake_local_memory,
    goto_external_bw,
    goto_panel_compute_cycles,
)


def cake(p=10, mc=192, kc=192, alpha=1.0, mr=6, nr=16) -> CakeCpuParams:
    return CakeCpuParams(p=p, mc=mc, kc=kc, alpha=alpha, mr=mr, nr=nr)


def goto(p=10, mc=252, kc=252, nc=20800, mr=6, nr=16) -> GotoCpuParams:
    return GotoCpuParams(p=p, mc=mc, kc=kc, nc=nc, mr=mr, nr=nr)


class TestCakeEquations:
    def test_compute_cycles_closed_form(self):
        # alpha * p * mc^2 / (mr * nr)
        assert cake_block_compute_cycles(cake()) == pytest.approx(
            10 * 192 * 192 / 96
        )

    @given(st.integers(1, 64), st.floats(1.0, 8.0))
    def test_eq4_external_bw_constant_in_p(self, p, alpha):
        """Equation 4: BW_ext = ((alpha+1)/alpha) * mr * nr, no p."""
        bw = cake_external_bw(cake(p=p, alpha=alpha))
        assert bw == pytest.approx((alpha + 1) / alpha * 96)

    @given(st.integers(1, 64))
    def test_eq5_local_memory_quadratic_in_p(self, p):
        m = cake_local_memory(cake(p=p))
        expected = p * 192 * 192 * 2.0 + 1.0 * p * p * 192 * 192
        assert m == pytest.approx(expected)

    @given(st.integers(1, 64), st.floats(1.0, 8.0))
    def test_eq6_internal_bw_linear_in_p(self, p, alpha):
        bw = cake_internal_bw(cake(p=p, alpha=alpha))
        assert bw == pytest.approx((2 * p + 1 / alpha + 1) * 96)

    def test_eq4_eq6_identity(self):
        """BW_int - BW_ext = 2p*mr*nr: the partial-C traffic CAKE moved
        from the external to the internal interface."""
        params = cake(p=7, alpha=2.0)
        diff = cake_internal_bw(params) - cake_external_bw(params)
        assert diff == pytest.approx(2 * 7 * 96)


class TestGotoEquations:
    def test_compute_cycles_closed_form(self):
        assert goto_panel_compute_cycles(goto()) == pytest.approx(
            252 * 20800 / 96
        )

    def test_external_bw_closed_form(self):
        """Section 4.1: BW = (1 + p + (kc/nc)*p) * mr * nr with mc=kc."""
        g = goto()
        expected = (1 + 10 + (252 / 20800) * 10) * 96
        assert goto_external_bw(g) == pytest.approx(expected)

    @given(st.integers(1, 64))
    def test_external_bw_grows_linearly_with_p(self, p):
        """The paper's core claim about GOTO: +1 core => ~+mr*nr BW."""
        b1 = goto_external_bw(goto(p=p))
        b2 = goto_external_bw(goto(p=p + 1))
        assert b2 - b1 == pytest.approx((1 + 252 / 20800) * 96)

    @given(st.integers(1, 32), st.floats(1.0, 4.0))
    def test_goto_needs_more_external_bw_than_cake(self, p, alpha):
        """For any p >= 2, GOTO's requirement exceeds CAKE's (Section 4.4)."""
        if p < 2:
            return
        assert goto_external_bw(goto(p=p)) > cake_external_bw(
            cake(p=p, alpha=alpha)
        )


class TestParamValidation:
    def test_cake_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            cake(alpha=0.5)

    def test_goto_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            goto(nc=0)

    def test_cake_block_extents(self):
        params = cake(p=10, mc=192, alpha=1.0)
        assert params.m_block == 1920
        assert params.k_block == 192
        assert params.n_block == 1920
