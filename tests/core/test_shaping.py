"""Tests for Section 3 shaping rules."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    alpha_from_bandwidth_ratio,
    cb_block_shape,
    min_bandwidth_ratio,
)
from repro.errors import ConfigurationError


class TestCbBlockShape:
    def test_basic_shape(self):
        b = cb_block_shape(p=4, k=2, alpha=1.0)
        assert (b.m, b.n, b.k) == (8, 8, 2)

    def test_alpha_widens_n(self):
        b = cb_block_shape(p=4, k=2, alpha=2.0)
        assert b.n == 16

    def test_fractional_alpha_rounds_n_up(self):
        b = cb_block_shape(p=3, k=1, alpha=1.5)
        assert b.n == 5  # ceil(4.5)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            cb_block_shape(p=4, k=2, alpha=0.5)

    @given(st.integers(1, 64), st.integers(1, 16), st.floats(1.0, 8.0))
    def test_m_is_one_tile_per_core(self, p, k, alpha):
        b = cb_block_shape(p, k, alpha)
        # The A surface holds p*k tiles of k elements each: one per core.
        assert b.m == p * k
        assert b.surface_a == p * k * k


class TestAlphaFromBandwidthRatio:
    def test_paper_rule(self):
        # alpha >= 1/(R-1); R=1.5 -> alpha = 2
        assert alpha_from_bandwidth_ratio(1.5) == pytest.approx(2.0)

    def test_clamped_at_one_for_plentiful_bandwidth(self):
        # R=3 -> 1/(R-1)=0.5, clamped to the paper's alpha >= 1
        assert alpha_from_bandwidth_ratio(3.0) == 1.0

    def test_r_at_most_one_infeasible(self):
        with pytest.raises(ConfigurationError):
            alpha_from_bandwidth_ratio(1.0)
        with pytest.raises(ConfigurationError):
            alpha_from_bandwidth_ratio(0.5)

    @given(st.floats(1.0001, 100.0))
    def test_inverse_relationship(self, r):
        alpha = alpha_from_bandwidth_ratio(r)
        # The chosen alpha must satisfy the original constraint ...
        assert alpha >= 1.0 / (r - 1.0) - 1e-12
        # ... and min_bandwidth_ratio must confirm feasibility.
        assert min_bandwidth_ratio(alpha) <= max(r, 2.0) + 1e-9


class TestMinBandwidthRatio:
    def test_alpha_one_needs_double(self):
        assert min_bandwidth_ratio(1.0) == pytest.approx(2.0)

    def test_large_alpha_approaches_one(self):
        assert min_bandwidth_ratio(100.0) == pytest.approx(1.01)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            min_bandwidth_ratio(0.9)
