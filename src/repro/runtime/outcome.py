"""Per-task execution envelopes and whole-run reports.

The fault-tolerant runtime never lets a task's exception propagate out
of a worker: every execution attempt ends in a :class:`TaskOutcome` —
either a result row or a captured error (class, message, formatted
traceback) plus the attempt count and wall time spent. A whole
:meth:`~repro.runtime.executor.ExperimentRuntime.run` call is summarized
by a :class:`RunReport`: rows in input order (``None`` where a task
permanently failed), the failed outcomes, and the run's
:class:`~repro.runtime.executor.RuntimeStats`.

Outcomes carry *accounting*, not results: rows stay pure functions of
their task, so retried, recovered, and fault-injected runs remain
byte-identical to clean ones on their success paths.
"""

from __future__ import annotations

import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CakeError


class TaskExecutionError(CakeError):
    """A task permanently failed under the ``on_error="raise"`` policy.

    Carries the failing :class:`TaskOutcome` (and any sibling failures
    from the same run) so callers keep the worker-side traceback even
    though the original exception object died with the worker process.
    """

    def __init__(self, outcome: "TaskOutcome", failures: list["TaskOutcome"] | None = None):
        self.outcome = outcome
        self.failures = list(failures) if failures is not None else [outcome]
        super().__init__(
            f"task {outcome.task_id} failed after {outcome.attempts} "
            f"attempt(s): {outcome.error_type}: {outcome.error_message}"
        )

    def __reduce__(self):
        # Multi-argument __init__: the default exception reduce replays
        # only the formatted message and cannot rebuild the outcome.
        return (type(self), (self.outcome, self.failures))


class IncompleteRunError(CakeError):
    """A ``collect``-mode run finished with failed cells.

    Raised by :meth:`RunReport.require_rows` (and therefore by analysis
    functions that need every cell of their grid) when some tasks never
    produced a row. The partial :class:`RunReport` is attached so the
    completed rows — already checkpointed in the result cache — are not
    lost with the exception.
    """

    def __init__(self, report: "RunReport", experiment: str | None = None):
        self.report = report
        self.experiment = experiment
        where = f" in {experiment!r}" if experiment else ""
        failed = ", ".join(o.task_id for o in report.failures[:5])
        more = len(report.failures) - 5
        if more > 0:
            failed += f", ... (+{more} more)"
        super().__init__(
            f"{len(report.failures)} of {report.stats.tasks} task(s) "
            f"failed{where}: {failed}"
        )

    def __reduce__(self):
        return (type(self), (self.report, self.experiment))


@dataclass(frozen=True, slots=True)
class TaskOutcome:
    """What one task's execution (including retries) amounted to.

    ``attempts`` counts executions within the worker that produced this
    outcome; ``duration_seconds`` is the wall time those attempts took
    (including backoff sleeps). Neither feeds into the result row.
    """

    task_id: str
    ok: bool
    row: dict[str, Any] | None = None
    error_type: str | None = None
    error_message: str | None = None
    traceback: str | None = None
    attempts: int = 1
    duration_seconds: float = 0.0

    @classmethod
    def success(
        cls, task_id: str, row: dict[str, Any], *, attempts: int, duration: float
    ) -> "TaskOutcome":
        return cls(
            task_id=task_id,
            ok=True,
            row=row,
            attempts=attempts,
            duration_seconds=duration,
        )

    @classmethod
    def failure(
        cls, task_id: str, exc: BaseException, *, attempts: int, duration: float
    ) -> "TaskOutcome":
        return cls(
            task_id=task_id,
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc),
            traceback="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempts,
            duration_seconds=duration,
        )

    def to_json(self) -> dict[str, Any]:
        """Failure record for ``BENCH_*.json`` ``failures`` lists."""
        return {
            "task_id": self.task_id,
            "ok": self.ok,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "duration_seconds": self.duration_seconds,
        }


@dataclass(frozen=True, slots=True)
class RunReport:
    """One ``run()`` call's survivable summary (``on_error="collect"``).

    ``rows`` is in input order with ``None`` holes where tasks
    permanently failed; ``failures`` holds those tasks' outcomes with
    their captured tracebacks.
    """

    rows: list[dict[str, Any] | None]
    failures: list["TaskOutcome"] = field(default_factory=list)
    stats: Any = None

    @property
    def ok(self) -> bool:
        """True when every task produced a row."""
        return not self.failures and all(row is not None for row in self.rows)

    def successful_rows(self) -> list[dict[str, Any]]:
        """The rows that were produced, input order preserved."""
        return [row for row in self.rows if row is not None]

    def require_rows(self) -> list[dict[str, Any]]:
        """All rows, or :class:`IncompleteRunError` if any are missing."""
        if not self.ok:
            raise IncompleteRunError(self)
        return list(self.rows)  # type: ignore[arg-type]


def ensure_rows(result: Any) -> list[dict[str, Any]]:
    """Normalize a ``run()`` result to a complete row list.

    ``on_error="raise"`` runs already return a plain list;
    ``on_error="collect"`` runs return a :class:`RunReport`, which is
    unwrapped when complete and raised as :class:`IncompleteRunError`
    otherwise. Analysis grids that need every cell call this instead of
    assuming a list.
    """
    if isinstance(result, RunReport):
        return result.require_rows()
    return result
