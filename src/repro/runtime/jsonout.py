"""Machine-readable benchmark output: ``BENCH_<experiment>.json``.

Every bench/CLI invocation can persist, alongside the human-readable
report text, a JSON document with the experiment's result rows
(GFLOP/s, DRAM GB/s, trace serves, ...) plus the wall-clock and runtime
accounting of the run that produced them. Schema::

    {
      "schema": "cake-bench/v1",
      "experiment": "fig8",
      "scale": "quick",
      "wall_seconds": 1.93,
      "complete": true,
      "failures": [],
      "runtime": {"tasks": 128, "cache_hits": 0, "executed": 128,
                  "workers": 4, "shards": 4, "wall_seconds": 1.88},
      "rows": [ {<one dict per result row>}, ... ]
    }

``rows`` come from the experiment runtime when one was used (one row
per :class:`~repro.runtime.task.ExperimentTask`); experiments that never
touch the runtime fall back to their report tables flattened into
header-keyed dicts, so *every* experiment has a machine-readable form.

A run that ends with permanently failed cells (``on_error="collect"``)
still emits its completed rows, but the document is marked
``"complete": false`` and ``failures`` carries one record per failed
task (error class, message, worker-side traceback, attempt count) so
downstream tooling never mistakes a partial sweep for a finished one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any

BENCH_SCHEMA = "cake-bench/v1"


def rows_from_report(report: Any) -> list[dict[str, Any]]:
    """Flatten an ExperimentReport's tables into header-keyed row dicts."""
    rows: list[dict[str, Any]] = []
    for table_index, (headers, table_rows) in enumerate(report.tables):
        for row in table_rows:
            entry: dict[str, Any] = {"table": table_index}
            entry.update(zip(headers, row))
            rows.append(entry)
    return rows


def bench_payload(
    experiment_id: str,
    rows: list[dict[str, Any]],
    *,
    wall_seconds: float,
    scale: str | None = None,
    runtime_stats: Any = None,
    complete: bool = True,
    failures: list[Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``cake-bench/v1`` document.

    ``failures`` accepts :class:`~repro.runtime.outcome.TaskOutcome`
    objects or already-serialized dicts; a non-empty list forces
    ``complete`` to false.
    """
    failure_records = [
        f.to_json() if hasattr(f, "to_json") else f for f in (failures or [])
    ]
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "experiment": experiment_id,
        "scale": scale,
        "wall_seconds": wall_seconds,
        "complete": complete and not failure_records,
        "failures": failure_records,
        "runtime": asdict(runtime_stats) if runtime_stats is not None else None,
        "rows": rows,
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(
    directory: Path | str,
    experiment_id: str,
    rows: list[dict[str, Any]],
    *,
    wall_seconds: float,
    scale: str | None = None,
    runtime_stats: Any = None,
    complete: bool = True,
    failures: list[Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_<experiment_id>.json`` atomically; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = bench_payload(
        experiment_id,
        rows,
        wall_seconds=wall_seconds,
        scale=scale,
        runtime_stats=runtime_stats,
        complete=complete,
        failures=failures,
        extra=extra,
    )
    target = directory / f"BENCH_{experiment_id}.json"
    text = json.dumps(payload, indent=1, sort_keys=True, default=str)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=f".{experiment_id}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
    return target
