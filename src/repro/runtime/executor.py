"""The parallel experiment runtime.

:class:`ExperimentRuntime` takes a list of
:class:`~repro.runtime.task.ExperimentTask` cells — a figure sweep, a
core-scaling series, a CAKE-vs-GOTO pair grid — and returns their result
rows **in input order**, regardless of how the work was scheduled:

* Cached tasks are answered from the on-disk
  :class:`~repro.runtime.cache.ResultCache` without executing anything.
* Remaining tasks are sharded **deterministically** (round-robin by
  input position) across a ``ProcessPoolExecutor``; each worker runs its
  shard and ships rows back tagged with their input index.
* Rows are pure functions of their task (no clocks, no ambient state),
  so serial, 2-worker and 16-worker runs produce byte-identical output —
  a property the test suite asserts, not just a design intention.

``workers <= 1`` (the default) runs inline with no pool, which is both
the fallback for single-CPU machines and the reference behaviour the
parallel path is checked against.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.runtime.cache import ResultCache
from repro.runtime.task import ExperimentTask, run_task
from repro.util import require_positive

IndexedTask = tuple[int, ExperimentTask]
IndexedRow = tuple[int, dict[str, Any]]


@dataclass(frozen=True, slots=True)
class RuntimeStats:
    """Accounting for one :meth:`ExperimentRuntime.run` call."""

    tasks: int
    cache_hits: int
    executed: int
    workers: int
    shards: int
    wall_seconds: float


def _run_shard(shard: list[IndexedTask]) -> list[IndexedRow]:
    """Worker entry point: execute one shard, keep input indices."""
    return [(index, run_task(task)) for index, task in shard]


class ExperimentRuntime:
    """Fan experiment grids over processes, memoizing completed cells.

    Parameters
    ----------
    workers:
        Process count for the fan-out. ``None`` or ``1`` runs serially
        in-process; higher values use a ``ProcessPoolExecutor``.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        memoization.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache_dir: Path | str | None = None,
    ) -> None:
        if workers is not None:
            require_positive("workers", workers)
        self.workers = 1 if workers is None else workers
        self.cache = None if cache_dir is None else ResultCache(cache_dir)
        self.last_stats: RuntimeStats | None = None
        self._rows_log: list[dict[str, Any]] = []

    def run(self, tasks: Sequence[ExperimentTask]) -> list[dict[str, Any]]:
        """Execute ``tasks``; returns one row per task, in input order."""
        start = time.perf_counter()
        results: list[dict[str, Any] | None] = [None] * len(tasks)

        pending: list[IndexedTask] = []
        cache_hits = 0
        for index, task in enumerate(tasks):
            cached = (
                self.cache.load(task.task_id) if self.cache is not None else None
            )
            if cached is not None:
                results[index] = cached
                cache_hits += 1
            else:
                pending.append((index, task))

        shards = self._shard(pending)
        if len(shards) <= 1:
            produced = _run_shard(pending)
        else:
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                futures = [pool.submit(_run_shard, shard) for shard in shards]
                produced = [row for fut in futures for row in fut.result()]

        for index, row in produced:
            results[index] = row
            if self.cache is not None:
                self.cache.store(tasks[index].task_id, row)

        rows = [row for row in results if row is not None]
        assert len(rows) == len(tasks)
        self.last_stats = RuntimeStats(
            tasks=len(tasks),
            cache_hits=cache_hits,
            executed=len(pending),
            workers=self.workers,
            shards=len(shards),
            wall_seconds=time.perf_counter() - start,
        )
        self._rows_log.extend(rows)
        return rows

    def _shard(self, pending: list[IndexedTask]) -> list[list[IndexedTask]]:
        """Deterministic round-robin split by input position.

        Task ``i`` of the pending list always lands in shard
        ``i % workers`` — independent of timing, hashing, or pool
        internals — so reruns distribute identically.
        """
        if self.workers <= 1 or len(pending) <= 1:
            return [pending] if pending else []
        count = min(self.workers, len(pending))
        return [pending[w::count] for w in range(count)]

    def drain_rows(self) -> list[dict[str, Any]]:
        """All rows produced since the last drain (for BENCH_*.json)."""
        rows, self._rows_log = self._rows_log, []
        return rows
