"""The fault-tolerant parallel experiment runtime.

:class:`ExperimentRuntime` takes a list of
:class:`~repro.runtime.task.ExperimentTask` cells — a figure sweep, a
core-scaling series, a CAKE-vs-GOTO pair grid — and returns their result
rows **in input order**, regardless of how the work was scheduled:

* Cached tasks are answered from the on-disk
  :class:`~repro.runtime.cache.ResultCache` without executing anything;
  duplicate ids within one call execute once and fan out to every input
  position.
* Remaining tasks are sharded **deterministically** (round-robin by
  input position) across a ``ProcessPoolExecutor``; each worker runs its
  shard and ships back :class:`~repro.runtime.outcome.TaskOutcome`
  envelopes tagged with their input index — exceptions are captured per
  task, never raised out of the pool.
* Rows are pure functions of their task (no clocks, no ambient state),
  so serial, 2-worker and 16-worker runs produce byte-identical output —
  a property the test suite asserts, not just a design intention.

Campaign-scale fault tolerance, all of it exercisable on demand via
:mod:`repro.runtime.faults`:

* **Retry with deterministic backoff** — a failed attempt retries up to
  ``retries`` times under :class:`RetryPolicy`: capped exponential
  backoff whose jitter derives from ``task.seed``, so the retry
  *schedule* is a pure function of the task and success-path rows stay
  byte-identical for any worker count.
* **Checkpointing** — completed rows land in the result cache as shard
  futures complete, so a killed run keeps its partial progress and a
  rerun only executes the missing cells.
* **Pool-crash and hang recovery** — a ``BrokenProcessPool`` or a shard
  exceeding its ``task_timeout`` budget tears the pool down, rebuilds it
  for the unfinished tasks, and after ``max_pool_rebuilds`` failed
  rebuilds degrades to inline serial execution (where injected
  kill/hang faults downgrade to plain errors).
* **Failure policy** — ``on_error="raise"`` (default) finishes the grid
  and raises :class:`~repro.runtime.outcome.TaskExecutionError` for the
  first permanent failure; ``on_error="collect"`` returns a
  :class:`~repro.runtime.outcome.RunReport` with rows, failures (with
  worker-side tracebacks) and recovery accounting on
  :class:`RuntimeStats`.

``workers <= 1`` (the default) runs inline with no pool, which is both
the fallback for single-CPU machines and the reference behaviour the
parallel path is checked against. ``task_timeout`` needs a pool to
preempt anything and is therefore inert inline.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.runtime.cache import ResultCache
from repro.runtime.faults import FaultInjector, FaultPlan, mark_worker_process
from repro.runtime.restart import RestartPolicy, RestartTracker
from repro.runtime.outcome import RunReport, TaskExecutionError, TaskOutcome
from repro.runtime.task import ExperimentTask, run_task
from repro.util import require_positive

IndexedTask = tuple[int, ExperimentTask]
IndexedOutcome = tuple[int, TaskOutcome]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with per-task deterministic jitter.

    The delay before the retry following failed attempt ``attempt`` is
    ``min(max_delay, base_delay * 2**(attempt-1))`` scaled by a jitter
    factor in ``[0.5, 1.5)`` drawn from ``random.Random`` seeded by
    ``(task.seed, attempt)`` — reproducible for a given task, decorrelated
    across tasks so retry storms do not re-synchronize.
    """

    retries: int = 0
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay(self, seed: int, attempt: int) -> float:
        """Seconds to back off after failed attempt ``attempt`` (1-based)."""
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        jitter = random.Random(seed * 1_000_003 + attempt).random()
        return base * (0.5 + jitter)


@dataclass(frozen=True, slots=True)
class RuntimeStats:
    """Accounting for one :meth:`ExperimentRuntime.run` call."""

    tasks: int
    cache_hits: int
    executed: int
    workers: int
    shards: int
    wall_seconds: float
    retries: int = 0
    failures: int = 0
    deduped: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    inline_fallbacks: int = 0


def _execute_task(
    task: ExperimentTask,
    policy: RetryPolicy,
    injector: FaultInjector | None,
) -> TaskOutcome:
    """Run one task to a :class:`TaskOutcome`, retrying transient failures.

    Exceptions never escape: the last attempt's error is captured with
    its formatted traceback. Injected ``kill`` faults bypass this (the
    process dies), which is exactly what the pool-recovery path is for.
    """
    start = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            if injector is not None:
                injector.before_attempt(task.task_id, attempt)
            row = run_task(task)
        except Exception as exc:
            if attempt <= policy.retries:
                time.sleep(policy.delay(task.seed, attempt))
                continue
            return TaskOutcome.failure(
                task.task_id, exc,
                attempts=attempt,
                duration=time.perf_counter() - start,
            )
        return TaskOutcome.success(
            task.task_id, row,
            attempts=attempt,
            duration=time.perf_counter() - start,
        )


def _run_shard(
    shard: list[IndexedTask],
    policy: RetryPolicy,
    plan: FaultPlan | None,
) -> list[IndexedOutcome]:
    """Worker entry point: execute one shard, keep input indices."""
    injector = None if plan is None else FaultInjector(plan)
    return [(index, _execute_task(task, policy, injector)) for index, task in shard]


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool whose workers may be hung or dead.

    ``shutdown(wait=True)`` would block on a hung worker forever, so the
    teardown is forced: cancel queued work, terminate every worker, and
    reap them briefly.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=2.0)


class _PoolDied(Exception):
    """Internal: the current pool crashed or timed out; rebuild it."""

    def __init__(self, timed_out: bool):
        self.timed_out = timed_out


class ExperimentRuntime:
    """Fan experiment grids over processes, memoizing completed cells.

    Parameters
    ----------
    workers:
        Process count for the fan-out. ``None`` or ``1`` runs serially
        in-process; higher values use a ``ProcessPoolExecutor``.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        memoization (and therefore checkpoint-resume).
    retries:
        Transient-failure retries per task (worker-side), under
        :class:`RetryPolicy` backoff. ``retry_policy`` overrides the
        whole policy when finer control is needed.
    task_timeout:
        Per-task time budget in seconds. A shard whose wall time exceeds
        ``task_timeout * len(shard)`` is presumed hung: its pool is torn
        down and the unfinished tasks re-run on a fresh one. Requires a
        pool; inert when running inline.
    on_error:
        ``"raise"`` (default): finish the grid, then raise
        :class:`~repro.runtime.outcome.TaskExecutionError` for the first
        permanent failure. ``"collect"``: return a
        :class:`~repro.runtime.outcome.RunReport` instead of a row list.
    max_pool_rebuilds:
        Pool rebuilds (after crashes/timeouts) before degrading to
        inline serial execution of whatever is left.
    faults:
        A :class:`~repro.runtime.faults.FaultPlan` for deterministic
        fault injection; defaults to the ``CAKE_FAULT_PLAN`` environment
        variable when unset.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache_dir: Path | str | None = None,
        retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        task_timeout: float | None = None,
        on_error: str = "raise",
        max_pool_rebuilds: int = 2,
        faults: FaultPlan | None = None,
    ) -> None:
        if workers is not None:
            require_positive("workers", workers)
        if task_timeout is not None:
            require_positive("task_timeout", task_timeout)
        if on_error not in ("raise", "collect"):
            raise ValueError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        if max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.workers = 1 if workers is None else workers
        self.cache = None if cache_dir is None else ResultCache(cache_dir)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(retries=retries)
        )
        self.task_timeout = task_timeout
        self.on_error = on_error
        self.max_pool_rebuilds = max_pool_rebuilds
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.last_stats: RuntimeStats | None = None
        self.last_report: RunReport | None = None
        self._rows_log: list[dict[str, Any]] = []

    def run(
        self, tasks: Sequence[ExperimentTask]
    ) -> list[dict[str, Any]] | RunReport:
        """Execute ``tasks``; one row per task, in input order.

        Returns the row list under ``on_error="raise"`` and a
        :class:`~repro.runtime.outcome.RunReport` under
        ``on_error="collect"``. Either way ``last_report`` and
        ``last_stats`` describe the run afterwards.
        """
        start = time.perf_counter()
        results: list[dict[str, Any] | None] = [None] * len(tasks)

        # Cache lookup + duplicate folding: each distinct task_id is
        # executed at most once, its row fanned out to every position.
        pending: list[IndexedTask] = []
        positions: dict[str, list[int]] = {}
        resolved_rows: dict[str, dict[str, Any]] = {}
        cache_hits = 0
        deduped = 0
        for index, task in enumerate(tasks):
            tid = task.task_id
            if tid in resolved_rows:
                results[index] = resolved_rows[tid]
                deduped += 1
                continue
            if tid in positions:
                positions[tid].append(index)
                deduped += 1
                continue
            cached = self.cache.load(tid) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                resolved_rows[tid] = cached
                cache_hits += 1
            else:
                positions[tid] = [index]
                pending.append((index, task))

        shard_count = len(self._shard(pending))
        counters = {
            "retries": 0,
            "timeouts": 0,
            "pool_rebuilds": 0,
            "inline_fallbacks": 0,
        }
        failures: list[TaskOutcome] = []
        resolved: set[str] = set()

        def record(outcome: TaskOutcome) -> None:
            """Fold one outcome into results; checkpoint rows eagerly."""
            resolved.add(outcome.task_id)
            counters["retries"] += outcome.attempts - 1
            if outcome.ok:
                assert outcome.row is not None
                for pos in positions[outcome.task_id]:
                    results[pos] = outcome.row
                if self.cache is not None:
                    self.cache.store(outcome.task_id, outcome.row)
            else:
                failures.append(outcome)

        if self.workers <= 1 or len(pending) <= 1:
            self._execute_inline(pending, record)
        else:
            self._execute_pooled(pending, record, resolved, counters)

        stats = RuntimeStats(
            tasks=len(tasks),
            cache_hits=cache_hits,
            executed=len(pending),
            workers=self.workers,
            shards=shard_count,
            wall_seconds=time.perf_counter() - start,
            retries=counters["retries"],
            failures=len(failures),
            deduped=deduped,
            timeouts=counters["timeouts"],
            pool_rebuilds=counters["pool_rebuilds"],
            inline_fallbacks=counters["inline_fallbacks"],
        )
        self.last_stats = stats
        report = RunReport(rows=list(results), failures=failures, stats=stats)
        self.last_report = report
        self._rows_log.extend(row for row in results if row is not None)

        if self.on_error == "collect":
            return report
        if failures:
            raise TaskExecutionError(failures[0], failures=failures)
        rows = [row for row in results if row is not None]
        assert len(rows) == len(tasks)
        return rows

    def _execute_inline(
        self,
        pending: list[IndexedTask],
        record: Callable[[TaskOutcome], None],
    ) -> None:
        """Serial in-process execution (reference path and degraded mode).

        Rows are recorded — and therefore cached — one task at a time,
        so even an inline run checkpoints as it goes. Inside this
        process, injected kill/hang faults downgrade to plain raises
        (see :mod:`repro.runtime.faults`).
        """
        injector = None if self.faults is None else FaultInjector(self.faults)
        for _, task in pending:
            record(_execute_task(task, self.retry_policy, injector))

    def _execute_pooled(
        self,
        pending: list[IndexedTask],
        record: Callable[[TaskOutcome], None],
        resolved: set[str],
        counters: dict[str, int],
    ) -> None:
        """Pool execution with crash/hang recovery.

        Shard results are consumed as they complete (checkpointing via
        ``record``). A crashed pool or an expired shard deadline tears
        the pool down and rebuilds it for whatever is still unresolved —
        one :class:`~repro.runtime.restart.RestartTracker` ladder with a
        zero-delay backoff; when its budget (``max_pool_rebuilds``) is
        spent the remainder runs inline.
        """
        tracker = RestartTracker(
            RestartPolicy(
                max_restarts=self.max_pool_rebuilds,
                backoff=RetryPolicy(retries=0, base_delay=0.0, max_delay=0.0),
                reset_after=None,
            )
        )
        remaining = pending
        while remaining:
            try:
                self._one_pool_round(remaining, record)
            except _PoolDied as died:
                counters["pool_rebuilds"] += 1
                if died.timed_out:
                    counters["timeouts"] += 1
                if tracker.next_delay() is None:
                    counters["inline_fallbacks"] += 1
                    self._execute_inline(
                        [
                            (index, task)
                            for index, task in remaining
                            if task.task_id not in resolved
                        ],
                        record,
                    )
                    return
            remaining = [
                (index, task)
                for index, task in remaining
                if task.task_id not in resolved
            ]

    def _one_pool_round(
        self,
        remaining: list[IndexedTask],
        record: Callable[[TaskOutcome], None],
    ) -> None:
        """One pool lifetime over ``remaining``.

        Records every outcome the pool managed to produce and raises
        :class:`_PoolDied` if the pool broke or a shard blew its
        deadline — after forcibly tearing the pool down either way.
        """
        shards = self._shard(remaining)
        pool = ProcessPoolExecutor(
            max_workers=len(shards), initializer=mark_worker_process
        )
        clean = False
        try:
            now = time.monotonic()
            deadlines = {}
            futures = []
            for shard in shards:
                fut = pool.submit(_run_shard, shard, self.retry_policy, self.faults)
                futures.append(fut)
                if self.task_timeout is not None:
                    deadlines[fut] = now + self.task_timeout * len(shard)
            not_done = set(futures)
            while not_done:
                budget = None
                if deadlines:
                    budget = max(
                        0.0,
                        min(deadlines[f] for f in not_done) - time.monotonic(),
                    )
                done, not_done = wait(
                    not_done, timeout=budget, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    # BrokenProcessPool propagates from .result(); any
                    # *task* error was already captured in its outcome.
                    for _, outcome in fut.result():
                        record(outcome)
                if not done and deadlines:
                    expired = time.monotonic()
                    if any(expired >= deadlines[f] for f in not_done):
                        raise _PoolDied(timed_out=True)
            clean = True
        except BrokenProcessPool:
            raise _PoolDied(timed_out=False) from None
        finally:
            if clean:
                pool.shutdown(wait=True)
            else:
                _kill_pool(pool)

    def _shard(self, pending: list[IndexedTask]) -> list[list[IndexedTask]]:
        """Deterministic round-robin split by input position.

        Task ``i`` of the pending list always lands in shard
        ``i % workers`` — independent of timing, hashing, or pool
        internals — so reruns distribute identically.
        """
        if self.workers <= 1 or len(pending) <= 1:
            return [pending] if pending else []
        count = min(self.workers, len(pending))
        return [pending[w::count] for w in range(count)]

    def drain_rows(self) -> list[dict[str, Any]]:
        """All rows produced since the last drain (for BENCH_*.json)."""
        rows, self._rows_log = self._rows_log, []
        return rows
