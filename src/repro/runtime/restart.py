"""Capped-backoff restart ladders: the shared shape of self-healing.

Every recovery loop in the repo follows one ladder: something crashed
or hung → tear it down → wait a bounded, deterministically-jittered
backoff → rebuild → and after a capped number of rebuilds stop
pretending and fail *structured*. The experiment runtime walks it for
broken process pools (:class:`~repro.runtime.executor.ExperimentRuntime`),
the shard executor for killed shard workers, and the serving fleet's
supervisor for dead or hung worker processes
(:mod:`repro.serve.supervisor`). This module is that ladder as a
reusable object, built on the same :class:`~repro.runtime.executor.RetryPolicy`
backoff arithmetic the per-task retry path uses.

Two pieces:

* :class:`RestartPolicy` — the immutable knobs: how many restarts
  before the terminal state, the backoff curve between them, and an
  optional *health reset* (an incident after ``reset_after`` healthy
  seconds starts a fresh budget, so a long-lived worker that dies once
  a day is not marched toward terminal by sheer uptime).
* :class:`RestartTracker` — one ladder instance's mutable state
  (restart count), owned by whatever is being supervised. ``None``
  from :meth:`RestartTracker.next_delay` *is* the terminal signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.runtime.executor import RetryPolicy


def _default_backoff() -> "RetryPolicy":
    # Imported lazily: executor.py itself builds its pool-rebuild ladder
    # from this module, so a top-level import would be circular.
    from repro.runtime.executor import RetryPolicy

    return RetryPolicy(retries=0, base_delay=0.1, max_delay=5.0)


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """Knobs for one capped-backoff restart ladder.

    Attributes
    ----------
    max_restarts:
        Restarts granted before :meth:`RestartTracker.next_delay`
        returns ``None`` (the structured-terminal signal). ``0`` means
        the first failure is terminal.
    backoff:
        The delay curve between restarts; only its ``base_delay``/
        ``max_delay``/jitter arithmetic is used (``retries`` plays no
        part — the cap lives in ``max_restarts``). A zero-delay policy
        restarts immediately, which is what the experiment runtime's
        pool rebuilds use.
    reset_after:
        Healthy seconds after which the next failure starts a fresh
        budget (see :meth:`RestartTracker.note_healthy_seconds`);
        ``None`` never resets — every failure over the whole lifetime
        counts against the cap.
    """

    max_restarts: int = 5
    backoff: RetryPolicy = field(default_factory=_default_backoff)
    reset_after: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.reset_after is not None and self.reset_after <= 0:
            raise ValueError(
                f"reset_after must be positive or None, got {self.reset_after}"
            )


class RestartTracker:
    """Mutable state of one restart ladder (not thread-safe; callers lock).

    ``seed`` decorrelates the backoff jitter between sibling ladders
    (e.g. fleet worker slots) exactly the way task seeds decorrelate
    retry storms in the experiment runtime.
    """

    def __init__(self, policy: RestartPolicy, seed: int = 0) -> None:
        self.policy = policy
        self.seed = seed
        self.restarts = 0
        #: Lifetime total, never reset — for reporting, not the cap.
        self.total_restarts = 0

    @property
    def exhausted(self) -> bool:
        """Whether the budget is spent (the next failure is terminal)."""
        return self.restarts >= self.policy.max_restarts

    def note_healthy_seconds(self, healthy_seconds: float) -> None:
        """Credit a healthy stretch before the current failure.

        Called when the supervised thing fails *after* running cleanly
        for ``healthy_seconds``: past ``policy.reset_after`` the ladder
        forgets old incidents and the new failure starts budget-fresh.
        """
        reset_after = self.policy.reset_after
        if reset_after is not None and healthy_seconds >= reset_after:
            self.restarts = 0

    def next_delay(self) -> float | None:
        """Claim one restart: the backoff to wait, or ``None`` = terminal.

        Deterministic for a given ``(seed, restart-count)`` — replaying
        a crash sequence replays its backoff schedule.
        """
        if self.exhausted:
            return None
        self.restarts += 1
        self.total_restarts += 1
        if self.policy.backoff.base_delay == 0:
            return 0.0
        return self.policy.backoff.delay(self.seed, self.restarts)
