"""Deterministic fault injection for the experiment runtime.

Recovery code that is never exercised is recovery code that does not
work. This module injects *scripted* failures into task execution so
tests — and the ``cake-bench --inject-faults`` smoke mode — can drive
every path of the fault-tolerance layer on demand:

* ``raise``: the attempt raises :class:`InjectedFault` (exercises
  per-task capture and the retry/backoff loop);
* ``hang``: the attempt sleeps ``hang_seconds`` (exercises per-shard
  timeouts and pool teardown);
* ``kill``: the worker process dies via ``os._exit`` (exercises
  ``BrokenProcessPool`` recovery).

Faults are keyed by ``task_id`` prefix (or ``"*"``), so a plan names
exactly which cells misbehave regardless of sharding, worker count, or
execution order — the injection schedule is a pure function of the plan
and the task, never of timing. Each rule fires at most ``times`` times;
with a ``state_dir`` the firing counts live on disk and therefore
survive worker kills and pool rebuilds, which is how "fail once, then
succeed on retry" is expressed across process boundaries.

Plans arrive through the :class:`~repro.runtime.executor.ExperimentRuntime`
``faults=`` constructor hook or the ``CAKE_FAULT_PLAN`` environment
variable (inline JSON, or ``@/path/to/plan.json``)::

    {"state_dir": "/tmp/faults", "rules": [
        {"match": "*", "kind": "raise", "times": 1},
        {"match": "6b1f", "kind": "kill"}
    ]}

Safety: ``kill`` and ``hang`` only physically fire inside pool worker
processes (marked via the pool initializer). In inline execution —
including the runtime's degraded serial fallback — they downgrade to
``raise`` so an injected fault can never take down or stall the
orchestrating process itself.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CakeError

#: Environment variable holding a fault plan (JSON text or ``@path``).
FAULT_PLAN_ENV = "CAKE_FAULT_PLAN"

_KINDS = ("raise", "hang", "kill")

_IN_WORKER = False


def mark_worker_process() -> None:
    """Pool initializer: flags this process as a disposable worker."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """True inside a pool worker (where kill/hang faults may fire)."""
    return _IN_WORKER


class InjectedFault(CakeError):
    """The error raised (or left behind) by a scripted fault."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One scripted misbehavior, matched by task-id prefix."""

    match: str
    kind: str = "raise"
    times: int = 1
    hang_seconds: float = 30.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")

    def matches(self, task_id: str) -> bool:
        return self.match == "*" or task_id.startswith(self.match)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A picklable set of fault rules plus optional on-disk firing state.

    Without ``state_dir``, firing counts are per-injector (per worker
    process); with it, counts persist across kills, rebuilds, and runs.
    """

    rules: tuple[FaultRule, ...]
    state_dir: str | None = None

    @classmethod
    def from_json(cls, doc: object) -> "FaultPlan":
        """Build a plan from a decoded JSON document.

        Accepts either ``{"state_dir": ..., "rules": [...]}`` or a bare
        rule list.
        """
        if isinstance(doc, list):
            doc = {"rules": doc}
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan must be a JSON object or list, got {doc!r}")
        rules = tuple(FaultRule(**rule) for rule in doc.get("rules", ()))
        if not rules:
            raise ValueError("fault plan has no rules")
        state_dir = doc.get("state_dir")
        return cls(rules=rules, state_dir=None if state_dir is None else str(state_dir))

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``spec`` as inline JSON, or ``@path`` to a JSON file."""
        text = spec.strip()
        if text.startswith("@"):
            text = Path(text[1:]).read_text(encoding="utf-8")
        return cls.from_json(json.loads(text))

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> "FaultPlan | None":
        """The plan named by :data:`FAULT_PLAN_ENV`, or None when unset."""
        env = os.environ if environ is None else environ
        spec = env.get(FAULT_PLAN_ENV)
        if not spec:
            return None
        return cls.from_spec(spec)


class FaultInjector:
    """Applies a :class:`FaultPlan` at task-attempt boundaries."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counts: dict[tuple[int, str], int] = {}
        if plan.state_dir is not None:
            Path(plan.state_dir).mkdir(parents=True, exist_ok=True)

    def _state_path(self, rule_index: int, task_id: str) -> Path:
        return Path(self.plan.state_dir) / f"{task_id}.{rule_index}.fired"  # type: ignore[arg-type]

    def fired(self, rule_index: int, task_id: str) -> int:
        """How many times rule ``rule_index`` has fired for ``task_id``."""
        if self.plan.state_dir is None:
            return self._counts.get((rule_index, task_id), 0)
        try:
            return int(self._state_path(rule_index, task_id).read_text())
        except (FileNotFoundError, ValueError):
            return 0

    def _mark_fired(self, rule_index: int, task_id: str) -> None:
        count = self.fired(rule_index, task_id) + 1
        self._counts[(rule_index, task_id)] = count
        if self.plan.state_dir is not None:
            self._state_path(rule_index, task_id).write_text(str(count))

    def before_attempt(self, task_id: str, attempt: int) -> None:
        """Fire the first unexhausted matching rule, if any.

        Firing is recorded *before* the fault takes effect, so a kill or
        a timed-out hang still counts — the rebuilt pool (reading the
        shared ``state_dir``) will not re-fire an exhausted rule.
        """
        for rule_index, rule in enumerate(self.plan.rules):
            if not rule.matches(task_id):
                continue
            if self.fired(rule_index, task_id) >= rule.times:
                continue
            self._mark_fired(rule_index, task_id)
            self._fire(rule, task_id, attempt)
            return

    def _fire(self, rule: FaultRule, task_id: str, attempt: int) -> None:
        if rule.kind == "kill" and in_worker_process():
            os._exit(3)
        if rule.kind == "hang" and in_worker_process():
            time.sleep(rule.hang_seconds)
        raise InjectedFault(
            f"{rule.kind} fault injected for task {task_id} "
            f"(attempt {attempt}): {rule.message}"
        )
