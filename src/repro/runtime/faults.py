"""Deterministic fault injection for the experiment runtime.

Recovery code that is never exercised is recovery code that does not
work. This module injects *scripted* failures into task execution so
tests — and the ``cake-bench --inject-faults`` smoke mode — can drive
every path of the fault-tolerance layer on demand:

* ``raise``: the attempt raises :class:`InjectedFault` (exercises
  per-task capture and the retry/backoff loop);
* ``hang``: the attempt sleeps ``hang_seconds`` (exercises per-shard
  timeouts and pool teardown);
* ``kill``: the worker process dies via ``os._exit`` (exercises
  ``BrokenProcessPool`` recovery).

Faults are keyed by ``task_id`` prefix (or ``"*"``), so a plan names
exactly which cells misbehave regardless of sharding, worker count, or
execution order — the injection schedule is a pure function of the plan
and the task, never of timing. Each rule fires at most ``times`` times;
with a ``state_dir`` the firing counts live on disk and therefore
survive worker kills and pool rebuilds, which is how "fail once, then
succeed on retry" is expressed across process boundaries.

Plans arrive through the :class:`~repro.runtime.executor.ExperimentRuntime`
``faults=`` constructor hook or the ``CAKE_FAULT_PLAN`` environment
variable (inline JSON, or ``@/path/to/plan.json``)::

    {"state_dir": "/tmp/faults", "rules": [
        {"match": "*", "kind": "raise", "times": 1},
        {"match": "6b1f", "kind": "kill"}
    ]}

Safety: ``kill`` and ``hang`` only physically fire inside pool worker
processes (marked via the pool initializer). In inline execution —
including the runtime's degraded serial fallback — they downgrade to
``raise`` so an injected fault can never take down or stall the
orchestrating process itself.

Numeric faults
--------------

The rules above misbehave at the *task* boundary. The GEMM engines have
a second, finer-grained backend: :class:`NumericFaultRule` corrupts the
**numeric output of one strip** inside the strip-group executor
(:mod:`repro.gemm.parallel`) — a bit flip, a scaled perturbation, or a
zeroed panel — which is how the ABFT verification layer
(:mod:`repro.gemm.verify`) proves its detection and recovery ladder
end-to-end. Rules are keyed by ``(block, strip)`` indices of the
executor's deterministic group schedule and fire on the first ``times``
*attempts* of each matching strip (a recomputation during recovery is a
new attempt), so the corruption schedule is a pure function of the plan
— never of thread timing or worker count.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CakeError

#: Environment variable holding a fault plan (JSON text or ``@path``).
FAULT_PLAN_ENV = "CAKE_FAULT_PLAN"

_KINDS = ("raise", "hang", "kill")

_IN_WORKER = False


def mark_worker_process() -> None:
    """Pool initializer: flags this process as a disposable worker."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    """True inside a pool worker (where kill/hang faults may fire)."""
    return _IN_WORKER


class InjectedFault(CakeError):
    """The error raised (or left behind) by a scripted fault."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One scripted misbehavior, matched by task-id prefix."""

    match: str
    kind: str = "raise"
    times: int = 1
    hang_seconds: float = 30.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")

    def matches(self, task_id: str) -> bool:
        return self.match == "*" or task_id.startswith(self.match)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A picklable set of fault rules plus optional on-disk firing state.

    Without ``state_dir``, firing counts are per-injector (per worker
    process); with it, counts persist across kills, rebuilds, and runs.
    """

    rules: tuple[FaultRule, ...]
    state_dir: str | None = None

    @classmethod
    def from_json(cls, doc: object) -> "FaultPlan":
        """Build a plan from a decoded JSON document.

        Accepts either ``{"state_dir": ..., "rules": [...]}`` or a bare
        rule list.
        """
        if isinstance(doc, list):
            doc = {"rules": doc}
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan must be a JSON object or list, got {doc!r}")
        rules = tuple(FaultRule(**rule) for rule in doc.get("rules", ()))
        if not rules:
            raise ValueError("fault plan has no rules")
        state_dir = doc.get("state_dir")
        return cls(rules=rules, state_dir=None if state_dir is None else str(state_dir))

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``spec`` as inline JSON, or ``@path`` to a JSON file."""
        text = spec.strip()
        if text.startswith("@"):
            text = Path(text[1:]).read_text(encoding="utf-8")
        return cls.from_json(json.loads(text))

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> "FaultPlan | None":
        """The plan named by :data:`FAULT_PLAN_ENV`, or None when unset."""
        env = os.environ if environ is None else environ
        spec = env.get(FAULT_PLAN_ENV)
        if not spec:
            return None
        return cls.from_spec(spec)


class FaultInjector:
    """Applies a :class:`FaultPlan` at task-attempt boundaries."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counts: dict[tuple[int, str], int] = {}
        if plan.state_dir is not None:
            Path(plan.state_dir).mkdir(parents=True, exist_ok=True)

    def _state_path(self, rule_index: int, task_id: str) -> Path:
        return Path(self.plan.state_dir) / f"{task_id}.{rule_index}.fired"  # type: ignore[arg-type]

    def fired(self, rule_index: int, task_id: str) -> int:
        """How many times rule ``rule_index`` has fired for ``task_id``."""
        if self.plan.state_dir is None:
            return self._counts.get((rule_index, task_id), 0)
        try:
            return int(self._state_path(rule_index, task_id).read_text())
        except (FileNotFoundError, ValueError):
            return 0

    def _mark_fired(self, rule_index: int, task_id: str) -> None:
        count = self.fired(rule_index, task_id) + 1
        self._counts[(rule_index, task_id)] = count
        if self.plan.state_dir is not None:
            self._state_path(rule_index, task_id).write_text(str(count))

    def before_attempt(self, task_id: str, attempt: int) -> None:
        """Fire the first unexhausted matching rule, if any.

        Firing is recorded *before* the fault takes effect, so a kill or
        a timed-out hang still counts — the rebuilt pool (reading the
        shared ``state_dir``) will not re-fire an exhausted rule.
        """
        for rule_index, rule in enumerate(self.plan.rules):
            if not rule.matches(task_id):
                continue
            if self.fired(rule_index, task_id) >= rule.times:
                continue
            self._mark_fired(rule_index, task_id)
            self._fire(rule, task_id, attempt)
            return

    def _fire(self, rule: FaultRule, task_id: str, attempt: int) -> None:
        if rule.kind == "kill" and in_worker_process():
            os._exit(3)
        if rule.kind == "hang" and in_worker_process():
            time.sleep(rule.hang_seconds)
        raise InjectedFault(
            f"{rule.kind} fault injected for task {task_id} "
            f"(attempt {attempt}): {rule.message}"
        )


# -- numeric faults (strip-output corruption) ---------------------------------

_NUMERIC_KINDS = ("bitflip", "scale", "zero", "kill", "hang")

#: Default bit to flip per element width: the most-significant exponent
#: bit, so a flipped value lands far outside any plausible tolerance band
#: (often inf/NaN — which the verifier treats as a mismatch as well).
_DEFAULT_FLIP_BIT = {4: 30, 8: 62}


@dataclass(frozen=True, slots=True)
class NumericFaultRule:
    """One scripted corruption of a strip's C output.

    ``block`` and ``strip`` select the target by the executor's
    deterministic indices (``"*"`` matches every index). ``times`` is the
    number of corrupted *attempts per matching strip*: with ``times=1``
    only the first execution of each matching strip is corrupted and the
    verifier's recompute heals it; a large ``times`` keeps corrupting
    recomputes too, forcing escalation to the oracle path (which bypasses
    injection) or to :class:`~repro.gemm.verify.NumericFaultError`.

    Kinds:

    * ``bitflip`` — XOR bit ``bit`` of element ``(row, col)`` (indices
      taken modulo the strip panel's shape; ``bit=None`` flips the top
      exponent bit for the panel's dtype);
    * ``scale`` — multiply the whole strip panel by ``factor``;
    * ``zero`` — overwrite the strip panel with zeros;
    * ``kill`` — terminate the hosting process mid-group via
      ``os._exit``, the crash a shard worker of the process-sharded
      executor must survive. Like the task-level kill rule it only
      physically fires inside a pool worker (marked by the pool
      initializer); in inline execution it is inert — it neither kills
      nor consumes its budget, so an inline-fallback re-run of a killed
      shard computes cleanly.
    * ``hang`` — sleep ``hang_seconds`` mid-group without corrupting
      anything, the stall a per-request deadline must preempt (the
      sharded executor's deadline kills the hung pool; the serve layer
      resolves the waiting client with ``DeadlineExceededError``).
      Worker-only and inert inline, exactly like ``kill``, so an
      injection plan can never stall the orchestrating process itself.
    """

    block: int | str = "*"
    strip: int | str = "*"
    kind: str = "bitflip"
    times: int = 1
    factor: float = 2.0
    row: int = 0
    col: int = 0
    bit: int | None = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in _NUMERIC_KINDS:
            raise ValueError(
                f"unknown numeric fault kind {self.kind!r}; "
                f"expected one of {_NUMERIC_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")
        for name in ("block", "strip"):
            value = getattr(self, name)
            if value != "*" and (not isinstance(value, int) or value < 0):
                raise ValueError(
                    f"{name} must be a non-negative index or '*', got {value!r}"
                )

    def matches(self, block: int, strip: int) -> bool:
        return (self.block == "*" or self.block == block) and (
            self.strip == "*" or self.strip == strip
        )


@dataclass(frozen=True, slots=True)
class NumericFaultPlan:
    """A set of :class:`NumericFaultRule` applied by one injector.

    Without ``state_dir`` firing counts live in the injector (per
    process); with it they persist on disk keyed by ``(rule, block,
    strip)``, surviving worker kills and pool rebuilds — the numeric
    analogue of :attr:`FaultPlan.state_dir`, and the only way to express
    "kill the shard worker once, then let the re-run succeed" across a
    process boundary.
    """

    rules: tuple[NumericFaultRule, ...]
    state_dir: str | None = None

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("numeric fault plan has no rules")

    @classmethod
    def from_json(cls, doc: object) -> "NumericFaultPlan":
        """Build a plan from a decoded JSON rule list (or ``{"rules": ...}``)."""
        state_dir = None
        if isinstance(doc, dict):
            state_dir = doc.get("state_dir")
            doc = doc.get("rules", ())
        if not isinstance(doc, (list, tuple)):
            raise ValueError(
                f"numeric fault plan must be a JSON list or object, got {doc!r}"
            )
        return cls(
            rules=tuple(NumericFaultRule(**rule) for rule in doc),
            state_dir=None if state_dir is None else str(state_dir),
        )


class NumericFaultInjector:
    """Applies a :class:`NumericFaultPlan` to strip outputs.

    Attempt counts are kept per ``(rule, block, strip)`` under a lock, so
    whether a given attempt is corrupted depends only on the rule and the
    strip's recomputation count — identical for any worker count and any
    thread interleaving (the determinism the verifier's bit-identity
    guarantee rests on).
    """

    def __init__(self, plan: NumericFaultPlan) -> None:
        self.plan = plan
        self.fired = 0
        self._lock = threading.Lock()
        self._counts: dict[tuple[int, int, int], int] = {}
        if plan.state_dir is not None:
            Path(plan.state_dir).mkdir(parents=True, exist_ok=True)

    def _count_path(self, key: tuple[int, int, int]) -> Path:
        index, block, strip = key
        return (
            Path(self.plan.state_dir)  # type: ignore[arg-type]
            / f"numeric.{index}.{block}.{strip}.fired"
        )

    def _get_count(self, key: tuple[int, int, int]) -> int:
        if self.plan.state_dir is None:
            return self._counts.get(key, 0)
        try:
            return int(self._count_path(key).read_text())
        except (FileNotFoundError, ValueError):
            return 0

    def _set_count(self, key: tuple[int, int, int], count: int) -> None:
        self._counts[key] = count
        if self.plan.state_dir is not None:
            self._count_path(key).write_text(str(count))

    def corrupt(self, block: int, strip: int, panel: np.ndarray) -> bool:
        """Corrupt ``panel`` in place if an unexhausted rule matches.

        ``kill`` rules are inert outside pool workers: they neither fire
        nor consume budget, so the orchestrator (and any inline-fallback
        re-run) can never be taken down by its own injection plan. The
        firing count is recorded *before* the process dies, so a rebuilt
        worker reading a shared ``state_dir`` sees the budget spent.
        """
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(block, strip):
                continue
            if rule.kind in ("kill", "hang") and not in_worker_process():
                continue
            key = (index, block, strip)
            with self._lock:
                count = self._get_count(key)
                if count >= rule.times:
                    continue
                self._set_count(key, count + 1)
                self.fired += 1
            self._apply(rule, panel)
            return True
        return False

    @staticmethod
    def _apply(rule: NumericFaultRule, panel: np.ndarray) -> None:
        if rule.kind == "kill":
            os._exit(3)
        if rule.kind == "hang":
            time.sleep(rule.hang_seconds)
            return
        if rule.kind == "zero":
            panel[...] = 0
            return
        if rule.kind == "scale":
            panel *= rule.factor
            return
        # bitflip
        itemsize = panel.dtype.itemsize
        if panel.dtype.kind != "f" or itemsize not in _DEFAULT_FLIP_BIT:
            raise ValueError(
                f"bitflip faults support float32/float64 panels, got {panel.dtype}"
            )
        bit = _DEFAULT_FLIP_BIT[itemsize] if rule.bit is None else rule.bit
        if not 0 <= bit < 8 * itemsize:
            raise ValueError(f"bit {bit} out of range for {panel.dtype}")
        r = rule.row % panel.shape[0]
        c = rule.col % panel.shape[1]
        utype = np.uint32 if itemsize == 4 else np.uint64
        panel[r : r + 1, c : c + 1].view(utype)[...] ^= utype(1 << bit)
