"""Fault-tolerant parallel experiment runtime.

The figure sweeps of the paper — shape contours (Fig. 8), core-count
speedups (Fig. 9), scaling series (Figs. 10-12), trace profiles
(Fig. 7) — are all grids of independent, deterministic cells. This
package turns each cell into an :class:`~repro.runtime.task.ExperimentTask`
(content-hashed identity, derived seed), fans grids over a process pool
with deterministic sharding (:class:`~repro.runtime.executor.ExperimentRuntime`),
memoizes completed cells on disk (:class:`~repro.runtime.cache.ResultCache`),
and emits machine-readable ``BENCH_*.json`` rows
(:mod:`repro.runtime.jsonout`).

Campaigns are *survivable*: worker exceptions are captured per task in
:class:`~repro.runtime.outcome.TaskOutcome` envelopes, transient
failures retry under a deterministic backoff policy
(:class:`~repro.runtime.executor.RetryPolicy`), crashed or hung pools
are rebuilt (degrading to inline execution when rebuilding keeps
failing), completed rows checkpoint to the cache as they finish, and
``on_error="collect"`` turns a run into a
:class:`~repro.runtime.outcome.RunReport` instead of an exception. All
of it is drivable on demand through :mod:`repro.runtime.faults`.

Guarantees the tests pin:

* rows come back in input order, byte-identical for any worker count —
  including runs that retried or recovered along the way;
* a warm cache answers a repeated grid without executing anything, and
  an interrupted grid re-executes only its missing cells;
* task ids are stable content hashes — same cell, same id, any process.
"""

from repro.runtime.cache import CACHE_SCHEMA, CacheStats, ResultCache
from repro.runtime.deadline import Deadline
from repro.runtime.executor import ExperimentRuntime, RetryPolicy, RuntimeStats
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    NumericFaultInjector,
    NumericFaultPlan,
    NumericFaultRule,
)
from repro.runtime.jsonout import (
    BENCH_SCHEMA,
    bench_payload,
    rows_from_report,
    write_bench_json,
)
from repro.runtime.restart import RestartPolicy, RestartTracker
from repro.runtime.outcome import (
    IncompleteRunError,
    RunReport,
    TaskExecutionError,
    TaskOutcome,
    ensure_rows,
)
from repro.runtime.task import (
    MACHINE_FACTORIES,
    ExperimentTask,
    machine_key,
    prediction_from_row,
    run_task,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "Deadline",
    "ExperimentRuntime",
    "RetryPolicy",
    "RuntimeStats",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "NumericFaultInjector",
    "NumericFaultPlan",
    "NumericFaultRule",
    "BENCH_SCHEMA",
    "bench_payload",
    "rows_from_report",
    "write_bench_json",
    "RestartPolicy",
    "RestartTracker",
    "IncompleteRunError",
    "RunReport",
    "TaskExecutionError",
    "TaskOutcome",
    "ensure_rows",
    "MACHINE_FACTORIES",
    "ExperimentTask",
    "machine_key",
    "prediction_from_row",
    "run_task",
]
