"""Parallel experiment runtime: grids of figure cells over processes.

The figure sweeps of the paper — shape contours (Fig. 8), core-count
speedups (Fig. 9), scaling series (Figs. 10-12), trace profiles
(Fig. 7) — are all grids of independent, deterministic cells. This
package turns each cell into an :class:`~repro.runtime.task.ExperimentTask`
(content-hashed identity, derived seed), fans grids over a process pool
with deterministic sharding (:class:`~repro.runtime.executor.ExperimentRuntime`),
memoizes completed cells on disk (:class:`~repro.runtime.cache.ResultCache`),
and emits machine-readable ``BENCH_*.json`` rows
(:mod:`repro.runtime.jsonout`).

Guarantees the tests pin:

* rows come back in input order, byte-identical for any worker count;
* a warm cache answers a repeated grid without executing anything;
* task ids are stable content hashes — same cell, same id, any process.
"""

from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.executor import ExperimentRuntime, RuntimeStats
from repro.runtime.jsonout import (
    BENCH_SCHEMA,
    bench_payload,
    rows_from_report,
    write_bench_json,
)
from repro.runtime.task import (
    MACHINE_FACTORIES,
    ExperimentTask,
    machine_key,
    prediction_from_row,
    run_task,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "ExperimentRuntime",
    "RuntimeStats",
    "BENCH_SCHEMA",
    "bench_payload",
    "rows_from_report",
    "write_bench_json",
    "MACHINE_FACTORIES",
    "ExperimentTask",
    "machine_key",
    "prediction_from_row",
    "run_task",
]
