"""Monotonic deadline arithmetic shared by the serve and shard layers.

A deadline is a single absolute instant on ``time.monotonic()``'s
clock. Every layer that enforces one — the serve front door shedding
already-expired requests, the dispatcher discarding stale work, the
sharded executor bounding its futures wait, the client blocking on a
response handle — converts to this form once at submit time and then
compares against the same clock, so a request's budget is spent exactly
once no matter how many layers it crosses.

The arithmetic is deliberately tiny and total: ``remaining()`` never
goes negative (waits take it directly), ``expired()`` is a pure
comparison, and both accept an explicit ``now`` so property tests can
drive them with a fake clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Deadline:
    """An absolute instant on the monotonic clock.

    Attributes
    ----------
    at:
        ``time.monotonic()`` value at which the budget is spent.
    budget:
        The original relative budget in seconds (kept for error
        payloads; plays no part in the arithmetic).
    """

    at: float
    budget: float | None = None

    @classmethod
    def after(cls, budget: float, *, now: float | None = None) -> "Deadline":
        """The deadline ``budget`` seconds from ``now`` (default: the clock)."""
        if now is None:
            now = time.monotonic()
        return cls(at=now + budget, budget=budget)

    def remaining(self, now: float | None = None) -> float:
        """Seconds left before expiry, clamped at zero."""
        if now is None:
            now = time.monotonic()
        return max(0.0, self.at - now)

    def expired(self, now: float | None = None) -> bool:
        """Whether the instant has passed (``remaining() == 0``)."""
        if now is None:
            now = time.monotonic()
        return now >= self.at
