"""On-disk memoization of completed experiment tasks.

One JSON file per task id. The id is a content hash over every
result-determining task field (machine, engine, shape, cores, plan
parameters — see :class:`~repro.runtime.task.ExperimentTask.task_id`),
so a cache hit is definitionally the same experiment. Writes are atomic
(temp file + ``os.replace``) so a crashed or killed run never leaves a
truncated row for a later run to trip over.

Entries are stored in a versioned envelope —
``{"schema": "cake-cache/v2", "row": {...}}`` — and an entry whose
schema is missing or unknown is treated as a miss (then overwritten by
the fresh store), so old caches upgrade in place without manual
clearing. A file that fails to parse at all is **quarantined** to
``<task_id>.corrupt`` rather than deleted: the slot is immediately
reusable, but the evidence survives for postmortems of what wrote it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Version tag stored with every entry. Bump when the envelope (or the
#: meaning of rows) changes; readers treat any other value as a miss.
CACHE_SCHEMA = "cake-cache/v2"


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    stale: int = 0


class ResultCache:
    """Directory-backed map from task id to result row."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, task_id: str) -> Path:
        return self.root / f"{task_id}.json"

    def _quarantine_path(self, task_id: str) -> Path:
        return self.root / f"{task_id}.corrupt"

    def load(self, task_id: str) -> dict[str, Any] | None:
        """The cached row for ``task_id``, or None.

        A file that does not parse (interrupted legacy write, stray
        garbage) counts as a miss and is quarantined to
        ``<task_id>.corrupt`` for inspection; an entry with a missing or
        unknown schema version counts as a stale miss and is left to be
        overwritten by the fresh store.
        """
        path = self._path(task_id)
        try:
            with path.open("r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.replace(self._quarantine_path(task_id))
            except OSError:
                path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != CACHE_SCHEMA
            or not isinstance(doc.get("row"), dict)
        ):
            self.stats.stale += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return doc["row"]

    def store(self, task_id: str, row: dict[str, Any]) -> None:
        """Persist ``row`` atomically under ``task_id``."""
        payload = json.dumps(
            {"schema": CACHE_SCHEMA, "row": row}, sort_keys=True, indent=1
        )
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{task_id}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self._path(task_id))
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> None:
        """Remove every cached row (and any quarantined entries)."""
        for pattern in ("*.json", "*.corrupt"):
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)
