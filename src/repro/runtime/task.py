"""Experiment tasks: one deterministic unit of figure work.

An :class:`ExperimentTask` names everything that determines its result —
machine preset, engine, problem shape, core count, plan parameters — and
nothing else. Its ``task_id`` is a content hash of exactly those fields,
which makes it simultaneously the on-disk cache key
(:mod:`repro.runtime.cache`) and the derivation root for the task's
``seed``. Two tasks with the same id are the same experiment; the runtime
exploits that for memoization and for byte-identical parallel execution.

Tasks must stay picklable and cheap to ship: workers receive the task,
resolve the machine preset locally, and run the analytic engines there.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.machines.extrapolate import extrapolated_machine
from repro.machines.presets import (
    amd_ryzen_9_5950x,
    arm_cortex_a53,
    intel_i9_10900k,
)
from repro.machines.spec import MachineSpec

#: Machine presets a task may name. Keys are the specs' own ``name``
#: fields, so ``machine_key(spec)`` round-trips through task encoding.
MACHINE_FACTORIES: dict[str, Callable[[], MachineSpec]] = {
    intel_i9_10900k().name: intel_i9_10900k,
    amd_ryzen_9_5950x().name: amd_ryzen_9_5950x,
    arm_cortex_a53().name: arm_cortex_a53,
}

#: Task kinds the runtime knows how to execute.
TASK_KINDS = ("predict", "line_profile", "mem_profile")


def machine_key(machine: MachineSpec) -> str:
    """The preset key for ``machine``, or raise if it is not a preset.

    The runtime ships tasks by *name*, not by spec object, so only
    registry machines can be farmed out. Callers holding a modified spec
    should fall back to the direct (non-runtime) code path.
    """
    if machine.name not in MACHINE_FACTORIES:
        raise ConfigurationError(
            f"machine {machine.name!r} is not a runtime preset; "
            f"known: {sorted(MACHINE_FACTORIES)}"
        )
    return machine.name


@dataclass(frozen=True, slots=True)
class ExperimentTask:
    """One memoizable experiment cell.

    Attributes
    ----------
    kind:
        ``"predict"`` (analytic engine walk), ``"line_profile"``
        (line-granularity trace replay), or ``"mem_profile"``
        (object-granularity Figure 7 trace).
    engine:
        ``"cake"`` or ``"goto"``.
    machine:
        A key of :data:`MACHINE_FACTORIES`.
    m, n, k:
        Problem shape.
    cores:
        Cores to use (``None``: all of the machine's).
    alpha:
        CAKE aspect-factor override (plan parameter; ``None`` derives it).
    extrapolate_cores:
        When set, the machine is grown to this many cores with
        :func:`~repro.machines.extrapolate.extrapolated_machine` before
        running (the dotted-line points of Figures 10-12).
    """

    kind: str
    engine: str
    machine: str
    m: int
    n: int
    k: int
    cores: int | None = None
    alpha: float | None = None
    extrapolate_cores: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ConfigurationError(
                f"unknown task kind {self.kind!r}; expected one of {TASK_KINDS}"
            )
        if self.engine not in ("cake", "goto"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'cake' or 'goto'"
            )
        if self.machine not in MACHINE_FACTORIES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; "
                f"known: {sorted(MACHINE_FACTORIES)}"
            )

    @property
    def task_id(self) -> str:
        """Content hash over every result-determining field."""
        payload = json.dumps(
            asdict(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:20]

    @property
    def seed(self) -> int:
        """Deterministic per-task seed, derived from the task id.

        The analytic engines are deterministic and never consume it, but
        every task carries one so stochastic task kinds (sampled traces,
        jittered sweeps) inherit reproducibility by construction; it is
        recorded in the result row either way.
        """
        return int(self.task_id[:12], 16)

    def resolve_machine(self) -> MachineSpec:
        """Build the concrete spec this task runs on."""
        base = MACHINE_FACTORIES[self.machine]()
        if self.extrapolate_cores is not None:
            return extrapolated_machine(base, self.extrapolate_cores)
        return base


def run_task(task: ExperimentTask) -> dict[str, Any]:
    """Execute one task, returning a JSON-serializable result row.

    Rows are pure functions of the task (no wall-clock, no randomness),
    which is what makes parallel execution byte-identical to serial and
    cached rows indistinguishable from fresh ones.
    """
    spec = task.resolve_machine()
    row: dict[str, Any] = {
        "task_id": task.task_id,
        "seed": task.seed,
        "kind": task.kind,
        "engine": task.engine,
        "machine": task.machine,
        "m": task.m,
        "n": task.n,
        "k": task.k,
        "cores": task.cores,
        "alpha": task.alpha,
        "extrapolate_cores": task.extrapolate_cores,
    }
    if task.kind == "predict":
        from repro.perfmodel.predict import predict_cake, predict_goto

        if task.engine == "cake":
            pred = predict_cake(
                spec, task.m, task.n, task.k,
                cores=task.cores, alpha=task.alpha,
            )
        else:
            pred = predict_goto(
                spec, task.m, task.n, task.k, cores=task.cores
            )
        row.update(
            machine_name=pred.machine_name,
            active_cores=pred.cores,
            gflops=pred.gflops,
            seconds=pred.seconds,
            dram_gb_per_s=pred.dram_gb_per_s,
            bound_blocks=dict(pred.bound_blocks),
            plan_summary=dict(pred.plan_summary),
        )
    elif task.kind == "line_profile":
        from repro.memsim.linear import line_profile_cake, line_profile_goto

        fn = line_profile_cake if task.engine == "cake" else line_profile_goto
        prof = fn(spec, task.m, task.n, task.k, cores=task.cores)
        row.update(
            serves=dict(prof.serves),
            dram_bytes=prof.dram_bytes,
            dram_fraction=prof.dram_fraction,
        )
    else:  # mem_profile
        from repro.memsim.profile import profile_cake, profile_goto

        fn = profile_cake if task.engine == "cake" else profile_goto
        prof = fn(spec, task.m, task.n, task.k, cores=task.cores)
        row.update(
            stall_profile=dict(prof.stall_profile),
            l1_hits=prof.l1_hits,
            l2_hits=prof.l2_hits,
            dram_accesses=prof.dram_accesses,
            dram_bytes=prof.dram_bytes,
            local_stall_fraction=prof.local_stall_fraction,
        )
    return row


def prediction_from_row(row: dict[str, Any]):
    """Rebuild a :class:`~repro.perfmodel.predict.PerfPrediction` from a
    ``"predict"`` result row (the inverse of :func:`run_task`'s packing)."""
    from repro.perfmodel.predict import PerfPrediction

    return PerfPrediction(
        engine=row["engine"],
        machine_name=row["machine_name"],
        cores=row["active_cores"],
        m=row["m"],
        n=row["n"],
        k=row["k"],
        gflops=row["gflops"],
        seconds=row["seconds"],
        dram_gb_per_s=row["dram_gb_per_s"],
        bound_blocks=dict(row["bound_blocks"]),
        plan_summary=dict(row["plan_summary"]),
    )
