"""``cake-tune``: drive the plan autotuner from the command line.

Tunes one or more shapes and prints, per shape, where the answer came
from (cache hit vs fresh search), the winning override, and the
measured tuned-vs-analytic speedup. Winners persist in the plan cache
(``$CAKE_TUNE_CACHE`` or ``~/.cache/cake-tune``), so a second
invocation — or any engine constructed with ``tuned=True``, or a
server started with ``tune=True`` — skips the search.

Examples::

    cake-tune 256x1024x2048
    cake-tune 512x512x512 256x1024x2048 --engine cake --repeats 3
    cake-tune 384x1536x3072 --cache /tmp/plans --json -
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.errors import CakeError
from repro.machines import PRESET_NAMES, preset
from repro.tune.cache import default_cache_root
from repro.tune.space import TuneKey
from repro.tune.tuner import PlanTuner, TuneConfig


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().replace(",", "x").split("x")
    if len(parts) == 1:
        parts = parts * 3  # a bare N means the NxNxN cube
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"shape must be MxNxK (or a bare N for a cube), got {text!r}"
        )
    try:
        m, n, k = (int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(f"non-integer shape {text!r}") from None
    if min(m, n, k) < 1:
        raise argparse.ArgumentTypeError(f"shape extents must be >= 1: {text!r}")
    return m, n, k


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cake-tune",
        description="Search, validate, and cache faster-but-bit-identical "
        "execution plans per shape.",
    )
    parser.add_argument(
        "shapes",
        type=_parse_shape,
        nargs="+",
        metavar="MxNxK",
        help="one or more problem shapes (a bare N is the NxNxN cube)",
    )
    parser.add_argument(
        "--engine", choices=("cake", "goto"), default="cake"
    )
    parser.add_argument(
        "--machine",
        default="intel-i9-10900k",
        choices=PRESET_NAMES,
        help="machine preset the plan is priced on",
    )
    parser.add_argument(
        "--cores", type=int, default=None, help="modelled cores (default: all)"
    )
    parser.add_argument(
        "--dtype", default="float32", help="operand dtype (default float32)"
    )
    parser.add_argument(
        "--backend", default="numpy", help="compute backend to validate under"
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="shard processes to tune for"
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help=f"plan cache directory (default {default_cache_root()})",
    )
    parser.add_argument(
        "--top-k", type=int, default=3, help="model-ranked shapes to validate"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timed repeats per candidate"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="re-search even on a cache hit (the fresh winner overwrites)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write result rows as JSON ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    machine = preset(args.machine)
    config = TuneConfig(
        cache_root=args.cache,
        top_k=args.top_k,
        repeats=args.repeats,
        use_cache=not args.force,
    )
    tuner = PlanTuner(machine, config)

    rows = []
    for m, n, k in args.shapes:
        key = TuneKey(
            engine=args.engine,
            m=m,
            n=n,
            k=k,
            dtype=np.dtype(args.dtype).str,
            machine=machine.name,
            cores=args.cores,
            backend=args.backend,
            processes=args.processes,
        )
        try:
            result = tuner.tune(key)
        except CakeError as err:
            print(f"{key.describe()}: {err}", file=sys.stderr)
            return 1
        speedup = result.speedup
        winner = (
            "analytic plan (no candidate beat it)"
            if result.override is None
            else json.dumps(
                {
                    f: v
                    for f, v in result.override.as_dict().items()
                    if v is not None
                }
            )
        )
        print(
            f"{key.describe():<36s} {result.source:<6s} "
            f"{'' if speedup is None else f'{speedup:5.2f}x ':<7s}-> {winner}"
        )
        rows.append(
            {
                "key": key.as_dict(),
                "key_id": key.key_id,
                "source": result.source,
                "override": (
                    None
                    if result.override is None
                    else result.override.as_dict()
                ),
                "analytic_seconds": result.analytic_seconds,
                "tuned_seconds": result.tuned_seconds,
                "speedup": speedup,
                "validated": result.validated,
            }
        )

    print(f"plan cache: {tuner.cache.root} ({len(tuner.cache)} entries)")
    if args.json == "-":
        json.dump(rows, sys.stdout, indent=2)
        print()
    elif args.json is not None:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(rows, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
