"""The plan autotuner: model-ranked search, bit-exact timed validation.

The pipeline per :class:`~repro.tune.space.TuneKey`:

1. **Cache probe** — a prior winner (including the "analytic plan won"
   marker) skips the search entirely; this is what amortizes tuning
   across served traffic.
2. **Cost-model ranking** — every plan-shape candidate
   (:func:`~repro.tune.space.plan_shape_candidates`) is priced by the
   vectorized batch analyzer (~ms per candidate even at Fig. 10 scale),
   and its modeled external traffic is scored against the
   memory-independent communication lower bound
   ``2K*sqrt(MN) + MN`` for reference. The top-K shapes survive.
3. **Timed validation** — the surviving shapes are crossed with the
   host execution variants (``strips``/``workers`` — invisible to the
   model, which prices modelled cores) and executed on synthesized
   operands, best-of-``repeats`` wall clock. Every candidate's C is
   asserted **bit-identical** to the analytic plan's; a mismatch
   rejects the candidate, never degrades the contract.
4. **Persist** — the fastest valid candidate (or the analytic marker
   when nothing beats it) lands in the versioned plan cache.

The model ranks only plan-*shape* dimensions. Host-granularity knobs
are decided exclusively by step 3: the analytic model would price a
coarser strip split as *fewer active cores* (slower), while on a host
with fewer real cores than the model it is strictly faster — exactly
the gap between modelled machines and the machine running the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.gemm.plan import CakePlan, GotoPlan, PlanOverride
from repro.gemm.sharded import ipc_lower_bound_elements
from repro.machines.spec import MachineSpec
from repro.schedule.space import ComputationSpace
from repro.tune.cache import PlanCache
from repro.tune.space import (
    TuneKey,
    execution_variants,
    plan_shape_candidates,
)


@dataclass(frozen=True, slots=True)
class TuneConfig:
    """Knobs for one tuner instance.

    ``min_speedup`` is the adoption bar: a candidate must beat the
    analytic wall clock by at least this factor or the analytic marker
    is persisted instead (1.0 adopts any strict improvement).
    ``max_surface_elements`` bounds the operands the validator is
    willing to synthesize — beyond it the analytic marker is stored
    unvalidated rather than allocating huge throwaway matrices.
    """

    cache_root: "Path | str | None" = None
    top_k: int = 3
    repeats: int = 2
    min_speedup: float = 1.0
    use_cache: bool = True
    max_surface_elements: int = 1 << 26


@dataclass(frozen=True, slots=True)
class CandidateReport:
    """One candidate's journey through the pipeline (for audits)."""

    override: dict
    modeled_seconds: float | None = None
    bound_ratio: float | None = None
    timed_seconds: float | None = None
    exact: bool | None = None

    def as_dict(self) -> dict:
        return {
            "override": self.override,
            "modeled_seconds": self.modeled_seconds,
            "bound_ratio": self.bound_ratio,
            "timed_seconds": self.timed_seconds,
            "exact": self.exact,
        }


@dataclass(frozen=True, slots=True)
class TuneResult:
    """Outcome of one tune: the winner plus its evidence."""

    key: TuneKey
    override: PlanOverride | None
    source: str  # "cache" | "search"
    analytic_seconds: float | None = None
    tuned_seconds: float | None = None
    validated: bool = True
    candidates: tuple[CandidateReport, ...] = field(default=())

    @property
    def speedup(self) -> float | None:
        """Measured tuned-over-analytic wall-clock ratio (>1 is faster)."""
        if not self.analytic_seconds or not self.tuned_seconds:
            return None
        return self.analytic_seconds / self.tuned_seconds

    def as_row_extra(self) -> dict[str, Any]:
        """The evidence persisted alongside the winner."""
        return {
            "validated": self.validated,
            "timed": {
                "analytic_seconds": self.analytic_seconds,
                "tuned_seconds": self.tuned_seconds,
                "speedup": self.speedup,
            },
            "candidates": [c.as_dict() for c in self.candidates],
        }


class PlanTuner:
    """Autotuner for one machine (cache shared across keys)."""

    def __init__(
        self, machine: MachineSpec, config: TuneConfig | None = None
    ) -> None:
        self.machine = machine
        self.config = config if config is not None else TuneConfig()
        self.cache = PlanCache(self.config.cache_root)

    # -- public API ----------------------------------------------------------

    def tune(self, key: TuneKey) -> TuneResult:
        """Resolve ``key``'s plan: cache hit, or search + validate + store."""
        if key.machine != self.machine.name:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"tune key names machine {key.machine!r} but this tuner "
                f"prices {self.machine.name!r}"
            )
        if self.config.use_cache:
            row = self.cache.load(key)
            if row is not None:
                doc = row.get("override")
                timed = row.get("timed") or {}
                return TuneResult(
                    key=key,
                    override=(
                        None if doc is None else PlanOverride.from_dict(doc)
                    ),
                    source="cache",
                    analytic_seconds=timed.get("analytic_seconds"),
                    tuned_seconds=timed.get("tuned_seconds"),
                    validated=bool(row.get("validated", True)),
                )
        result = self._search(key)
        self.cache.store(key, result.override, result.as_row_extra())
        return result

    # -- the pipeline --------------------------------------------------------

    def _search(self, key: TuneKey) -> TuneResult:
        space = ComputationSpace(key.m, key.n, key.k)
        base: "CakePlan | GotoPlan"
        if key.engine == "cake":
            base = CakePlan.from_problem(self.machine, space, cores=key.cores)
        else:
            base = GotoPlan.from_problem(self.machine, space, cores=key.cores)

        ranked = self._rank(key, space, plan_shape_candidates(key.engine, base))
        surface = key.m * key.k + key.k * key.n + key.m * key.n
        if surface > self.config.max_surface_elements:
            # Too big to synthesize throwaway operands for: keep the
            # analytic plan, but persist the marker so the decision (and
            # the model ranking evidence) is not recomputed per request.
            return TuneResult(
                key=key,
                override=None,
                source="search",
                validated=False,
                candidates=tuple(report for report, _ in ranked),
            )
        return self._validate(key, ranked)

    def _rank(
        self, key: TuneKey, space: ComputationSpace, shapes: list[PlanOverride]
    ) -> list[tuple[CandidateReport, PlanOverride]]:
        """Price every plan shape with the batch analyzer; best first.

        The identity override (index 0 by construction) is always kept
        in front of the ``top_k`` cut so the validation stage times the
        analytic shape's execution variants too.
        """
        from repro.analysis.batch import analyze_cake_batch, analyze_goto_batch

        bound = ipc_lower_bound_elements(key.m, key.n, key.k, 1)
        reports: list[tuple[float, CandidateReport, PlanOverride]] = []
        for override in shapes:
            if key.engine == "cake":
                plan = CakePlan.from_problem(
                    self.machine, space, cores=key.cores, override=override
                )
                run = analyze_cake_batch(
                    self.machine,
                    space,
                    plan=plan,
                    schedule=override.schedule or "k-first",
                )
            else:
                plan = GotoPlan.from_problem(
                    self.machine, space, cores=key.cores, override=override
                )
                run = analyze_goto_batch(self.machine, space, plan=plan)
            reports.append(
                (
                    run.seconds,
                    CandidateReport(
                        override=override.as_dict(),
                        modeled_seconds=run.seconds,
                        bound_ratio=run.counters.ext_total_elements / bound,
                    ),
                    override,
                )
            )
        identity, rest = reports[0], reports[1:]
        rest.sort(key=lambda item: item[0])
        kept = [identity] + rest[: max(0, self.config.top_k - 1)]
        return [(item[1], item[2]) for item in kept]

    def _validate(
        self,
        key: TuneKey,
        ranked: list[tuple[CandidateReport, PlanOverride]],
    ) -> TuneResult:
        """Time the survivors × execution variants; assert bit-exactness."""
        rng = np.random.default_rng(int(key.key_id[:12], 16))
        dtype = np.dtype(key.dtype)
        a = rng.standard_normal((key.m, key.k)).astype(dtype)
        b = rng.standard_normal((key.k, key.n)).astype(dtype)

        analytic = self._engine(key, None)
        analytic_c, analytic_seconds = self._timed(analytic, a, b)

        reports = [report for report, _ in ranked]
        best: tuple[float, PlanOverride] | None = None
        for _, shape in ranked:
            for strips, workers in execution_variants(key.engine):
                candidate = replace(shape, strips=strips, workers=workers)
                if candidate == PlanOverride():
                    continue  # that IS the analytic baseline
                engine = self._engine(key, candidate)
                c, seconds = self._timed(engine, a, b)
                exact = bool(np.array_equal(c, analytic_c))
                reports.append(
                    CandidateReport(
                        override=candidate.as_dict(),
                        timed_seconds=seconds,
                        exact=exact,
                    )
                )
                if not exact:
                    continue  # rejected: the contract outranks speed
                if best is None or seconds < best[0]:
                    best = (seconds, candidate)

        if best is None or analytic_seconds / best[0] < self.config.min_speedup:
            return TuneResult(
                key=key,
                override=None,
                source="search",
                analytic_seconds=analytic_seconds,
                tuned_seconds=analytic_seconds,
                candidates=tuple(reports),
            )
        return TuneResult(
            key=key,
            override=best[1],
            source="search",
            analytic_seconds=analytic_seconds,
            tuned_seconds=best[0],
            candidates=tuple(reports),
        )

    # -- helpers -------------------------------------------------------------

    def _engine(self, key: TuneKey, override: PlanOverride | None):
        from repro.gemm.cake import CakeGemm
        from repro.gemm.goto import GotoGemm

        kwargs: dict[str, Any] = {
            "cores": key.cores,
            "backend": key.backend,
            "plan": override,
            # Explicit False, not the inherit-default None: the analytic
            # baseline (plan=None) must never consult the process-wide
            # tune default, or a tune-in-progress would recurse into
            # tuning its own key.
            "tuned": False,
        }
        if key.processes > 1:
            kwargs["processes"] = key.processes
        cls = CakeGemm if key.engine == "cake" else GotoGemm
        return cls(self.machine, **kwargs)

    def _timed(self, engine, a, b) -> tuple[np.ndarray, float]:
        """Best-of-``repeats`` wall clock for one engine on (a, b)."""
        best = float("inf")
        c = None
        for _ in range(max(1, self.config.repeats)):
            start = time.perf_counter()
            run = engine.multiply(a, b)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
            c = run.c
        assert c is not None
        return c, best


# -- process defaults + the engines' resolution hook -------------------------

_DEFAULT_TUNE: TuneConfig | None = None

#: Resolved (cache_root, key_id) -> override memo, so `tuned=True`
#: engines pay the disk probe once per process per key.
_RESOLVED: dict[tuple[str, str], PlanOverride | None] = {}


def set_default_tune(config: "TuneConfig | bool | None") -> None:
    """Set the process-wide config `tuned=True` engines use.

    ``True`` installs defaults, ``False``/``None`` clears. This is what
    ``cake-bench --tuned`` flips.
    """
    global _DEFAULT_TUNE
    if config is True:
        _DEFAULT_TUNE = TuneConfig()
    elif config is False or config is None:
        _DEFAULT_TUNE = None
    else:
        _DEFAULT_TUNE = config
    _RESOLVED.clear()


def get_default_tune() -> TuneConfig | None:
    return _DEFAULT_TUNE


def clear_resolution_memo() -> None:
    """Forget in-process resolutions (tests; disk cache is untouched)."""
    _RESOLVED.clear()


def tuned_override(
    machine: MachineSpec,
    *,
    engine: str,
    space: ComputationSpace,
    dtype,
    cores: int | None,
    backend: str,
    processes: int,
    config: TuneConfig | None = None,
) -> PlanOverride | None:
    """Resolve the tuned override for one multiply (the engines' hook).

    Cache hits (memory, then disk) are cheap; a cold key tunes
    synchronously — `tuned=True` is an explicit opt-in to paying that
    cost once. The serve layer never calls this on the request path; it
    uses :class:`~repro.tune.service.PlanService` instead.
    """
    config = config or get_default_tune() or TuneConfig()
    key = TuneKey(
        engine=engine,
        m=space.m,
        n=space.n,
        k=space.k,
        dtype=np.dtype(dtype).str,
        machine=machine.name,
        cores=cores,
        backend=backend,
        processes=processes,
    )
    tuner = PlanTuner(machine, config)
    memo_key = (str(tuner.cache.root), key.key_id)
    if config.use_cache and memo_key in _RESOLVED:
        return _RESOLVED[memo_key]
    result = tuner.tune(key)
    _RESOLVED[memo_key] = result.override
    return result.override
