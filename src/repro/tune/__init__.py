"""repro.tune — the online plan autotuner and its persistent plan cache.

The analytic plan (Section 3's closed forms) is always correct and
always available; this package finds, per
(shape-class, machine, backend, processes), a **bit-identical** faster
execution of it: model-ranked plan-shape candidates, timed validation
of host execution variants, and a versioned on-disk cache so served
traffic amortizes one tune across millions of requests.

Entry points: engines take ``tuned=True`` / ``plan=PlanOverride(...)``,
the serve dispatcher resolves through :class:`PlanService`, and the
``cake-tune`` CLI drives :class:`PlanTuner` directly.
"""

from repro.tune.cache import TUNER_SCHEMA, PlanCache, default_cache_root
from repro.tune.service import PlanService
from repro.tune.space import TuneKey, execution_variants, plan_shape_candidates
from repro.tune.tuner import (
    CandidateReport,
    PlanTuner,
    TuneConfig,
    TuneResult,
    clear_resolution_memo,
    get_default_tune,
    set_default_tune,
    tuned_override,
)

__all__ = [
    "TUNER_SCHEMA",
    "CandidateReport",
    "PlanCache",
    "PlanService",
    "PlanTuner",
    "TuneConfig",
    "TuneKey",
    "TuneResult",
    "clear_resolution_memo",
    "default_cache_root",
    "execution_variants",
    "get_default_tune",
    "plan_shape_candidates",
    "set_default_tune",
    "tuned_override",
]
