"""Off-request-path plan resolution for the serve layer.

The dispatcher must never pay a tune on a request: a cold key costs
model ranking plus timed validation (tens to hundreds of ms), which
would blow a request deadline. :class:`PlanService` therefore resolves
in three tiers, each visible in its counters:

1. **memory** — a key resolved earlier this process returns instantly;
2. **disk** — a prior process's winner (or analytic marker) loads in
   one small JSON read, still cheap enough for the request path;
3. **background** — a genuinely cold key enqueues one daemon tune
   thread and returns ``None``: the request executes the analytic plan
   (always correct — tuned plans are bit-identical by contract), and
   some later request in the class picks the winner up from tier 1.
"""

from __future__ import annotations

import threading

from repro.gemm.plan import PlanOverride
from repro.machines.spec import MachineSpec
from repro.serve.classifier import ShapeClass
from repro.tune.space import TuneKey
from repro.tune.tuner import PlanTuner, TuneConfig


class PlanService:
    """Nonblocking tuned-plan resolution, one instance per server."""

    def __init__(
        self,
        machine: MachineSpec,
        config: TuneConfig | None = None,
        *,
        synchronous: bool = False,
    ) -> None:
        self.machine = machine
        self.tuner = PlanTuner(machine, config)
        self.synchronous = synchronous
        self._lock = threading.Lock()
        self._resolved: dict[str, PlanOverride | None] = {}
        self._pending: dict[str, threading.Thread] = {}
        self._hits = 0
        self._misses = 0
        self._completed = 0

    # -- request path --------------------------------------------------------

    def resolve(
        self,
        shape_class: ShapeClass,
        *,
        backend: str = "numpy",
        processes: int = 1,
    ) -> PlanOverride | None:
        """The tuned override for this class, or None (serve analytic).

        ``None`` means either "not tuned yet" (a background tune is now
        in flight) or "the analytic plan won" — the dispatcher treats
        both identically, which is the point: analytic is always a
        correct answer.
        """
        key = TuneKey(
            engine=shape_class.engine,
            m=shape_class.m,
            n=shape_class.n,
            k=shape_class.k,
            dtype=shape_class.dtype,
            machine=self.machine.name,
            cores=shape_class.cores,
            backend=backend,
            processes=processes,
        )
        kid = key.key_id
        with self._lock:
            if kid in self._resolved:
                self._hits += 1
                return self._resolved[kid]
            if kid in self._pending:
                self._misses += 1
                return None

        hit, override = self.tuner.cache.load_override(key)
        if hit:
            with self._lock:
                self._resolved[kid] = override
                self._hits += 1
            return override

        if self.synchronous:
            result = self.tuner.tune(key)
            with self._lock:
                self._resolved[kid] = result.override
                self._completed += 1
                self._hits += 1
            return result.override

        thread = threading.Thread(
            target=self._tune_in_background,
            args=(key,),
            name=f"cake-tune-{key.describe()}",
            daemon=True,
        )
        with self._lock:
            if kid not in self._pending:  # lost race: another request won
                self._pending[kid] = thread
                thread.start()
            self._misses += 1
        return None

    # -- background ----------------------------------------------------------

    def _tune_in_background(self, key: TuneKey) -> None:
        try:
            result = self.tuner.tune(key)
            override = result.override
        except Exception:
            # A failed tune must never take the server down; the class
            # simply keeps its (always-correct) analytic plan.
            override = None
        with self._lock:
            self._resolved[key.key_id] = override
            self._pending.pop(key.key_id, None)
            self._completed += 1

    def drain(self, timeout: float | None = None) -> None:
        """Wait for in-flight background tunes (shutdown and tests)."""
        with self._lock:
            threads = list(self._pending.values())
        for thread in threads:
            thread.join(timeout)

    # -- observability -------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Tuner counters merged into :class:`ServerStats`."""
        with self._lock:
            return {
                "tuned_hits": self._hits,
                "tuned_misses": self._misses,
                "tunes_pending": len(self._pending),
                "tunes_completed": self._completed,
            }
