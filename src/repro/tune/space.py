"""The autotuner's identity and search space.

A tune is keyed by everything that decides which plan wins:
the engine kind, the problem extents and dtype (the serve layer's
:class:`~repro.serve.classifier.ShapeClass` key), the machine the plan
is priced on, the modelled core count, and the execution environment
(backend, process count) the timed validation runs under. Two requests
with equal :class:`TuneKey`\\ s are definitionally the same tuning
problem, so the key's content hash is the plan-cache slot — the same
idiom as :meth:`repro.runtime.task.ExperimentTask.task_id`.

The candidate grid is deliberately conservative:

* ``alpha`` / ``mc`` re-shape the CB block along M and N only — bit-safe
  (no C element's reduction order changes);
* ``kc`` is **pinned to the analytic value** in every candidate:
  re-blocking K regroups the float accumulation and would break the
  bit-exactness contract the validator asserts;
* schedule variants are limited to the reduction-complete orders
  (``k-first``, ``naive``) — the MOMMS loop-order taxonomy's spilling
  variants (m-first/n-first) violate CAKE's no-partial-results
  contract, so they are excluded from the space rather than searched
  and rejected;
* ``strips`` / ``workers`` are host execution knobs the analytic model
  cannot see (it prices modelled cores, not host threads), so they are
  never ranked by the cost model — only crossed into the timed
  validation stage.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gemm.plan import MAX_ALPHA, CakePlan, GotoPlan, PlanOverride

#: CB aspect factors tried for CAKE candidates (``None`` keeps the
#: bandwidth-derived analytic alpha).
ALPHA_CANDIDATES: tuple[float | None, ...] = (None, 2.0, 4.0, 8.0)

#: Multipliers applied to the analytic ``mc`` (1 keeps the derived value).
MC_SCALES: tuple[int, ...] = (1, 2, 4)

#: Reduction-complete block orders; see the module docstring for why the
#: spilling variants are structurally excluded.
SCHEDULE_CANDIDATES: tuple[str, ...] = ("k-first", "naive")

#: Multipliers applied to the analytic GOTO ``nc``.
NC_SCALES: tuple[int, ...] = (1, 2)


@dataclass(frozen=True, slots=True)
class TuneKey:
    """Identity of one tuning problem (one plan-cache slot)."""

    engine: str
    m: int
    n: int
    k: int
    dtype: str
    machine: str
    cores: int | None
    backend: str
    processes: int

    def __post_init__(self) -> None:
        if self.engine not in ("cake", "goto"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'cake' or 'goto'"
            )
        for name in ("m", "n", "k"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"tune key {name} must be positive, got {getattr(self, name)}"
                )
        if self.processes < 1:
            raise ConfigurationError(
                f"tune key processes must be >= 1, got {self.processes}"
            )

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "dtype": self.dtype,
            "machine": self.machine,
            "cores": self.cores,
            "backend": self.backend,
            "processes": self.processes,
        }

    @property
    def key_id(self) -> str:
        """Content hash naming this key's plan-cache slot."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def describe(self) -> str:
        """Compact human form, e.g. ``cake:256x1024x2048:f4:blas-group``."""
        return (
            f"{self.engine}:{self.m}x{self.n}x{self.k}:"
            f"{self.dtype.lstrip('<>=|')}:{self.backend}"
            + (f":p{self.processes}" if self.processes > 1 else "")
        )


def plan_shape_candidates(
    engine: str, base: "CakePlan | GotoPlan"
) -> list[PlanOverride]:
    """Plan-shape overrides to rank with the batch-analyzer cost model.

    Every candidate pins ``kc`` at the analytic value (bit-safety — see
    module docstring). The identity override (analytic plan, k-first
    order) leads the list so the execution-variant cross in the
    validation stage always includes the analytic shape.
    """
    seen: set[tuple] = set()
    candidates: list[PlanOverride] = []

    def add(override: PlanOverride) -> None:
        fingerprint = tuple(sorted(override.as_dict().items()))
        if fingerprint not in seen:
            seen.add(fingerprint)
            candidates.append(override)

    add(PlanOverride())
    if engine == "cake":
        assert isinstance(base, CakePlan)
        for alpha in ALPHA_CANDIDATES:
            if alpha is not None and not 0.0 < alpha <= MAX_ALPHA:
                continue
            for scale in MC_SCALES:
                for schedule in SCHEDULE_CANDIDATES:
                    add(
                        PlanOverride(
                            alpha=alpha,
                            mc=base.mc * scale if scale != 1 else None,
                            kc=base.kc,
                            schedule=(
                                None if schedule == "k-first" else schedule
                            ),
                        )
                    )
    else:
        assert isinstance(base, GotoPlan)
        for m_scale in MC_SCALES:
            for n_scale in NC_SCALES:
                add(
                    PlanOverride(
                        mc=base.mc * m_scale if m_scale != 1 else None,
                        nc=base.nc * n_scale if n_scale != 1 else None,
                        kc=base.kc,
                    )
                )
    return candidates


def execution_variants(engine: str) -> list[tuple[int | None, int | None]]:
    """``(strips, workers)`` pairs crossed into timed validation.

    ``strips`` decouples host execution granularity from the modelled
    core count (CAKE only — GOTO's granularity is its ``mc`` strip
    split); ``workers`` adds a threaded variant only when the host has
    more than one CPU, since threads on a single core just add
    scheduling overhead.
    """
    host = os.cpu_count() or 1
    strips_options: list[int | None] = [None]
    if engine == "cake":
        strips_options.append(1)
        if host > 1:
            strips_options.append(host)
    workers_options: list[int | None] = [None]
    if host > 1:
        workers_options.append(host)
    return [(s, w) for s in strips_options for w in workers_options]
