"""The persistent, versioned plan cache.

Storage composes :class:`repro.runtime.cache.ResultCache` — one JSON
file per :class:`~repro.tune.space.TuneKey` content hash, atomic
writes, the ``cake-cache/v2`` envelope, and the ``.corrupt`` quarantine
for unparseable files — and adds a second, *tuner-level* version gate:
every row carries ``"tuner_schema": "cake-tune/v1"``. A row written by
an older (or newer) tuner has a valid envelope but a different schema
tag; applying it would execute a plan chosen under different search
rules, so it is **quarantined to ``<key>.stale`` and reported as a
miss** — never silently applied. The slot is immediately reusable (the
re-tune overwrites it) and the evidence survives for postmortems, the
same contract the envelope gives corrupt files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.gemm.plan import PlanOverride
from repro.runtime.cache import CacheStats, ResultCache
from repro.tune.space import TuneKey

#: Tuner-level schema tag stored in every row. Bump whenever the search
#: space, validation rules, or row layout change; readers quarantine any
#: other value.
TUNER_SCHEMA = "cake-tune/v1"

#: Environment variable overriding the default cache directory.
CACHE_ENV = "CAKE_TUNE_CACHE"


def default_cache_root() -> Path:
    """``$CAKE_TUNE_CACHE`` or ``~/.cache/cake-tune``."""
    import os

    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "cake-tune"


class PlanCache:
    """Directory-backed map from tune key to winning plan override."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self._cache = ResultCache(self.root)
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._stale_schema = 0

    @property
    def stats(self) -> CacheStats:
        """Merged counters: tuner-level hits/misses over envelope-level
        corrupt/stale (an envelope-stale row and a tuner-schema-stale row
        both count as ``stale``)."""
        inner = self._cache.stats
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            corrupt=inner.corrupt,
            stale=inner.stale + self._stale_schema,
        )

    def load(self, key: TuneKey) -> dict[str, Any] | None:
        """The cached row for ``key``, or None.

        Corrupt files follow the envelope's ``.corrupt`` quarantine; a
        row whose ``tuner_schema`` is missing or unknown is quarantined
        to ``.stale`` and misses, so stale winners are re-tuned, never
        applied.
        """
        row = self._cache.load(key.key_id)
        if row is None:
            self._misses += 1
            return None
        if row.get("tuner_schema") != TUNER_SCHEMA:
            path = self.root / f"{key.key_id}.json"
            try:
                path.replace(path.with_suffix(".stale"))
            except OSError:
                path.unlink(missing_ok=True)
            self._stale_schema += 1
            self._misses += 1
            return None
        self._hits += 1
        return row

    def store(
        self, key: TuneKey, override: PlanOverride | None, extra: dict | None = None
    ) -> dict[str, Any]:
        """Persist the winning ``override`` (None = analytic plan won).

        The analytic-winner marker matters: a later lookup still hits,
        so the search is never repeated for a class where the analytic
        plan is already the best known answer.
        """
        row: dict[str, Any] = {
            "tuner_schema": TUNER_SCHEMA,
            "key": key.as_dict(),
            "override": None if override is None else override.as_dict(),
        }
        if extra:
            row.update(extra)
        self._cache.store(key.key_id, row)
        self._stores += 1
        return row

    def load_override(self, key: TuneKey) -> "tuple[bool, PlanOverride | None]":
        """``(hit, override)`` — hit with ``None`` means analytic won."""
        row = self.load(key)
        if row is None:
            return False, None
        doc = row.get("override")
        if doc is None:
            return True, None
        return True, PlanOverride.from_dict(doc)

    def clear(self) -> None:
        """Remove every cached row and quarantined entry."""
        self._cache.clear()
        for path in self.root.glob("*.stale"):
            path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._cache)
