"""LRU cache models.

:class:`LRUCache` is object-granularity: entries are opaque hashable keys
with a byte size, evicted least-recently-used-first until the new entry
fits. This models a cache holding matrix *tiles/panels* and is what the
GEMM-scale traces use.

:class:`SetAssociativeCache` is the classical line-granularity model
(address -> set by index bits, LRU within the set), used where exactness
matters more than speed. Both expose the same counter vocabulary so the
hierarchy can host either.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.util import require_positive


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters shared by both cache models."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    bytes_filled: int = 0
    writeback_bytes: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0


class LRUCache:
    """Fully-associative LRU cache over variable-sized entries.

    Parameters
    ----------
    capacity_bytes:
        Total budget. A single entry larger than the capacity is
        *uncacheable*: it counts as a miss and is not retained (streaming
        semantics, like a panel far larger than the cache).
    name:
        Label used in stats reporting.
    """

    def __init__(self, capacity_bytes: int, name: str = "cache") -> None:
        require_positive("capacity_bytes", capacity_bytes)
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, tuple[int, bool]] = OrderedDict()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def access(self, key: Hashable, size_bytes: int, *, write: bool = False) -> bool:
        """Touch ``key``; returns True on hit.

        On a miss the entry is installed (unless larger than the whole
        cache), evicting LRU entries as needed. A ``write`` marks the
        entry dirty; evicting a dirty entry counts a write-back.
        """
        require_positive("size_bytes", size_bytes)
        if key in self._entries:
            old_size, dirty = self._entries.pop(key)
            self._entries[key] = (size_bytes, dirty or write)
            self._used += size_bytes - old_size
            if size_bytes > old_size:
                # size change (ragged re-pack): refill of the delta
                self.stats.bytes_filled += size_bytes - old_size
            self.stats.hits += 1
            self._evict_to_fit()
            return True

        self.stats.misses += 1
        self.stats.bytes_filled += size_bytes
        if size_bytes > self.capacity_bytes:
            return False  # uncacheable: streams straight through
        self._entries[key] = (size_bytes, write)
        self._used += size_bytes
        self._evict_to_fit()
        return False

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without counting an eviction (explicit release)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry[0]

    def _evict_to_fit(self) -> None:
        while self._used > self.capacity_bytes:
            _, (size, dirty) = self._entries.popitem(last=False)
            self._used -= size
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
                self.stats.writeback_bytes += size


class SetAssociativeCache:
    """Line-granularity set-associative LRU cache.

    Parameters
    ----------
    capacity_bytes, line_bytes, ways:
        Standard geometry; ``capacity_bytes`` must be divisible by
        ``line_bytes * ways`` so sets come out whole.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        ways: int = 8,
        name: str = "cache",
    ) -> None:
        require_positive("capacity_bytes", capacity_bytes)
        require_positive("line_bytes", line_bytes)
        require_positive("ways", ways)
        if capacity_bytes % (line_bytes * ways):
            raise ValueError(
                f"capacity {capacity_bytes} not divisible by "
                f"line_bytes*ways = {line_bytes * ways}"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        self.name = name
        self.stats = CacheStats()
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def access_line(self, address: int, *, write: bool = False) -> bool:
        """Touch the line containing ``address``; returns True on hit."""
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        tag = address // self.line_bytes
        s = self._sets[tag % self.num_sets]
        if tag in s:
            dirty = s.pop(tag)
            s[tag] = dirty or write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self.stats.bytes_filled += self.line_bytes
        s[tag] = write
        if len(s) > self.ways:
            _, dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
                self.stats.writeback_bytes += self.line_bytes
        return False

    def access(self, address: int, size_bytes: int, *, write: bool = False) -> int:
        """Touch a byte range; returns the number of line hits."""
        require_positive("size_bytes", size_bytes)
        first = address // self.line_bytes
        last = (address + size_bytes - 1) // self.line_bytes
        hits = 0
        for line in range(first, last + 1):
            hits += self.access_line(line * self.line_bytes, write=write)
        return hits
