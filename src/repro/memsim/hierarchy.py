"""Multi-level memory hierarchy assembled from a MachineSpec.

Levels (Figure 1 of the paper): a private L1 and L2 per core, a shared
last-level cache, and DRAM. On machines whose shared LLC *is* the L2 (ARM
Cortex-A53) the private side is just the L1.

Each access names a core, an opaque object key (a tile/panel/block
identity) and its size. The request walks outward until some level holds
the object; the serving level's latency is charged as stall cycles — the
exact accounting VTune's memory-bound analysis reports, which is how
Figure 7a is read.

Inclusive allocation: a miss installs the object at every level on the
way in (subject to each level's capacity; objects bigger than a level
stream through it without being retained — :class:`~repro.memsim.lru.LRUCache`
semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.machines.spec import MachineSpec
from repro.memsim.lru import LRUCache
from repro.util import require_positive

#: Serving-level names, innermost to outermost.
LEVELS = ("L1", "L2", "LLC", "DRAM")


@dataclass(slots=True)
class LevelStats:
    """Aggregate view of one level across all cores."""

    level: str
    hits: int
    misses: int
    stall_cycles: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class MemoryHierarchy:
    """Per-core private caches + shared LLC + DRAM, with stall accounting.

    Parameters
    ----------
    machine:
        Supplies capacities, latencies and core count.
    cores:
        Number of cores issuing requests (default: all).
    """

    def __init__(self, machine: MachineSpec, cores: int | None = None) -> None:
        self.machine = machine
        self.cores = machine.cores if cores is None else cores
        require_positive("cores", self.cores)
        self._l1 = [
            LRUCache(machine.l1_bytes, name=f"L1[{c}]") for c in range(self.cores)
        ]
        self._has_private_l2 = not machine.llc_is_l2
        self._l2 = (
            [
                LRUCache(machine.l2_bytes, name=f"L2[{c}]")
                for c in range(self.cores)
            ]
            if self._has_private_l2
            else []
        )
        self._llc = LRUCache(machine.llc_bytes, name="LLC")
        self._latency = {
            "L1": machine.l1_latency_cycles,
            "L2": machine.l2_latency_cycles,
            "LLC": machine.llc_latency_cycles,
            "DRAM": machine.dram_latency_cycles,
        }
        self._stall_cycles = {lvl: 0 for lvl in LEVELS}
        self._serves = {lvl: 0 for lvl in LEVELS}
        #: Fill traffic from DRAM plus explicit write-backs; dirty LLC
        #: evictions are added at reporting time (see ``dram_bytes``).
        self._dram_fill_bytes = 0

    # -- request path -----------------------------------------------------

    def access(
        self, core: int, key: Hashable, size_bytes: int, *, write: bool = False
    ) -> str:
        """Issue one request; returns the name of the serving level."""
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} outside 0..{self.cores - 1}")

        served = "DRAM"
        if self._l1[core].access(key, size_bytes, write=write):
            served = "L1"
        elif self._has_private_l2 and self._l2[core].access(
            key, size_bytes, write=write
        ):
            served = "L2"
        elif self._llc.access(key, size_bytes, write=write):
            served = "LLC"
        else:
            self._dram_fill_bytes += size_bytes

        self._serves[served] += 1
        self._stall_cycles[served] += self._latency[served]
        return served

    def write_back(self, size_bytes: int) -> None:
        """Account an explicit write of completed results to DRAM."""
        require_positive("size_bytes", size_bytes)
        self._dram_fill_bytes += size_bytes

    @property
    def dram_bytes(self) -> int:
        """All DRAM traffic: fills, explicit write-backs, and dirty
        evictions pushed out of the last-level cache."""
        return self._dram_fill_bytes + self._llc.stats.writeback_bytes

    # -- reporting ----------------------------------------------------------

    def level_stats(self) -> dict[str, LevelStats]:
        """Per-level aggregate: hits there, misses past it, stalls charged.

        ``hits`` at level X = requests served by X. ``misses`` = requests
        that had to look beyond X. DRAM "hits" are requests DRAM served.
        """
        total = sum(self._serves.values())
        out: dict[str, LevelStats] = {}
        beyond = total
        for lvl in LEVELS:
            served = self._serves[lvl]
            beyond -= served
            out[lvl] = LevelStats(
                level=lvl,
                hits=served,
                misses=beyond,
                stall_cycles=self._stall_cycles[lvl],
            )
        return out

    def stall_profile(self) -> dict[str, int]:
        """Stall cycles charged to each level (the Figure 7a bars)."""
        return dict(self._stall_cycles)

    def dram_accesses(self) -> int:
        """Requests that reached DRAM (the Figure 7b right-hand bars)."""
        return self._serves["DRAM"]
