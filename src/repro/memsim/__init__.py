"""Trace-driven memory-hierarchy simulation.

Used to reproduce Figure 7: where do memory requests get served, and how
long do cores stall waiting, under CAKE vs the GOTO baseline?

Two granularities, cross-validated against each other in tests:

* :class:`~repro.memsim.lru.SetAssociativeCache` — a classical
  line-granularity set-associative LRU cache, exact but only tractable for
  small traces (unit tests, archsim validation).
* :class:`~repro.memsim.lru.LRUCache` — an object-granularity LRU cache
  holding variable-sized entries (tiles, panels, blocks) against a byte
  budget. This is what makes full GEMM traces tractable in Python: one
  access per *tile* instead of one per 64-byte line.

:class:`~repro.memsim.hierarchy.MemoryHierarchy` assembles per-core private
levels, the shared LLC and DRAM from a
:class:`~repro.machines.spec.MachineSpec`, charging stall cycles by the
level that serves each request. :mod:`repro.memsim.profile` replays the
CAKE/GOTO schedules through a hierarchy to produce the Figure 7 profiles;
the paper's key qualitative result — CAKE stalls on *local* memory while
MKL/GOTO stalls on *main* memory — emerges from LRU capacity pressure
alone, with no engine-specific special-casing.
"""

from repro.memsim.lru import LRUCache, SetAssociativeCache
from repro.memsim.hierarchy import LevelStats, MemoryHierarchy
from repro.memsim.profile import MemoryProfile, profile_cake, profile_goto
from repro.memsim.trace import Access, TraceRecorder, replay
from repro.memsim.linear import (
    LineHierarchy,
    LineProfile,
    cake_line_ops,
    goto_line_ops,
    line_profile_cake,
    line_profile_goto,
)
from repro.memsim.vectorized import VectorizedLineHierarchy, expand_ranges

__all__ = [
    "LRUCache",
    "SetAssociativeCache",
    "LevelStats",
    "MemoryHierarchy",
    "MemoryProfile",
    "profile_cake",
    "profile_goto",
    "Access",
    "TraceRecorder",
    "replay",
    "LineHierarchy",
    "LineProfile",
    "cake_line_ops",
    "goto_line_ops",
    "line_profile_cake",
    "line_profile_goto",
    "VectorizedLineHierarchy",
    "expand_ranges",
]
