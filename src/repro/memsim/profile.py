"""Replay CAKE/GOTO schedules through the memory hierarchy (Figure 7).

Traces are generated at *tile* granularity: one request per A sub-block
load, per B register-tile stream, and per C tile read+write. No engine is
told where its data "should" live — residency is decided purely by LRU
capacity pressure in :class:`~repro.memsim.hierarchy.MemoryHierarchy`.

The paper's Figure 7 contrast then falls out:

* CAKE's partial-C tiles and B panel fit the LLC by construction
  (Section 4.3 sizing), so repeat accesses are served locally — stalls
  concentrate on L1/L2/LLC.
* GOTO's partial-C working set per column panel is ``M x nc`` — far
  beyond the LLC at the evaluated sizes — so every reduction slice
  re-fetches C from DRAM: stalls concentrate on main memory, and DRAM
  request counts are a multiple of CAKE's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gemm.cake import _core_strips
from repro.gemm.plan import CakePlan, GotoPlan
from repro.machines.spec import MachineSpec
from repro.memsim.hierarchy import LevelStats, MemoryHierarchy
from repro.schedule.space import ComputationSpace
from repro.util import ceil_div, split_length


@dataclass(frozen=True, slots=True)
class MemoryProfile:
    """Where requests were served and how long cores stalled (Figure 7)."""

    engine: str
    machine_name: str
    levels: dict[str, LevelStats]
    dram_bytes: int

    @property
    def stall_profile(self) -> dict[str, int]:
        """Stall cycles charged per serving level (Figure 7a bars)."""
        return {name: s.stall_cycles for name, s in self.levels.items()}

    @property
    def l1_hits(self) -> int:
        return self.levels["L1"].hits

    @property
    def l2_hits(self) -> int:
        """Hits in the private L2 plus the shared LLC (ARM reports both
        as 'L2' since its LLC is the L2)."""
        return self.levels["L2"].hits + self.levels["LLC"].hits

    @property
    def dram_accesses(self) -> int:
        return self.levels["DRAM"].hits

    @property
    def local_stall_fraction(self) -> float:
        """Share of stall time spent on local memory rather than DRAM."""
        total = sum(s.stall_cycles for s in self.levels.values())
        if total == 0:
            return 0.0
        return 1.0 - self.levels["DRAM"].stall_cycles / total


def profile_cake(
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    cores: int | None = None,
    plan: CakePlan | None = None,
) -> MemoryProfile:
    """Trace the CAKE K-first schedule through the hierarchy.

    ``plan`` overrides the analytically-derived tiling — used by the
    LRU-sizing ablation to show what happens when the Section 4.3 rule
    is violated.
    """
    space = ComputationSpace(m, n, k)
    if plan is None:
        plan = CakePlan.from_problem(machine, space, cores=cores)
    grid = plan.grid()
    hier = MemoryHierarchy(machine, plan.cores)
    eb = machine.element_bytes
    nr = machine.nr

    for coord in plan.schedule():
        ext = grid.extent(coord)
        strips = _core_strips(ext.m, plan.cores)
        n_tiles = ceil_div(ext.n, nr)
        for core, rows in enumerate(strips):
            hier.access(
                core, ("A", coord.mi, coord.ki, core), rows * ext.k * eb
            )
        for j in range(n_tiles):
            tile_n = min(nr, ext.n - j * nr)
            b_key = ("B", coord.ki, coord.ni, j)
            for core, rows in enumerate(strips):
                # The broadcast (Section 2.1): every core in the column
                # reads the tile; the first read fills the LLC, the rest
                # hit it.
                hier.access(core, b_key, ext.k * tile_n * eb)
                c_key = ("C", coord.mi, coord.ni, core, j)
                c_size = rows * tile_n * eb
                hier.access(core, c_key, c_size)
                hier.access(core, c_key, c_size, write=True)
        if coord.ki == grid.kb - 1:
            hier.write_back(ext.surface_c * eb)

    return MemoryProfile(
        engine="cake",
        machine_name=machine.name,
        levels=hier.level_stats(),
        dram_bytes=hier.dram_bytes,
    )


def profile_goto(
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    cores: int | None = None,
) -> MemoryProfile:
    """Trace the GOTO loop nest through the hierarchy."""
    space = ComputationSpace(m, n, k)
    plan = GotoPlan.from_problem(machine, space, cores=cores)
    hier = MemoryHierarchy(machine, plan.cores)
    eb = machine.element_bytes
    nr = machine.nr

    m_strips = split_length(space.m, min(plan.mc, space.m))
    n_sizes = split_length(space.n, min(plan.nc, space.n))
    k_sizes = split_length(space.k, min(plan.kc, space.k))

    for ni, nc_actual in enumerate(n_sizes):
        for ki, kc_actual in enumerate(k_sizes):
            for wave_start in range(0, len(m_strips), plan.cores):
                wave = m_strips[wave_start : wave_start + plan.cores]
                n_tiles = ceil_div(nc_actual, nr)
                for lane, rows in enumerate(wave):
                    strip = wave_start + lane
                    hier.access(lane, ("A", strip, ki), rows * kc_actual * eb)
                for j in range(n_tiles):
                    tile_n = min(nr, nc_actual - j * nr)
                    b_key = ("B", ki, ni, j)
                    for lane, rows in enumerate(wave):
                        strip = wave_start + lane
                        hier.access(lane, b_key, kc_actual * tile_n * eb)
                        # Note: the C key has no ki — the same partial
                        # panel is revisited every reduction slice.
                        c_key = ("C", strip, ni, j)
                        c_size = rows * tile_n * eb
                        hier.access(lane, c_key, c_size)
                        hier.access(lane, c_key, c_size, write=True)
    hier.write_back(space.m * space.n * eb)

    return MemoryProfile(
        engine="goto",
        machine_name=machine.name,
        levels=hier.level_stats(),
        dram_bytes=hier.dram_bytes,
    )
