"""Batched, NumPy-vectorized replay of line-granularity traces.

The scalar :class:`~repro.memsim.linear.LineHierarchy` walks one 64-byte
line at a time through four Python method calls and an ``OrderedDict``
per set — exact, but minutes-per-figure at the sizes the line-level
benches want. This module replays the *same* byte-range op stream in
batches:

1. **Range expansion** — each chunk of ``(core, base, nbytes, write)``
   ops is expanded to its line numbers with one vectorized multi-arange
   (repeat + cumsum), eliminating the per-line Python loop.
2. **Set-index/tag arithmetic** — line numbers map to ``(group, tag)``
   pairs for every level in whole-array integer ops
   (``group = core * num_sets + tag % num_sets`` for private levels,
   ``tag % num_sets`` for the shared LLC).
3. **Per-set LRU in grouped order** — a stable argsort gathers each
   set's accesses contiguously *in program order*; each group then runs
   a tight LRU loop over a small Python list (at most ``ways``
   elements), which is an order of magnitude cheaper than the scalar
   path's nested dispatch.
4. **Level-by-level miss cascade** — the boolean miss mask of L1
   filters the stream fed to L2, then the LLC, then DRAM. Because masks
   preserve program order, the lower levels observe exactly the
   interleaving the scalar hierarchy does.

Every step is order-exact, so the resulting profile is bit-for-bit
identical to the scalar simulator's — asserted in
``tests/memsim/test_vectorized.py`` over both engines' schedules.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.machines.spec import MachineSpec
from repro.memsim.lru import SetAssociativeCache
from repro.util import require_positive

#: Ops per expansion batch. Bounds peak memory while keeping the
#: per-chunk NumPy overhead negligible.
DEFAULT_CHUNK_OPS = 1 << 15


class _BatchLevel:
    """One cache level's persistent LRU state, filtered in batches.

    Geometry is validated by constructing the scalar
    :class:`~repro.memsim.lru.SetAssociativeCache` it mirrors — same
    divisibility rules, same set count, same way count.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int,
        ways: int,
        *,
        instances: int = 1,
    ) -> None:
        reference = SetAssociativeCache(capacity_bytes, line_bytes, ways)
        self.num_sets = reference.num_sets
        self.ways = ways
        self.instances = instances
        # group id -> LRU-ordered tag list (last = most recent).
        self._state: dict[int, list[int]] = {}

    def filter(self, instance: np.ndarray | None, tags: np.ndarray) -> np.ndarray:
        """Boolean miss mask for ``tags`` accessed in program order.

        ``instance`` selects the private copy (the issuing core) and is
        ``None`` for a shared level. State persists across calls, so
        chunked replay is exact.
        """
        total = len(tags)
        if total == 0:
            return np.zeros(0, dtype=bool)
        sets = tags % self.num_sets
        group = sets if instance is None else instance * self.num_sets + sets
        order = np.argsort(group, kind="stable")
        grouped = group[order]
        bounds = [0, *(np.flatnonzero(grouped[1:] != grouped[:-1]) + 1).tolist(), total]
        grouped_list = grouped.tolist()
        tags_sorted = tags[order].tolist()
        miss_sorted = bytearray(total)
        ways = self.ways
        state = self._state
        for si in range(len(bounds) - 1):
            lo, hi = bounds[si], bounds[si + 1]
            lru = state.get(grouped_list[lo])
            if lru is None:
                lru = state[grouped_list[lo]] = []
            for i in range(lo, hi):
                tag = tags_sorted[i]
                if lru:
                    if lru[-1] == tag:
                        continue  # hit, already most-recently-used
                    if tag in lru:
                        lru.remove(tag)
                        lru.append(tag)
                        continue
                miss_sorted[i] = 1
                lru.append(tag)
                if len(lru) > ways:
                    del lru[0]
        miss = np.zeros(total, dtype=bool)
        miss[order] = np.frombuffer(miss_sorted, dtype=np.uint8).astype(bool)
        return miss


def expand_ranges(
    cores: np.ndarray,
    bases: np.ndarray,
    nbytes: np.ndarray,
    writes: np.ndarray,
    line_bytes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand byte ranges to per-line ``(core, line, write)`` arrays.

    One multi-arange: each range ``[base, base + nbytes)`` becomes its
    inclusive run of line numbers, concatenated in op order — the exact
    sequence the scalar ``access_range`` loop visits.
    """
    first = bases // line_bytes
    last = (bases + nbytes - 1) // line_bytes
    counts = last - first + 1
    total = int(counts.sum())
    ends = np.cumsum(counts)
    # offset within each range: global position minus the range's start.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    lines = np.repeat(first, counts) + offsets
    return np.repeat(cores, counts), lines, np.repeat(writes, counts)


class VectorizedLineHierarchy:
    """Batch-replay counterpart of :class:`~repro.memsim.linear.LineHierarchy`.

    Same construction parameters, same ``serves`` / ``dram_bytes`` /
    ``dram_fraction`` reporting — but fed whole op streams through
    :meth:`replay` instead of line-by-line calls.
    """

    def __init__(
        self,
        machine: MachineSpec,
        cores: int,
        *,
        line_bytes: int = 64,
        ways: int = 8,
    ) -> None:
        require_positive("cores", cores)
        self.machine = machine
        self.cores = cores
        self.line_bytes = line_bytes
        self._l1 = _BatchLevel(
            machine.l1_bytes, line_bytes, ways, instances=cores
        )
        self._has_l2 = not machine.llc_is_l2
        self._l2 = (
            _BatchLevel(machine.l2_bytes, line_bytes, ways, instances=cores)
            if self._has_l2
            else None
        )
        self._llc = _BatchLevel(machine.llc_bytes, line_bytes, max(ways, 16))
        self.serves = {"L1": 0, "L2": 0, "LLC": 0, "DRAM": 0}
        self.dram_bytes = 0

    def replay(
        self,
        ops: Iterable[tuple[int, int, int, bool]],
        *,
        chunk_ops: int = DEFAULT_CHUNK_OPS,
    ) -> "VectorizedLineHierarchy":
        """Consume a ``(core, base, nbytes, write)`` stream; returns self."""
        require_positive("chunk_ops", chunk_ops)
        for chunk in _chunked(ops, chunk_ops):
            self._replay_chunk(chunk)
        return self

    def _replay_chunk(self, chunk: list[tuple[int, int, int, bool]]) -> None:
        arr = np.asarray(chunk, dtype=np.int64)
        cores, lines, _writes = expand_ranges(
            arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3], self.line_bytes
        )
        total = len(lines)

        miss = self._l1.filter(cores, lines)
        self.serves["L1"] += total - int(miss.sum())
        cores, lines = cores[miss], lines[miss]

        if self._l2 is not None:
            miss = self._l2.filter(cores, lines)
            self.serves["L2"] += len(lines) - int(miss.sum())
            cores, lines = cores[miss], lines[miss]

        miss = self._llc.filter(None, lines)
        self.serves["LLC"] += len(lines) - int(miss.sum())
        dram = int(miss.sum())
        self.serves["DRAM"] += dram
        self.dram_bytes += dram * self.line_bytes

    @property
    def dram_fraction(self) -> float:
        """Share of line requests that fell through to DRAM."""
        total = sum(self.serves.values())
        return self.serves["DRAM"] / total if total else 0.0


def _chunked(
    ops: Iterable[tuple[int, int, int, bool]], size: int
) -> Iterator[list[tuple[int, int, int, bool]]]:
    batch: list[tuple[int, int, int, bool]] = []
    for op in ops:
        batch.append(op)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch
