"""Recordable, replayable memory traces.

A :class:`TraceRecorder` wraps a :class:`~repro.memsim.hierarchy.MemoryHierarchy`
and logs every request as an :class:`Access` record. Traces can be
replayed into a *different* hierarchy — the workflow for what-if studies
("same CAKE schedule, half the LLC") without re-running the engine — and
serialised to a compact text form for fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.memsim.hierarchy import MemoryHierarchy
from repro.util import require_positive


@dataclass(frozen=True, slots=True)
class Access:
    """One memory request: who asked, for what, how big, read or write."""

    core: int
    key: Hashable
    size_bytes: int
    write: bool = False


class TraceRecorder:
    """Pass-through wrapper logging every access to an in-memory trace."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.trace: list[Access] = []

    def access(
        self, core: int, key: Hashable, size_bytes: int, *, write: bool = False
    ) -> str:
        """Forward to the wrapped hierarchy, recording the request."""
        self.trace.append(Access(core, key, size_bytes, write))
        return self.hierarchy.access(core, key, size_bytes, write=write)

    def write_back(self, size_bytes: int) -> None:
        """Forwarded verbatim (write-backs are not per-core requests)."""
        self.hierarchy.write_back(size_bytes)


def replay(trace: Iterable[Access], hierarchy: MemoryHierarchy) -> MemoryHierarchy:
    """Replay a recorded trace into a fresh hierarchy; returns it."""
    for acc in trace:
        hierarchy.access(acc.core, acc.key, acc.size_bytes, write=acc.write)
    return hierarchy


def dumps(trace: Iterable[Access]) -> str:
    """Serialise a trace to a line-per-access text form.

    Keys are rendered with ``repr``; only keys whose repr round-trips
    through ``eval`` of literals (tuples of strings/ints — what the
    profile generators emit) are supported by :func:`loads`.
    """
    lines = []
    for acc in trace:
        rw = "W" if acc.write else "R"
        lines.append(f"{acc.core}\t{rw}\t{acc.size_bytes}\t{acc.key!r}")
    return "\n".join(lines)


def loads(text: str) -> Iterator[Access]:
    """Parse the :func:`dumps` format back into Access records."""
    import ast

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            core_s, rw, size_s, key_s = line.split("\t")
            size = int(size_s)
            require_positive("size_bytes", size)
            yield Access(
                core=int(core_s),
                key=ast.literal_eval(key_s),
                size_bytes=size,
                write=rw == "W",
            )
        except (ValueError, SyntaxError) as exc:
            raise ValueError(f"malformed trace line {lineno}: {line!r}") from exc
