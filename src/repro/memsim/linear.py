"""Line-granularity, address-mapped hierarchy simulation.

The Figure 7 profiles use object-granularity LRU caches (one access per
tile/panel) because line-level simulation of full GEMMs is intractable in
Python. This module provides the line-level ground truth at *small* scale
so the shortcut can be validated: packed operand buffers are laid out in
a real address space (tile-contiguous micropanels, as BLIS/CAKE packing
produces), the same schedule walk issues byte-range accesses, and a stack
of set-associative caches serves them line by line.

Tests assert that both granularities agree on the qualitative Figure 7
results (where traffic lands, who hits DRAM more).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.gemm.cake import _core_strips
from repro.gemm.plan import CakePlan, GotoPlan
from repro.machines.spec import MachineSpec
from repro.memsim.lru import SetAssociativeCache
from repro.schedule.space import ComputationSpace
from repro.util import ceil_div, require_positive, split_length

#: One byte-range request: ``(core, base_address, nbytes, write)``.
#: The schedule walkers below emit streams of these; both the scalar
#: :class:`LineHierarchy` and the vectorized replay engine
#: (:mod:`repro.memsim.vectorized`) consume the *same* stream, which is
#: what makes their bit-for-bit equivalence testable.
RangeOp = tuple[int, int, int, bool]


class AddressSpace:
    """A bump allocator handing out contiguous buffer ranges."""

    def __init__(self, alignment: int = 64) -> None:
        require_positive("alignment", alignment)
        self.alignment = alignment
        self._next = 0
        self._buffers: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` for ``name``; returns the base address."""
        require_positive("nbytes", nbytes)
        if name in self._buffers:
            raise ConfigurationError(f"buffer {name!r} already allocated")
        base = self._next
        self._buffers[name] = (base, nbytes)
        aligned = ceil_div(nbytes, self.alignment) * self.alignment
        self._next += aligned
        return base

    def base(self, name: str) -> int:
        """Base address of a previously-allocated buffer."""
        try:
            return self._buffers[name][0]
        except KeyError:
            raise ConfigurationError(f"unknown buffer {name!r}") from None

    @property
    def total_bytes(self) -> int:
        """Footprint of everything allocated so far."""
        return self._next


class LineHierarchy:
    """Per-core private caches + shared LLC, at cache-line granularity."""

    def __init__(
        self, machine: MachineSpec, cores: int, *, line_bytes: int = 64,
        ways: int = 8,
    ) -> None:
        self.machine = machine
        self.cores = cores
        self.line_bytes = line_bytes
        self._l1 = [
            SetAssociativeCache(
                machine.l1_bytes, line_bytes, ways, name=f"L1[{c}]"
            )
            for c in range(cores)
        ]
        self._has_l2 = not machine.llc_is_l2
        self._l2 = (
            [
                SetAssociativeCache(
                    machine.l2_bytes, line_bytes, ways, name=f"L2[{c}]"
                )
                for c in range(cores)
            ]
            if self._has_l2
            else []
        )
        self._llc = SetAssociativeCache(
            machine.llc_bytes, line_bytes, max(ways, 16), name="LLC"
        )
        self.serves = {"L1": 0, "L2": 0, "LLC": 0, "DRAM": 0}
        self.dram_bytes = 0

    def access_line(self, core: int, address: int, *, write: bool = False) -> str:
        """One line request walking L1 -> L2 -> LLC -> DRAM."""
        if self._l1[core].access_line(address, write=write):
            served = "L1"
        elif self._has_l2 and self._l2[core].access_line(address, write=write):
            served = "L2"
        elif self._llc.access_line(address, write=write):
            served = "LLC"
        else:
            served = "DRAM"
            self.dram_bytes += self.line_bytes
        self.serves[served] += 1
        return served

    def access_range(
        self, core: int, base: int, nbytes: int, *, write: bool = False
    ) -> None:
        """Touch every line of ``[base, base + nbytes)``."""
        require_positive("nbytes", nbytes)
        first = base // self.line_bytes
        last = (base + nbytes - 1) // self.line_bytes
        for line in range(first, last + 1):
            self.access_line(core, line * self.line_bytes, write=write)

    def access_strided(
        self,
        core: int,
        base: int,
        runs: int,
        run_bytes: int,
        stride_bytes: int,
        *,
        write: bool = False,
    ) -> None:
        """Touch ``runs`` runs of ``run_bytes`` spaced ``stride_bytes``.

        The access pattern of a 2-D tile inside a larger row-major
        matrix — one run per tile row.
        """
        require_positive("runs", runs)
        for r in range(runs):
            self.access_range(core, base + r * stride_bytes, run_bytes, write=write)

    @property
    def dram_fraction(self) -> float:
        """Share of line requests that fell through to DRAM."""
        total = sum(self.serves.values())
        return self.serves["DRAM"] / total if total else 0.0


@dataclass(frozen=True, slots=True)
class LineProfile:
    """Line-granularity counterpart of a MemoryProfile."""

    engine: str
    serves: dict[str, int]
    dram_bytes: int
    dram_fraction: float


def cake_line_ops(
    machine: MachineSpec, m: int, n: int, k: int, *, cores: int | None = None
) -> Iterator[RangeOp]:
    """The CAKE schedule as a byte-range request stream.

    Packed layout: per-block A sub-matrices and B micropanels are
    tile-contiguous (a ``kc x nr`` B tile is one contiguous run), and the
    partial-C block buffer is micropanel-contiguous per (core, tile).
    """
    space = ComputationSpace(m, n, k)
    plan = CakePlan.from_problem(machine, space, cores=cores)
    grid = plan.grid()
    eb = machine.element_bytes
    nr = machine.nr

    mem = AddressSpace()
    # Packed buffers are block-major with nominal block strides, so they
    # can be (slightly) larger than the dense operand.
    a_base = mem.alloc("A", grid.mb * grid.kb * grid.nominal.m * grid.nominal.k * eb)
    b_base = mem.alloc("B", grid.kb * grid.nb * grid.nominal.k * grid.nominal.n * eb)
    c_base = mem.alloc("C", grid.mb * grid.nb * grid.nominal.m * grid.nominal.n * eb)

    for coord in plan.schedule():
        ext = grid.extent(coord)
        strips = _core_strips(ext.m, plan.cores)
        n_tiles = ceil_div(ext.n, nr)
        # A sub-blocks: one contiguous packed range per core.
        a_block_base = a_base + _packed_offset_a(grid, coord, eb)
        off = 0
        for core, rows in enumerate(strips):
            yield (core, a_block_base + off, rows * ext.k * eb, False)
            off += rows * ext.k * eb
        # B micropanels: tile-contiguous within the packed panel.
        b_panel_base = b_base + _packed_offset_b(grid, coord, eb)
        for j in range(n_tiles):
            tile_n = min(nr, ext.n - j * nr)
            tile_bytes = ext.k * tile_n * eb
            tile_base = b_panel_base + j * ext.k * nr * eb
            for core, rows in enumerate(strips):
                yield (core, tile_base, tile_bytes, False)
                # C micropanel for this (core, j).
                c_tile_base = (
                    c_base
                    + _packed_offset_c(grid, coord, eb)
                    + (core * n_tiles + j) * max(strips) * nr * eb
                )
                c_bytes = rows * tile_n * eb
                yield (core, c_tile_base, c_bytes, False)
                yield (core, c_tile_base, c_bytes, True)


def goto_line_ops(
    machine: MachineSpec, m: int, n: int, k: int, *, cores: int | None = None
) -> Iterator[RangeOp]:
    """The GOTO loop nest as a byte-range request stream."""
    space = ComputationSpace(m, n, k)
    plan = GotoPlan.from_problem(machine, space, cores=cores)
    eb = machine.element_bytes
    nr = machine.nr

    mem = AddressSpace()
    a_base = mem.alloc("A", m * k * eb)
    b_base = mem.alloc("B", k * n * eb)
    c_base = mem.alloc("C", m * n * eb)

    m_strips = split_length(space.m, min(plan.mc, space.m))
    n_sizes = split_length(space.n, min(plan.nc, space.n))
    k_sizes = split_length(space.k, min(plan.kc, space.k))
    m_offsets = _prefix(m_strips)
    n_offsets = _prefix(n_sizes)
    k_offsets = _prefix(k_sizes)

    for ni, nc_actual in enumerate(n_sizes):
        for ki, kc_actual in enumerate(k_sizes):
            b_panel_base = b_base + (k_offsets[ki] * space.n + n_offsets[ni] * kc_actual) * eb
            for wave_start in range(0, len(m_strips), plan.cores):
                wave = m_strips[wave_start : wave_start + plan.cores]
                n_tiles = ceil_div(nc_actual, nr)
                for lane, rows in enumerate(wave):
                    strip = wave_start + lane
                    a_block = a_base + (
                        m_offsets[strip] * space.k + k_offsets[ki] * rows
                    ) * eb
                    yield (lane, a_block, rows * kc_actual * eb, False)
                for j in range(n_tiles):
                    tile_n = min(nr, nc_actual - j * nr)
                    tile_base = b_panel_base + j * kc_actual * nr * eb
                    tile_bytes = kc_actual * tile_n * eb
                    for lane, rows in enumerate(wave):
                        strip = wave_start + lane
                        yield (lane, tile_base, tile_bytes, False)
                        # C lives in the user's row-major buffer: the
                        # micro-tile is `rows` separate nr-wide runs at
                        # the matrix's row stride (this strided pattern,
                        # not a contiguous one, is what GOTO's partial-C
                        # streaming really touches).
                        c_tile = c_base + (
                            m_offsets[strip] * space.n
                            + n_offsets[ni]
                            + j * nr
                        ) * eb
                        row_bytes = tile_n * eb
                        stride = space.n * eb
                        for r in range(rows):
                            yield (lane, c_tile + r * stride, row_bytes, False)
                        for r in range(rows):
                            yield (lane, c_tile + r * stride, row_bytes, True)


def _replay_ops(
    machine: MachineSpec,
    cores: int,
    ops: Iterable[RangeOp],
    *,
    vectorized: bool,
) -> tuple[dict[str, int], int, float]:
    """Run an op stream through the scalar or vectorized hierarchy."""
    if vectorized:
        from repro.memsim.vectorized import VectorizedLineHierarchy

        vhier = VectorizedLineHierarchy(machine, cores)
        vhier.replay(ops)
        return dict(vhier.serves), vhier.dram_bytes, vhier.dram_fraction
    hier = LineHierarchy(machine, cores)
    for core, base, nbytes, write in ops:
        hier.access_range(core, base, nbytes, write=write)
    return dict(hier.serves), hier.dram_bytes, hier.dram_fraction


def line_profile_cake(
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    cores: int | None = None,
    vectorized: bool = True,
) -> LineProfile:
    """Line-level replay of the CAKE schedule on packed buffers.

    ``vectorized=True`` (default) runs the batch replay engine of
    :mod:`repro.memsim.vectorized`; ``False`` runs the scalar
    line-by-line hierarchy. Both produce identical profiles (asserted
    bit-for-bit in tests) — the scalar path is the ground truth, the
    vectorized path is what the figure benches can afford.
    """
    plan = CakePlan.from_problem(machine, ComputationSpace(m, n, k), cores=cores)
    serves, dram_bytes, dram_fraction = _replay_ops(
        machine,
        plan.cores,
        cake_line_ops(machine, m, n, k, cores=cores),
        vectorized=vectorized,
    )
    return LineProfile(
        engine="cake",
        serves=serves,
        dram_bytes=dram_bytes,
        dram_fraction=dram_fraction,
    )


def line_profile_goto(
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    cores: int | None = None,
    vectorized: bool = True,
) -> LineProfile:
    """Line-level replay of the GOTO loop nest on packed buffers."""
    plan = GotoPlan.from_problem(machine, ComputationSpace(m, n, k), cores=cores)
    serves, dram_bytes, dram_fraction = _replay_ops(
        machine,
        plan.cores,
        goto_line_ops(machine, m, n, k, cores=cores),
        vectorized=vectorized,
    )
    return LineProfile(
        engine="goto",
        serves=serves,
        dram_bytes=dram_bytes,
        dram_fraction=dram_fraction,
    )


def _prefix(sizes: list[int]) -> list[int]:
    out = [0]
    for s in sizes[:-1]:
        out.append(out[-1] + s)
    return out


def _packed_offset_a(grid, coord, eb: int) -> int:
    """Byte offset of block (mi, ki)'s packed A data (block-major)."""
    index = coord.mi * grid.kb + coord.ki
    return index * grid.nominal.m * grid.nominal.k * eb


def _packed_offset_b(grid, coord, eb: int) -> int:
    """Byte offset of panel (ki, ni)'s packed B data (panel-major)."""
    index = coord.ki * grid.nb + coord.ni
    return index * grid.nominal.k * grid.nominal.n * eb


def _packed_offset_c(grid, coord, eb: int) -> int:
    """Byte offset of block (mi, ni)'s C region (block-major)."""
    index = coord.mi * grid.nb + coord.ni
    return index * grid.nominal.m * grid.nominal.n * eb
