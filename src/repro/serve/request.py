"""Request, response-handle and per-request report types for serving.

A client interacts with the server through exactly two objects: the
:class:`MultiplyRequest` it submits (operands plus the service contract
— deadline, priority, verification, backend) and the
:class:`ResponseHandle` it gets back, a future-like object whose
``result()`` blocks until the dispatcher resolves it with a
:class:`~repro.gemm.result.GemmRun` or a structured error. Every handle
also carries a :class:`ServeReport` recording what the server actually
did — queueing time, attempts, retries, and each degradation-ladder
step — so a response is auditable without trusting logs.

Resolution is **first-wins and final**: the dispatcher racing a
client-side deadline can never overwrite an already-resolved handle, so
a request that expired can never later surface a stale product.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeadlineExceededError
from repro.gemm.result import GemmRun
from repro.gemm.sharded import ShardConfig
from repro.gemm.verify import VerifyConfig
from repro.runtime.deadline import Deadline


def content_seed(a: np.ndarray, b: np.ndarray) -> int:
    """A stable seed derived from the operands' content.

    Retry backoff jitter is seeded from this (through
    :meth:`~repro.runtime.executor.RetryPolicy.delay`), so replaying
    the same request produces the same retry schedule — the serving
    analogue of the experiment runtime's task-seeded jitter. Hashing
    the full operands would cost a pass over the data per request;
    shape/dtype plus a corner sample is stable, cheap, and decorrelated
    enough across requests to avoid synchronized retry storms.
    """
    descriptor = repr(
        (a.shape, a.dtype.str, b.shape, b.dtype.str)
    ).encode()
    seed = zlib.crc32(descriptor)
    for operand in (a, b):
        if operand.size:
            corner = np.ascontiguousarray(operand[:4, :4])
            seed = zlib.crc32(corner.tobytes(), seed)
    return seed


@dataclass(frozen=True, slots=True)
class MultiplyRequest:
    """One multiply submitted to the server.

    Attributes
    ----------
    a, b:
        2-D operands with matching inner dimension (any layout, any
        float dtype the selected backend supports).
    engine:
        ``"cake"`` or ``"goto"``.
    deadline:
        Budget in seconds from submit, or ``None`` for the server
        default (possibly unbounded). A non-positive budget is shed at
        admission; an expired one terminates with
        :class:`~repro.errors.DeadlineExceededError`, never a stale
        result.
    priority:
        Higher runs earlier among queued requests; ties preserve
        submission order.
    verify:
        ABFT verified execution, as on the engines (``True``/``False``
        or a :class:`~repro.gemm.verify.VerifyConfig`).
    backend:
        Registered backend name, or ``None`` for the process default.
    workers:
        Threads inside the executing engine (``None``: serial).
    processes:
        Shard processes (``None``/1: in-process). A per-request
        :class:`~repro.gemm.sharded.ShardConfig` deadline is derived
        from ``deadline`` automatically.
    """

    a: np.ndarray
    b: np.ndarray
    engine: str = "cake"
    deadline: float | None = None
    priority: int = 0
    verify: "bool | VerifyConfig" = False
    backend: str | None = None
    workers: int | None = None
    processes: "int | ShardConfig | None" = None

    def seed(self) -> int:
        """The deterministic retry seed for this request's content."""
        return content_seed(self.a, self.b)


@dataclass(slots=True)
class ServeReport:
    """What the server did with one request (attached to its handle).

    ``degradations`` lists each ladder step taken, oldest first, as
    ``{"from": ..., "to": ..., "reason": ...}`` dicts where the rungs
    are ``"processes=P workers=W backend=B"`` descriptions.
    """

    request_id: int
    shape_class: str = ""
    engine: str = "cake"
    status: str = "pending"  # pending | ok | failed | deadline | shed
    error: str | None = None
    deadline: float | None = None
    priority: int = 0
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0
    attempts: int = 0
    retries: int = 0
    batch_size: int = 1
    backend: str | None = None
    workers: int | None = None
    processes: int = 1
    degradations: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "shape_class": self.shape_class,
            "engine": self.engine,
            "status": self.status,
            "error": self.error,
            "deadline": self.deadline,
            "priority": self.priority,
            "queue_seconds": self.queue_seconds,
            "execute_seconds": self.execute_seconds,
            "total_seconds": self.total_seconds,
            "attempts": self.attempts,
            "retries": self.retries,
            "batch_size": self.batch_size,
            "backend": self.backend,
            "workers": self.workers,
            "processes": self.processes,
            "degradations": list(self.degradations),
        }


class ResponseHandle:
    """A future for one admitted request.

    ``result()`` blocks until the dispatcher resolves the handle — with
    a :class:`~repro.gemm.result.GemmRun` or a structured error — or
    until the request's deadline passes, whichever is first. Expiry on
    the waiter's side resolves the handle itself (first-wins), so a
    client is never stranded by a dispatcher that got wedged: the
    deadline is enforced by the party holding the clock, not the party
    being timed.
    """

    def __init__(
        self,
        request: MultiplyRequest,
        report: ServeReport,
        deadline: Deadline | None,
        submitted_at: float,
    ) -> None:
        self.request = request
        self.report = report
        self.deadline = deadline
        self.submitted_at = submitted_at
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._run: GemmRun | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the handle has been resolved (result or error)."""
        return self._event.is_set()

    @property
    def error(self) -> BaseException | None:
        """The terminal error, or ``None`` (unresolved or succeeded)."""
        return self._error

    def resolve(
        self,
        run: GemmRun | None = None,
        error: BaseException | None = None,
    ) -> bool:
        """Terminate the handle; returns False if already resolved.

        First resolution wins and is final — the no-stale-results
        guarantee rests on this being the only mutation path.
        """
        if run is None and error is None:
            raise ValueError("resolve needs a run or an error")
        with self._lock:
            if self._event.is_set():
                return False
            self._run = run
            self._error = error
            now = time.monotonic()
            self.report.total_seconds = now - self.submitted_at
            if error is None:
                self.report.status = "ok"
            else:
                self.report.error = type(error).__name__
                if isinstance(error, DeadlineExceededError):
                    self.report.status = "deadline"
                else:
                    self.report.status = "failed"
            self._event.set()
            return True

    def expired(self, now: float | None = None) -> bool:
        """Whether this request's deadline has passed."""
        return self.deadline is not None and self.deadline.expired(now)

    def result(self, timeout: float | None = None) -> GemmRun:
        """Block for the product; raise the structured terminal error.

        ``timeout`` bounds this *call* (raising a plain ``TimeoutError``
        without resolving the handle); the request's own deadline
        resolves the handle with
        :class:`~repro.errors.DeadlineExceededError` when it passes
        first.
        """
        call_deadline = (
            None if timeout is None else Deadline.after(timeout)
        )
        while not self._event.is_set():
            now = time.monotonic()
            waits = []
            if self.deadline is not None:
                remaining = self.deadline.remaining(now)
                if remaining == 0.0:
                    self.resolve(
                        error=DeadlineExceededError(
                            "result-wait",
                            budget=self.deadline.budget,
                            elapsed=now - self.submitted_at,
                        )
                    )
                    break
                waits.append(remaining)
            if call_deadline is not None:
                remaining = call_deadline.remaining(now)
                if remaining == 0.0:
                    raise TimeoutError(
                        f"no response within the {timeout}s wait "
                        f"(request still pending)"
                    )
                waits.append(remaining)
            self._event.wait(timeout=min(waits) if waits else None)
        if self._error is not None:
            raise self._error
        assert self._run is not None
        return self._run
