"""Fault-injected soak: traffic and failures flowing at the same time.

The acceptance bar of the serving layer (ISSUE 8): while concurrent
clients stream multiplies, scripted faults — worker kills, hangs,
bit flips, transient numeric corruption — fire continuously, and every
admitted request must end in exactly one of two ways:

* a product **bit-identical** to the direct engine reference, or
* a **structured** terminal error (``AdmissionError``,
  ``DeadlineExceededError``, or another ``CakeError``).

Silent wrong answers and deadlocks are the two unforgivable outcomes;
the soak counts both and :func:`main` exits nonzero on either, which
is what the CI ``serve`` job runs. Faults are scripted through
``state_dir``-backed :class:`~repro.runtime.faults.NumericFaultPlan`
budgets (unique per request), so "fail once, heal on retry/rebuild"
is expressed deterministically across process boundaries.

Two levels of fault injection live here. :func:`run_soak` targets one
``MultiplyServer`` (shard kills/hangs, bit flips, transient numeric
corruption); :func:`run_fleet_soak` targets the supervised fleet (ISSUE
10) — whole worker *processes* SIGKILLed and hung on timers while
traffic flows, auditing that crash-safe re-dispatch keeps the same
contract. Run either directly::

    PYTHONPATH=src python -m repro.serve.soak --seconds 30 --clients 3
    PYTHONPATH=src python -m repro.serve.soak --fleet 2 --seconds 20
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.errors import AdmissionError, CakeError, DeadlineExceededError
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.sharded import ShardConfig
from repro.gemm.verify import VerifyConfig
from repro.machines.presets import intel_i9_10900k
from repro.runtime.executor import RetryPolicy
from repro.runtime.faults import NumericFaultPlan, NumericFaultRule
from repro.serve.server import MultiplyServer

#: Budget for the hang-under-deadline variant: generous enough to admit
#: and spawn a shard pool, far shorter than the injected 8 s hang.
HANG_DEADLINE_SECONDS = 1.5
HANG_SECONDS = 8.0

#: A client gives up on a handle after this long; an unresolved handle
#: is counted as a deadlock (the contract says every admitted request
#: terminates).
RESULT_TIMEOUT_SECONDS = 60.0


def _variants(state_root: Path, include_sharded: bool) -> list[dict]:
    """The request mix, cycled per client iteration.

    ``kwargs`` may be a callable of a unique request id — fault
    variants need a fresh ``state_dir`` per request so each one
    experiences its own fail-once budget.
    """

    def transient(uid: str) -> dict:
        # Detection without recovery: the engine raises NumericFaultError
        # on the corrupted first attempt; the *server's* retry reruns it
        # against the spent on-disk budget and must come back clean.
        return dict(
            engine="cake",
            verify=VerifyConfig(
                max_retries=0,
                oracle_fallback=False,
                inject=NumericFaultPlan(
                    rules=(
                        NumericFaultRule(
                            block=0, strip=0, kind="scale", factor=3.0
                        ),
                    ),
                    state_dir=str(state_root / f"retry-{uid}"),
                ),
            ),
        )

    def kill(uid: str) -> dict:
        # A shard worker dies mid-group; run_sharded's rebuild ladder
        # heals it inside the engine call. spawn, not fork: the serve
        # dispatcher is multi-threaded, and forking a threaded parent
        # can deadlock a child on an inherited lock — the exact class
        # of hang this soak exists to catch, so it must not cause one.
        return dict(
            engine="cake",
            processes=ShardConfig(processes=2, start_method="spawn"),
            verify=VerifyConfig(
                enabled=False,
                inject=NumericFaultPlan(
                    rules=(NumericFaultRule(kind="kill"),),
                    state_dir=str(state_root / f"kill-{uid}"),
                ),
            ),
        )

    def hang(uid: str) -> dict:
        # A shard worker stalls far past the request deadline; the
        # ShardConfig deadline (derived per request by the server)
        # must kill the hung pool and surface DeadlineExceededError.
        return dict(
            engine="cake",
            deadline=HANG_DEADLINE_SECONDS,
            processes=ShardConfig(processes=2, start_method="spawn"),
            verify=VerifyConfig(
                enabled=False,
                inject=NumericFaultPlan(
                    rules=(
                        NumericFaultRule(
                            kind="hang", hang_seconds=HANG_SECONDS
                        ),
                    ),
                    state_dir=str(state_root / f"hang-{uid}"),
                ),
            ),
        )

    variants = [
        {"name": "plain-cake", "kwargs": dict(engine="cake")},
        {"name": "plain-goto", "kwargs": dict(engine="goto")},
        {"name": "threaded", "kwargs": dict(engine="cake", workers=2)},
        {
            "name": "bitflip-heal",
            # ABFT detects the flipped bit at the block barrier and
            # recomputes the strip inside the engine call.
            "kwargs": dict(
                engine="cake",
                verify=VerifyConfig(
                    inject=NumericFaultPlan(
                        rules=(
                            NumericFaultRule(
                                block=0, strip=0, kind="bitflip"
                            ),
                        )
                    )
                ),
            ),
        },
        {"name": "transient-retry", "kwargs": transient},
    ]
    if include_sharded:
        variants.append({"name": "kill-rebuild", "kwargs": kill})
        variants.append(
            {"name": "hang-deadline", "kwargs": hang, "expect": "deadline"}
        )
    return variants


def run_soak(
    *,
    seconds: float = 10.0,
    clients: int = 3,
    n: int = 192,
    machine=None,
    include_sharded: bool = True,
    state_root: str | None = None,
) -> dict:
    """Run the soak and return its audit report (no exiting/printing)."""
    machine = intel_i9_10900k() if machine is None else machine
    root = Path(
        tempfile.mkdtemp(prefix="cake-soak-")
        if state_root is None
        else state_root
    )
    root.mkdir(parents=True, exist_ok=True)

    # Fixed operand pairs and their direct-engine references: the
    # bit-identity oracle every served response is audited against.
    # cores=1 keeps CB blocks small enough that the sharded variants
    # get a real multi-block shard grid at this problem size.
    rng = np.random.default_rng(2021_08)
    m, p, k = max(n // 4, 1), n, 2 * n
    pairs = [
        (
            rng.standard_normal((m, k)).astype(np.float32),
            rng.standard_normal((k, p)).astype(np.float32),
        )
        for _ in range(3)
    ]
    references = {
        "cake": [CakeGemm(machine, cores=1).multiply(a, b).c for a, b in pairs],
        "goto": [GotoGemm(machine, cores=1).multiply(a, b).c for a, b in pairs],
    }

    variants = _variants(root, include_sharded)
    counts = {
        "requests": 0,
        "ok": 0,
        "shed": 0,
        "deadline_exceeded": 0,
        "expected_deadlines": 0,
        "structured_failures": 0,
        "unstructured_failures": 0,
        "silent_wrong": 0,
        "unresolved": 0,
    }
    per_variant: dict[str, dict[str, int]] = {
        v["name"]: {"requests": 0, "ok": 0, "errors": 0} for v in variants
    }
    lock = threading.Lock()

    server = MultiplyServer(
        machine,
        capacity=4 * clients + 8,
        executors=2,
        cores=1,
        retry_policy=RetryPolicy(retries=2, base_delay=0.01, max_delay=0.2),
    )

    stop_at = time.monotonic() + seconds

    def client(worker: int) -> None:
        iteration = 0
        while time.monotonic() < stop_at:
            variant = variants[(worker + iteration) % len(variants)]
            iteration += 1
            uid = f"{worker}-{iteration}"
            kwargs = variant["kwargs"]
            if callable(kwargs):
                kwargs = kwargs(uid)
            index = iteration % len(pairs)
            a, b = pairs[index]
            reference = references[kwargs.get("engine", "cake")][index]
            with lock:
                counts["requests"] += 1
                per_variant[variant["name"]]["requests"] += 1
            try:
                handle = server.submit(a, b, **kwargs)
            except AdmissionError:
                with lock:
                    counts["shed"] += 1
                continue
            try:
                run = handle.result(timeout=RESULT_TIMEOUT_SECONDS)
            except DeadlineExceededError:
                with lock:
                    counts["deadline_exceeded"] += 1
                    if variant.get("expect") == "deadline":
                        counts["expected_deadlines"] += 1
                    else:
                        per_variant[variant["name"]]["errors"] += 1
                continue
            except TimeoutError:
                with lock:
                    counts["unresolved"] += 1
                continue
            except CakeError:
                with lock:
                    counts["structured_failures"] += 1
                    per_variant[variant["name"]]["errors"] += 1
                continue
            except Exception:  # noqa: BLE001 - the contract audit itself
                with lock:
                    counts["unstructured_failures"] += 1
                    per_variant[variant["name"]]["errors"] += 1
                continue
            if np.array_equal(run.c, reference):
                with lock:
                    counts["ok"] += 1
                    per_variant[variant["name"]]["ok"] += 1
            else:
                with lock:
                    counts["silent_wrong"] += 1

    threads = [
        threading.Thread(target=client, args=(w,), name=f"soak-{w}")
        for w in range(clients)
    ]
    wall_start = time.perf_counter()
    server.start()
    try:
        for thread in threads:
            thread.start()
        # Generous join bound: every handle wait is itself bounded, so
        # a thread outliving this is wedged — a deadlock by definition.
        join_deadline = (
            seconds + RESULT_TIMEOUT_SECONDS + HANG_SECONDS + 30.0
        )
        for thread in threads:
            thread.join(timeout=max(1.0, join_deadline))
        deadlocked = any(thread.is_alive() for thread in threads)
    finally:
        server.stop(drain=False)
    wall = time.perf_counter() - wall_start

    stats = server.stats()
    return {
        "seconds": seconds,
        "clients": clients,
        "n": n,
        "include_sharded": include_sharded,
        "wall_seconds": wall,
        "deadlocked": deadlocked or counts["unresolved"] > 0,
        **counts,
        "variants": per_variant,
        "server": stats.as_dict(),
    }


def run_fleet_soak(
    *,
    seconds: float = 10.0,
    clients: int = 3,
    workers: int = 2,
    n: int = 128,
    machine=None,
    kill_every: float = 2.0,
    hang_every: float = 5.0,
    hang_seconds: float = 2.5,
    deadline: float = 30.0,
) -> dict:
    """Fleet soak: worker *processes* are killed and hung under load.

    The shard-level soak (:func:`run_soak`) injects faults inside one
    server; this one injects them at the supervisor level — whole
    worker processes SIGKILLed or control-loop-stalled on timers while
    clients stream multiplies. The audit is identical: every response
    bit-identical to the direct engine reference or a structured
    ``CakeError``, no deadlocks, no silent wrong answers. Requests
    carry a ``deadline`` so a crash mid-request must resolve via
    re-dispatch or structured error *within that budget*, never hang.
    """
    import random

    from repro.runtime.restart import RestartPolicy
    from repro.serve.fleet import FleetServer

    machine = intel_i9_10900k() if machine is None else machine
    rng = np.random.default_rng(2021_08)
    m, p, k = max(n // 4, 1), n, 2 * n
    pairs = [
        (
            rng.standard_normal((m, k)).astype(np.float32),
            rng.standard_normal((k, p)).astype(np.float32),
        )
        for _ in range(3)
    ]
    references = {
        "cake": [CakeGemm(machine, cores=1).multiply(a, b).c for a, b in pairs],
        "goto": [GotoGemm(machine, cores=1).multiply(a, b).c for a, b in pairs],
    }

    variants = [
        {"name": "plain-cake", "kwargs": dict(engine="cake")},
        {"name": "plain-goto", "kwargs": dict(engine="goto")},
        {"name": "threaded", "kwargs": dict(engine="cake", workers=2)},
        {
            "name": "bitflip-heal",
            "kwargs": dict(
                engine="cake",
                verify=VerifyConfig(
                    inject=NumericFaultPlan(
                        rules=(
                            NumericFaultRule(
                                block=0, strip=0, kind="bitflip"
                            ),
                        )
                    )
                ),
            ),
        },
    ]
    counts = {
        "requests": 0,
        "ok": 0,
        "shed": 0,
        "deadline_exceeded": 0,
        "structured_failures": 0,
        "unstructured_failures": 0,
        "silent_wrong": 0,
        "unresolved": 0,
        "kills_injected": 0,
        "hangs_injected": 0,
    }
    per_variant: dict[str, dict[str, int]] = {
        v["name"]: {"requests": 0, "ok": 0, "errors": 0} for v in variants
    }
    lock = threading.Lock()
    result_timeout = deadline + 30.0

    fleet = FleetServer(
        machine,
        workers=workers,
        capacity=4 * clients + 8,
        worker_capacity=4 * clients + 8,
        executors=2,
        cores=1,
        retry_policy=RetryPolicy(retries=2, base_delay=0.01, max_delay=0.2),
        heartbeat_interval=0.1,
        heartbeat_timeout=1.0,
        # The chaos thread kills workers for the whole run: a huge cap
        # plus a short health-reset keeps restarts effectively unbounded
        # here (tests pin the bounded/terminal path separately).
        restart_policy=RestartPolicy(
            max_restarts=1_000_000,
            backoff=RetryPolicy(retries=0, base_delay=0.05, max_delay=0.5),
            reset_after=5.0,
        ),
        max_redispatch=3,
        max_inflight_per_worker=2 * clients,
    )

    stop_at = time.monotonic() + seconds
    chaos_stop = threading.Event()

    def chaos() -> None:
        chooser = random.Random(1337)
        next_kill = time.monotonic() + kill_every
        next_hang = time.monotonic() + hang_every
        while not chaos_stop.wait(0.05):
            now = time.monotonic()
            ready = fleet.supervisor.ready_indices()
            if not ready:
                continue
            if kill_every > 0 and now >= next_kill:
                fleet.kill_worker(chooser.choice(ready))
                next_kill = now + kill_every
                with lock:
                    counts["kills_injected"] += 1
            if hang_every > 0 and now >= next_hang:
                fleet.hang_worker(chooser.choice(ready), hang_seconds)
                next_hang = now + hang_every
                with lock:
                    counts["hangs_injected"] += 1

    def client(worker: int) -> None:
        iteration = 0
        while time.monotonic() < stop_at:
            variant = variants[(worker + iteration) % len(variants)]
            iteration += 1
            kwargs = dict(variant["kwargs"])
            index = iteration % len(pairs)
            a, b = pairs[index]
            reference = references[kwargs.get("engine", "cake")][index]
            with lock:
                counts["requests"] += 1
                per_variant[variant["name"]]["requests"] += 1
            try:
                handle = fleet.submit(a, b, deadline=deadline, **kwargs)
            except AdmissionError:
                with lock:
                    counts["shed"] += 1
                continue
            try:
                run = handle.result(timeout=result_timeout)
            except DeadlineExceededError:
                with lock:
                    counts["deadline_exceeded"] += 1
                    per_variant[variant["name"]]["errors"] += 1
                continue
            except TimeoutError:
                with lock:
                    counts["unresolved"] += 1
                continue
            except CakeError:
                with lock:
                    counts["structured_failures"] += 1
                    per_variant[variant["name"]]["errors"] += 1
                continue
            except Exception:  # noqa: BLE001 - the contract audit itself
                with lock:
                    counts["unstructured_failures"] += 1
                    per_variant[variant["name"]]["errors"] += 1
                continue
            if np.array_equal(run.c, reference):
                with lock:
                    counts["ok"] += 1
                    per_variant[variant["name"]]["ok"] += 1
            else:
                with lock:
                    counts["silent_wrong"] += 1

    threads = [
        threading.Thread(target=client, args=(w,), name=f"fleet-soak-{w}")
        for w in range(clients)
    ]
    chaos_thread = threading.Thread(target=chaos, name="fleet-soak-chaos")
    wall_start = time.perf_counter()
    fleet.start()
    try:
        for thread in threads:
            thread.start()
        chaos_thread.start()
        join_deadline = seconds + result_timeout + 30.0
        for thread in threads:
            thread.join(timeout=max(1.0, join_deadline))
        deadlocked = any(thread.is_alive() for thread in threads)
        chaos_stop.set()
        chaos_thread.join(5.0)
    finally:
        chaos_stop.set()
        fleet.stop(drain=False)
    wall = time.perf_counter() - wall_start

    stats = fleet.stats()
    return {
        "seconds": seconds,
        "clients": clients,
        "workers": workers,
        "n": n,
        "wall_seconds": wall,
        "deadlocked": deadlocked or counts["unresolved"] > 0,
        **counts,
        "variants": per_variant,
        "fleet": stats.as_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fault-injected soak of the multiply server "
        "(nonzero exit on silent wrong answers or deadlocks)."
    )
    parser.add_argument("--seconds", type=float, default=10.0)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--n", type=int, default=192)
    parser.add_argument(
        "--no-sharded",
        action="store_true",
        help="skip the kill/hang shard variants (single-core hosts)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the report here"
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="WORKERS",
        help="run the supervisor-level fleet soak with this many worker "
        "processes being killed/hung under load (0: single-server soak)",
    )
    args = parser.parse_args(argv)

    if args.fleet > 0:
        report = run_fleet_soak(
            seconds=args.seconds,
            clients=args.clients,
            workers=args.fleet,
            n=args.n,
        )
    else:
        report = run_soak(
            seconds=args.seconds,
            clients=args.clients,
            n=args.n,
            include_sharded=not args.no_sharded,
        )
    print(json.dumps(report, indent=2, default=str))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2, default=str))

    if report["deadlocked"]:
        print("SOAK FAILED: deadlock (unresolved requests)", file=sys.stderr)
        return 2
    if report["silent_wrong"] or report["unstructured_failures"]:
        print(
            "SOAK FAILED: "
            f"{report['silent_wrong']} silent wrong answers, "
            f"{report['unstructured_failures']} unstructured failures",
            file=sys.stderr,
        )
        return 1
    if report["ok"] == 0:
        print("SOAK FAILED: no request succeeded", file=sys.stderr)
        return 1
    print(
        f"soak OK: {report['ok']}/{report['requests']} bit-identical, "
        f"{report['shed']} shed, "
        f"{report['deadline_exceeded']} deadline-expired, "
        f"{report['structured_failures']} structured failures, "
        f"0 silent wrong answers, no deadlocks"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
