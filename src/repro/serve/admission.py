"""Admission control: the bounded front door.

A server without admission control does not have a queue, it has a
memory leak with latency attached. The policy here is deliberately
simple and *total* — every submit is answered immediately, either with
a queued handle or a structured :class:`~repro.errors.AdmissionError`
that tells the client what to do next:

* ``reason="deadline"`` — the budget was non-positive at submit time.
  Executing it could only ever produce a stale result, so it is shed
  *before* queueing; retrying with the same budget cannot help
  (``retry_after=None``).
* ``reason="capacity"`` — the bounded queue is full. ``retry_after``
  estimates when a slot should free up from the recent per-request
  service latency and the current backlog.
* ``reason="shutdown"`` — the server is stopping; no retry hint.

The decision is a pure function of its numeric inputs
(:func:`admission_decision`), which is what the hypothesis suite
drives: *no* combination of queue depth, capacity, latency estimate
and clock may admit a request whose deadline has already passed.
"""

from __future__ import annotations

from repro.errors import AdmissionError

#: Fallback per-request service estimate before any latency history
#: exists (seconds). Only feeds the retry-after hint, never admission.
DEFAULT_SERVICE_ESTIMATE = 0.05


def retry_after_hint(
    queue_depth: int,
    executors: int,
    service_estimate: "float | None",
) -> float:
    """Estimated seconds until a queue slot frees up.

    Backlog divided by drain rate: ``depth / executors`` requests must
    complete ahead of a retry, each taking roughly the recent p50
    service latency.
    """
    estimate = (
        DEFAULT_SERVICE_ESTIMATE
        if service_estimate is None or service_estimate <= 0
        else service_estimate
    )
    waves = max(1.0, queue_depth / max(1, executors))
    return waves * estimate


def admission_decision(
    *,
    queue_depth: int,
    capacity: int,
    deadline_budget: "float | None",
    executors: int = 1,
    service_estimate: "float | None" = None,
    stopping: bool = False,
) -> AdmissionError | None:
    """Admit (``None``) or refuse (the error to raise) one request.

    Checks run in severity order — shutdown, then spent deadline, then
    capacity — so a non-positive budget is *always* shed as
    ``reason="deadline"`` regardless of queue state (the property the
    hypothesis suite pins: shed at the door, never executed).
    """
    if stopping:
        return AdmissionError(
            "shutdown",
            "server is stopping",
            queue_depth,
            capacity,
            None,
        )
    if deadline_budget is not None and deadline_budget <= 0:
        return AdmissionError(
            "deadline",
            f"deadline budget {deadline_budget:.6g}s is already spent",
            queue_depth,
            capacity,
            None,
        )
    if queue_depth >= capacity:
        return AdmissionError(
            "capacity",
            "queue is full",
            queue_depth,
            capacity,
            retry_after_hint(queue_depth, executors, service_estimate),
        )
    return None
