"""Worker-process supervision: heartbeats, crash/hang detection, restarts.

The fleet's robustness story lives here, deliberately separated from
request routing (:mod:`repro.serve.fleet`). A :class:`Supervisor` owns N
worker *slots*; each slot runs :func:`worker_main` in its own spawned
process hosting a full :class:`~repro.serve.server.MultiplyServer` —
admission, deadlines, degradation ladder and all — and talks to the
parent over a duplex :func:`multiprocessing.Pipe`.

Per slot the supervisor runs the classic state machine::

    STARTING ──ready──▶ READY ──crash/hang──▶ RESTARTING ──▶ STARTING
        │                  │                       │
        └──────────────────┴── budget exhausted ──▶ TERMINAL

* **Liveness** is active: a ping thread sends ``("ping", seq)`` every
  ``heartbeat_interval``; the worker answers ``("pong", seq, pending)``
  from its control loop. No pong for ``heartbeat_timeout`` seconds
  means the process is hung (even if the OS still shows it alive) and
  it is killed and restarted exactly like a crash.
* **Crash detection** is passive: the receiver thread sees EOF on the
  pipe the moment the child dies, no polling latency.
* **Restarts** walk the shared capped-backoff ladder
  (:class:`~repro.runtime.restart.RestartTracker` — the same machinery
  as the experiment runtime's pool rebuilds), with a health reset so a
  long-lived worker that dies occasionally is not marched toward
  TERMINAL by sheer uptime. An exhausted budget is *structured*: the
  slot goes TERMINAL and the fleet is told via ``on_down(...,
  terminal=True)``.

The supervisor never touches request semantics — it reports worker
death upward (``on_down``) and forwards worker messages upward
(``on_message``); the fleet decides what re-dispatch means. Callbacks
are invoked **without** the supervisor lock held; lock order is always
fleet-lock → supervisor-lock, never the reverse.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.errors import CakeError, WorkerCrashError
from repro.runtime.restart import RestartPolicy, RestartTracker

#: Slot states (strings for cheap snapshots / JSON reports).
STARTING = "starting"
READY = "ready"
RESTARTING = "restarting"
TERMINAL = "terminal"
STOPPED = "stopped"


@dataclass(frozen=True)
class WorkerOptions:
    """Picklable constructor bundle for the per-worker MultiplyServer.

    ``machine=None`` resolves to the default machine *inside* the
    worker; a custom :class:`~repro.machine.MachineSpec` is a frozen
    dataclass and pickles fine across spawn.
    """

    machine: object = None
    capacity: int = 16
    executors: int = 2
    max_batch: int = 8
    cores: "int | None" = None
    default_deadline: "float | None" = None
    retry_policy: object = None
    result_timeout: float = 300.0


def worker_main(conn, index: int, options: WorkerOptions) -> None:
    """Entry point of one worker process (top-level: spawn pickles it).

    Runs a MultiplyServer and a control loop over the pipe:

    * ``("ping", seq)`` → ``("pong", seq, pending_count)``
    * ``("exec", req_id, kwargs)`` → submit to the local server; a
      daemon waiter thread sends ``("result", req_id, "ok", run)`` or
      ``("result", req_id, "error", exc)`` when the handle resolves.
    * ``("hang", seconds)`` → sleep in the control loop (fault
      injection: heartbeats stop, the supervisor must notice).
    * ``("die",)`` → ``os._exit`` (fault injection: hard crash).
    * ``("stop",)`` → drain=False server stop, then exit.
    """
    from repro.serve.server import MultiplyServer

    server = MultiplyServer(
        options.machine,
        capacity=options.capacity,
        executors=options.executors,
        max_batch=options.max_batch,
        cores=options.cores,
        default_deadline=options.default_deadline,
        retry_policy=options.retry_policy,
    )
    server.start()
    send_lock = threading.Lock()

    def send(msg) -> None:
        # One pipe, many waiter threads: serialize sends, and never let
        # an unpicklable payload kill the worker — degrade it to a
        # structured CakeError instead.
        try:
            with send_lock:
                conn.send(msg)
        except (BrokenPipeError, OSError):
            pass
        except (pickle.PicklingError, TypeError, AttributeError):
            if msg and msg[0] == "result":
                fallback = CakeError(
                    f"worker {index}: result for {msg[1]} not picklable"
                )
                with send_lock:
                    conn.send((msg[0], msg[1], "error", fallback))

    def wait_and_send(req_id: str, handle) -> None:
        try:
            run = handle.result(timeout=options.result_timeout)
        except BaseException as exc:  # noqa: BLE001 - forwarded upward
            send(("result", req_id, "error", exc))
            return
        send(("result", req_id, "ok", run))

    send(("ready", index, os.getpid()))
    try:
        while True:
            if not conn.poll(0.2):
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "ping":
                send(("pong", msg[1], server.pending_count()))
            elif kind == "exec":
                req_id, kwargs = msg[1], msg[2]
                try:
                    handle = server.submit(
                        kwargs.pop("a"), kwargs.pop("b"), **kwargs
                    )
                except BaseException as exc:  # noqa: BLE001
                    send(("result", req_id, "error", exc))
                    continue
                threading.Thread(
                    target=wait_and_send,
                    args=(req_id, handle),
                    daemon=True,
                ).start()
            elif kind == "hang":
                time.sleep(msg[1])
            elif kind == "die":
                os._exit(17)
            elif kind == "stop":
                break
    finally:
        server.stop(drain=False)


class CircuitBreaker:
    """Per-worker trip wire: shed to siblings before hammering a flake.

    ``threshold`` consecutive failures open the breaker for
    ``cooldown`` seconds; a success closes it. The fleet consults
    :meth:`allows` when choosing a slot, so a worker that keeps dying
    stops receiving traffic before its restart budget runs out.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 1.0) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.open_until = 0.0

    def record_failure(self, now: "float | None" = None) -> None:
        now = time.monotonic() if now is None else now
        self.failures += 1
        if self.failures >= self.threshold:
            self.open_until = now + self.cooldown

    def record_success(self) -> None:
        self.failures = 0
        self.open_until = 0.0

    def allows(self, now: "float | None" = None) -> bool:
        now = time.monotonic() if now is None else now
        return now >= self.open_until


@dataclass
class _Slot:
    """One worker slot: process + channel + ladder + liveness clock."""

    index: int
    state: str = STARTING
    process: object = None
    conn: object = None
    pid: "int | None" = None
    generation: int = 0
    started_at: float = 0.0
    ready_at: float = 0.0
    last_pong: float = 0.0
    restart_at: float = 0.0
    pending: int = 0
    tracker: RestartTracker = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    last_error: "WorkerCrashError | None" = None


class Supervisor:
    """Owns N worker slots; detects death, restarts with capped backoff.

    ``on_message(index, msg)`` forwards worker traffic (results) to the
    fleet; ``on_down(index, cause, error, terminal)`` reports a lost
    worker so the fleet can re-dispatch its in-flight requests. Both
    are called from supervisor threads with **no supervisor lock held**.
    """

    def __init__(
        self,
        workers: int,
        options: WorkerOptions,
        *,
        on_message=None,
        on_down=None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        startup_timeout: float = 120.0,
        restart_policy: "RestartPolicy | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        self.workers = workers
        self.options = options
        self.on_message = on_message or (lambda index, msg: None)
        self.on_down = on_down or (lambda index, cause, error, terminal: None)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.startup_timeout = startup_timeout
        self.restart_policy = restart_policy or RestartPolicy()
        # spawn, not fork: the parent runs dispatcher/executor threads,
        # and forking a threaded process can deadlock in the child.
        self._ctx = mp.get_context(start_method)
        self._lock = threading.Lock()
        self._slots = [
            _Slot(
                index=i,
                tracker=RestartTracker(self.restart_policy, seed=i),
                breaker=CircuitBreaker(breaker_threshold, breaker_cooldown),
            )
            for i in range(workers)
        ]
        self._send_locks = [threading.Lock() for _ in range(workers)]
        self._running = False
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Supervisor":
        with self._lock:
            if self._running:
                return self
            self._running = True
        for slot in self._slots:
            self._launch(slot)
        for target, name in (
            (self._ping_loop, "cake-fleet-ping"),
            (self._monitor_loop, "cake-fleet-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        with self._lock:
            if not self._running:
                return
            self._running = False
            slots = list(self._slots)
        for slot in slots:
            self._send(slot, ("stop",))
        deadline = time.monotonic() + timeout
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(1.0)
            with self._lock:
                slot.state = STOPPED
        for thread in self._threads:
            thread.join(2.0)

    # -- queries -------------------------------------------------------------

    def ready_indices(self) -> "list[int]":
        with self._lock:
            return [s.index for s in self._slots if s.state == READY]

    def live_count(self) -> int:
        with self._lock:
            return sum(
                1 for s in self._slots if s.state in (READY, STARTING)
            )

    def all_terminal(self) -> bool:
        with self._lock:
            return all(s.state == TERMINAL for s in self._slots)

    def pending_total(self) -> int:
        """Sum of last-reported per-worker pending counts (pong payload)."""
        with self._lock:
            return sum(s.pending for s in self._slots if s.state == READY)

    def total_restarts(self) -> int:
        with self._lock:
            return sum(s.tracker.total_restarts for s in self._slots)

    def breaker(self, index: int) -> CircuitBreaker:
        return self._slots[index].breaker

    def slot_error(self, index: int) -> "WorkerCrashError | None":
        with self._lock:
            return self._slots[index].last_error

    def snapshot(self) -> "list[dict]":
        with self._lock:
            return [
                {
                    "index": s.index,
                    "state": s.state,
                    "pid": s.pid,
                    "generation": s.generation,
                    "restarts": s.tracker.total_restarts,
                    "pending": s.pending,
                }
                for s in self._slots
            ]

    # -- worker I/O ----------------------------------------------------------

    def send_exec(self, index: int, req_id: str, payload: dict) -> bool:
        """Dispatch one request to a worker; False if the send failed.

        A failed send means the worker just died — the receiver thread
        will see EOF and run the full ``on_down`` path; the caller only
        needs to keep the request queued.
        """
        return self._send(self._slots[index], ("exec", req_id, payload))

    def kill_worker(self, index: int) -> None:
        """Fault injection: SIGKILL the slot's process (no cleanup)."""
        process = self._slots[index].process
        if process is not None and process.is_alive():
            process.kill()

    def hang_worker(self, index: int, seconds: float) -> None:
        """Fault injection: stall the worker's control loop (no pongs)."""
        self._send(self._slots[index], ("hang", seconds))

    def _send(self, slot: _Slot, msg) -> bool:
        conn = slot.conn
        if conn is None:
            return False
        try:
            with self._send_locks[slot.index]:
                conn.send(msg)
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False

    # -- slot machinery ------------------------------------------------------

    def _launch(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        with self._lock:
            slot.generation += 1
            generation = slot.generation
            slot.conn = parent_conn
            slot.state = STARTING
            slot.started_at = time.monotonic()
            slot.last_pong = slot.started_at
            slot.pending = 0
            process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, slot.index, self.options),
                name=f"cake-fleet-worker-{slot.index}",
                daemon=True,
            )
            slot.process = process
        process.start()
        # Close the child's pipe end in the parent: otherwise EOF is
        # never delivered when the child dies and crashes go unnoticed.
        child_conn.close()
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(slot, generation, parent_conn),
            name=f"cake-fleet-recv-{slot.index}",
            daemon=True,
        )
        receiver.start()

    def _receive_loop(self, slot: _Slot, generation: int, conn) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self._worker_lost(slot, generation, "crash")
                return
            with self._lock:
                if slot.generation != generation:
                    return  # stale receiver from a replaced process
                kind = msg[0]
                if kind == "ready":
                    slot.state = READY
                    slot.pid = msg[2]
                    slot.ready_at = time.monotonic()
                    slot.last_pong = slot.ready_at
                    continue
                if kind == "pong":
                    slot.last_pong = time.monotonic()
                    slot.pending = msg[2]
                    continue
            # "result" frames go upward without any supervisor lock.
            self.on_message(slot.index, msg)

    def _ping_loop(self) -> None:
        while True:
            time.sleep(self.heartbeat_interval)
            with self._lock:
                if not self._running:
                    return
                targets = [s for s in self._slots if s.state == READY]
            for slot in targets:
                self._send(slot, ("ping", time.monotonic()))

    def _monitor_loop(self) -> None:
        while True:
            time.sleep(self.heartbeat_interval / 2)
            now = time.monotonic()
            hung = []
            relaunch = []
            with self._lock:
                if not self._running:
                    return
                for slot in self._slots:
                    if (
                        slot.state == READY
                        and now - slot.last_pong > self.heartbeat_timeout
                    ):
                        hung.append((slot, slot.generation))
                    elif (
                        slot.state == STARTING
                        and now - slot.started_at > self.startup_timeout
                    ):
                        hung.append((slot, slot.generation))
                    elif (
                        slot.state == RESTARTING and now >= slot.restart_at
                    ):
                        relaunch.append(slot)
            for slot, generation in hung:
                self._worker_lost(slot, generation, "hang")
            for slot in relaunch:
                self._launch(slot)

    def _worker_lost(self, slot: _Slot, generation: int, cause: str) -> None:
        """One worker death: tear down, schedule restart (or TERMINAL).

        Idempotent per generation — the receiver's EOF and the
        monitor's hang verdict can both fire for the same death; only
        the first claims the generation.
        """
        with self._lock:
            if slot.generation != generation or slot.state in (
                RESTARTING,
                TERMINAL,
                STOPPED,
            ):
                return
            if not self._running:
                slot.state = STOPPED
                return
            process = slot.process
            pid = slot.pid
            healthy = (
                time.monotonic() - slot.ready_at
                if slot.state == READY
                else 0.0
            )
            slot.state = RESTARTING
        if process is not None:
            process.terminate()
            process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
        exitcode = None if process is None else process.exitcode
        with self._lock:
            slot.tracker.note_healthy_seconds(healthy)
            delay = slot.tracker.next_delay()
            error = WorkerCrashError(
                worker=slot.index,
                pid=pid,
                exitcode=exitcode,
                restarts=slot.tracker.total_restarts,
            )
            slot.last_error = error
            terminal = delay is None
            if terminal:
                slot.state = TERMINAL
                slot.conn = None
            else:
                slot.restart_at = time.monotonic() + delay
        # Callback outside the lock: the fleet will take its own lock
        # to re-dispatch, and may call back into supervisor queries.
        self.on_down(slot.index, cause, error, terminal)
