"""The serving fleet: N supervised worker processes, one front door.

:class:`FleetServer` scales :class:`~repro.serve.server.MultiplyServer`
past one Python process while keeping the whole serving contract: every
answer bit-identical to direct ``cake_matmul`` or a structured
:class:`~repro.errors.CakeError`, every request terminating — through
process death included. The division of labour:

* Each worker process hosts an untouched ``MultiplyServer`` (admission,
  deadlines, degradation ladder), built and supervised by
  :class:`~repro.serve.supervisor.Supervisor`.
* The fleet owns **routing**: a bounded fleet queue, least-loaded slot
  choice among heartbeat-live workers whose circuit breaker allows
  traffic, and fleet-wide backpressure — ``AdmissionError.retry_after``
  is computed from the *aggregate* depth (fleet queue + every worker's
  last-reported pending count).
* The fleet owns **re-dispatch**: when a worker dies holding requests,
  each in-flight request is either re-queued to a healthy worker (up to
  ``max_redispatch`` times) or resolved with a structured
  :class:`~repro.errors.WorkerCrashError`. Re-execution is safe because
  results are bit-identical by construction, and *at-most-once-answer*
  is enforced by first-wins :class:`~repro.serve.request.ResponseHandle`
  resolution keyed by content-hash request ids — if a presumed-dead
  worker's answer arrives after a re-dispatch already resolved the
  handle, the late answer is discarded.
* Graceful drain: ``stop(drain=True)`` waits (bounded) for in-flight
  work, then resolves anything left with ``AdmissionError("shutdown")``
  — a submit racing shutdown always gets a structured outcome, never a
  hung handle.

:class:`FleetFrontDoor` exposes a fleet over TCP speaking
``cake-serve/v1`` (:mod:`repro.serve.protocol`);
:class:`FleetClient` is the matching stdlib client.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    AdmissionError,
    CakeError,
    DeadlineExceededError,
    FleetError,
    ProtocolError,
    WorkerCrashError,
)
from repro.gemm.backends import resolve_backend
from repro.gemm.parallel import check_multiply_operands
from repro.gemm.result import GemmRun
from repro.runtime.deadline import Deadline
from repro.runtime.restart import RestartPolicy
from repro.serve.admission import admission_decision
from repro.serve.protocol import (
    PROTOCOL,
    decode_arrays,
    decode_error,
    encode_arrays,
    encode_error,
    recv_frame,
    send_frame,
)
from repro.serve.request import (
    MultiplyRequest,
    ResponseHandle,
    ServeReport,
    content_seed,
)
from repro.serve.server import _VALID_ENGINES, _percentile
from repro.serve.supervisor import Supervisor, WorkerOptions


@dataclass(frozen=True, slots=True)
class FleetStats:
    """A consistent snapshot of fleet-level health and throughput."""

    workers: int
    live_workers: int
    workers_terminal: int
    queue_depth: int
    in_flight: int
    capacity: int
    submitted: int
    admitted: int
    completed: int
    failed: int
    shed_capacity: int
    shed_deadline: int
    shed_shutdown: int
    deadline_exceeded: int
    redispatched: int
    worker_crashes: int
    worker_hangs: int
    worker_restarts: int
    p50_seconds: float
    p99_seconds: float
    worker_states: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "live_workers": self.live_workers,
            "workers_terminal": self.workers_terminal,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "capacity": self.capacity,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed_capacity": self.shed_capacity,
            "shed_deadline": self.shed_deadline,
            "shed_shutdown": self.shed_shutdown,
            "deadline_exceeded": self.deadline_exceeded,
            "redispatched": self.redispatched,
            "worker_crashes": self.worker_crashes,
            "worker_hangs": self.worker_hangs,
            "worker_restarts": self.worker_restarts,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "worker_states": list(self.worker_states),
        }


@dataclass(slots=True)
class _FleetPending:
    """One admitted request while it is queued or assigned."""

    seq: int
    req_id: str
    request: MultiplyRequest
    handle: ResponseHandle
    enqueued_at: float
    redispatches: int = 0


class FleetServer:
    """Supervised multi-process multiply service (drop-in ``submit``).

    Duck-type compatible with :class:`~repro.serve.server.MultiplyServer`
    for ``submit``/``multiply``/``stats``/``start``/``stop``, so the
    load generator and soak harness drive either interchangeably.
    """

    def __init__(
        self,
        machine=None,
        *,
        workers: int = 2,
        capacity: int = 64,
        worker_capacity: int = 16,
        executors: int = 2,
        max_batch: int = 8,
        cores: "int | None" = None,
        default_deadline: "float | None" = None,
        retry_policy=None,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        startup_timeout: float = 120.0,
        restart_policy: "RestartPolicy | None" = None,
        max_redispatch: int = 2,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        max_inflight_per_worker: int = 4,
        start_method: str = "spawn",
        stats_window: int = 512,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_redispatch < 0:
            raise ValueError(
                f"max_redispatch must be >= 0, got {max_redispatch}"
            )
        if not 1 <= max_inflight_per_worker <= worker_capacity:
            raise ValueError(
                "max_inflight_per_worker must be in "
                f"[1, worker_capacity={worker_capacity}], "
                f"got {max_inflight_per_worker}"
            )
        self.workers = workers
        self.capacity = capacity
        self.executors = executors
        self.default_deadline = default_deadline
        self.max_redispatch = max_redispatch
        self.max_inflight_per_worker = max_inflight_per_worker
        self._options = WorkerOptions(
            machine=machine,
            capacity=worker_capacity,
            executors=executors,
            max_batch=max_batch,
            cores=cores,
            default_deadline=default_deadline,
            retry_policy=retry_policy,
        )
        self.supervisor = Supervisor(
            workers,
            self._options,
            on_message=self._on_worker_message,
            on_down=self._on_worker_down,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            startup_timeout=startup_timeout,
            restart_policy=restart_policy,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            start_method=start_method,
        )
        self._cond = threading.Condition()
        self._queue: "list[_FleetPending]" = []
        #: req_id → (slot index, pending); the fleet's in-flight map.
        self._assigned: "dict[str, tuple[int, _FleetPending]]" = {}
        self._seq = 0
        self._running = False
        self._stopping = False
        self._dispatcher: "threading.Thread | None" = None
        self._counters = {
            "submitted": 0,
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "shed_capacity": 0,
            "shed_deadline": 0,
            "shed_shutdown": 0,
            "deadline_exceeded": 0,
            "redispatched": 0,
            "worker_crashes": 0,
            "worker_hangs": 0,
        }
        self._latencies: "list[float]" = []
        self._stats_window = stats_window

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FleetServer":
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._stopping = False
        self.supervisor.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="cake-fleet-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def stop(self, *, drain: bool = True, timeout: "float | None" = None) -> None:
        """Stop the fleet; every admitted handle resolves, never hangs.

        ``drain=True`` waits (bounded by ``timeout``, default 30s) for
        queued and in-flight requests to finish; whatever remains — and
        everything when ``drain=False`` — is resolved with
        ``AdmissionError("shutdown")`` before the workers are torn down.
        """
        budget = 30.0 if timeout is None else timeout
        deadline = time.monotonic() + budget
        with self._cond:
            if not self._running:
                return
            self._stopping = True
            self._cond.notify_all()
            if drain:
                while (self._queue or self._assigned) and (
                    time.monotonic() < deadline
                ):
                    self._cond.wait(timeout=0.05)
            leftovers = [p for p in self._queue]
            leftovers.extend(p for _, p in self._assigned.values())
            self._queue.clear()
            self._assigned.clear()
            for pending in leftovers:
                if pending.handle.resolve(
                    error=AdmissionError(
                        "shutdown",
                        "fleet stopped before completion",
                        len(leftovers),
                        self.capacity,
                        None,
                    )
                ):
                    self._counters["shed_shutdown"] += 1
            self._cond.notify_all()
        self.supervisor.stop()
        if self._dispatcher is not None:
            self._dispatcher.join(5.0)
        with self._cond:
            self._running = False

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- client surface ------------------------------------------------------

    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        engine: str = "cake",
        deadline: "float | None" = None,
        priority: int = 0,
        verify=False,
        backend: "str | None" = None,
        workers: "int | None" = None,
        processes=None,
    ) -> ResponseHandle:
        """Admit one multiply fleet-wide; structured shed otherwise.

        Validation runs here in the parent (same checks as
        ``MultiplyServer.submit``), so a request that can never execute
        is refused synchronously instead of burning a worker round trip.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if engine not in _VALID_ENGINES:
            raise ValueError(
                f"engine must be one of {_VALID_ENGINES}, got {engine!r}"
            )
        spec = resolve_backend(backend)
        check_multiply_operands(a, b, backend=spec)
        budget = self.default_deadline if deadline is None else deadline
        aggregate_pending = self.supervisor.pending_total()
        all_terminal = self.supervisor.all_terminal()
        with self._cond:
            self._counters["submitted"] += 1
            if all_terminal and not self._stopping:
                raise FleetError(
                    "no-workers",
                    "every worker slot exhausted its restart budget",
                    self.workers,
                )
            decision = admission_decision(
                queue_depth=len(self._queue)
                + len(self._assigned)
                + aggregate_pending,
                capacity=self.capacity,
                deadline_budget=budget,
                executors=self.workers * self.executors,
                service_estimate=self._p50_locked(),
                stopping=self._stopping or not self._running,
            )
            if decision is not None:
                self._counters["shed_" + decision.reason] += 1
                raise decision
            seq = self._seq
            self._seq += 1
            now = time.monotonic()
            request = MultiplyRequest(
                a=a,
                b=b,
                engine=engine,
                deadline=budget,
                priority=priority,
                verify=verify,
                backend=backend,
                workers=workers,
                processes=processes,
            )
            report = ServeReport(
                request_id=seq,
                engine=engine,
                deadline=budget,
                priority=priority,
                backend=backend,
                workers=workers,
            )
            handle = ResponseHandle(
                request,
                report,
                None if budget is None else Deadline.after(budget, now=now),
                now,
            )
            pending = _FleetPending(
                seq=seq,
                # Content-hash id: re-dispatching the same request keeps
                # the same identity, which is what makes duplicate
                # answers from a presumed-dead worker safely ignorable.
                req_id=f"{seq}:{content_seed(a, b):08x}",
                request=request,
                handle=handle,
                enqueued_at=now,
            )
            self._queue.append(pending)
            self._counters["admitted"] += 1
            self._cond.notify_all()
        return handle

    def multiply(self, a: np.ndarray, b: np.ndarray, **kwargs) -> GemmRun:
        """Submit-and-wait convenience: one blocking round trip."""
        return self.submit(a, b, **kwargs).result()

    def stats(self) -> FleetStats:
        snapshot = self.supervisor.snapshot()
        live = sum(
            1 for s in snapshot if s["state"] in ("ready", "starting")
        )
        terminal = sum(1 for s in snapshot if s["state"] == "terminal")
        restarts = sum(s["restarts"] for s in snapshot)
        with self._cond:
            latencies = list(self._latencies)
            return FleetStats(
                workers=self.workers,
                live_workers=live,
                workers_terminal=terminal,
                queue_depth=len(self._queue),
                in_flight=len(self._assigned),
                capacity=self.capacity,
                p50_seconds=_percentile(latencies, 50.0),
                p99_seconds=_percentile(latencies, 99.0),
                worker_restarts=restarts,
                worker_states=snapshot,
                **self._counters,
            )

    # -- chaos passthroughs (fault injection for soak/tests) -----------------

    def kill_worker(self, index: int) -> None:
        self.supervisor.kill_worker(index)

    def hang_worker(self, index: int, seconds: float) -> None:
        self.supervisor.hang_worker(index, seconds)

    # -- dispatch ------------------------------------------------------------

    def _p50_locked(self) -> "float | None":
        if not self._latencies:
            return None
        return _percentile(self._latencies, 50.0)

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopping and not self._queue:
                    return
                if not self._queue:
                    self._cond.wait(timeout=0.05)
                    continue
                now = time.monotonic()
                self._expire_queued_locked(now)
                if not self._queue:
                    continue
                if self.supervisor.all_terminal():
                    # No worker will ever come back: fail queued work
                    # structurally instead of letting deadlines burn.
                    for pending in self._queue:
                        error = self.supervisor.slot_error(0) or FleetError(
                            "no-workers",
                            "every worker slot exhausted its restart "
                            "budget",
                            self.workers,
                        )
                        if pending.handle.resolve(error=error):
                            self._counters["failed"] += 1
                    self._queue.clear()
                    self._cond.notify_all()
                    continue
                slot = self._pick_slot_locked(now)
                if slot is None:
                    self._cond.wait(timeout=0.02)
                    continue
                pending = self._pop_next_locked()
                self._assigned[pending.req_id] = (slot, pending)
            # Send outside the fleet lock: pipes can block.
            if not self._dispatch_one(slot, pending):
                with self._cond:
                    # The worker died between pick and send; requeue
                    # without burning the re-dispatch budget (the
                    # request never reached a worker).
                    if self._assigned.pop(pending.req_id, None) is not None:
                        self._queue.insert(0, pending)
                        self._cond.notify_all()

    def _expire_queued_locked(self, now: float) -> None:
        kept = []
        for pending in self._queue:
            if pending.handle.expired(now):
                if pending.handle.resolve(
                    error=DeadlineExceededError(
                        "queue",
                        budget=pending.request.deadline,
                        elapsed=now - pending.enqueued_at,
                    )
                ):
                    self._counters["deadline_exceeded"] += 1
            else:
                kept.append(pending)
        if len(kept) != len(self._queue):
            self._queue[:] = kept
            self._cond.notify_all()

    def _pick_slot_locked(self, now: float) -> "int | None":
        """Least-loaded READY worker whose breaker admits traffic."""
        loads: "dict[int, int]" = {}
        for index, _ in self._assigned.values():
            loads[index] = loads.get(index, 0) + 1
        best = None
        best_load = None
        for index in self.supervisor.ready_indices():
            if not self.supervisor.breaker(index).allows(now):
                continue
            load = loads.get(index, 0)
            if load >= self.max_inflight_per_worker:
                continue
            if best_load is None or load < best_load:
                best, best_load = index, load
        return best

    def _pop_next_locked(self) -> _FleetPending:
        best = 0
        for i in range(1, len(self._queue)):
            if self._queue[i].request.priority > self._queue[best].request.priority:
                best = i
        return self._queue.pop(best)

    def _dispatch_one(self, slot: int, pending: _FleetPending) -> bool:
        request = pending.request
        remaining = None
        if pending.handle.deadline is not None:
            remaining = pending.handle.deadline.remaining()
        payload = {
            "a": request.a,
            "b": request.b,
            "engine": request.engine,
            "deadline": remaining,
            "priority": request.priority,
            "verify": request.verify,
            "backend": request.backend,
            "workers": request.workers,
            "processes": request.processes,
        }
        return self.supervisor.send_exec(slot, pending.req_id, payload)

    # -- supervisor callbacks ------------------------------------------------

    def _on_worker_message(self, index: int, msg) -> None:
        if msg[0] != "result":
            return
        req_id, status, payload = msg[1], msg[2], msg[3]
        with self._cond:
            entry = self._assigned.pop(req_id, None)
            if entry is None:
                # Late duplicate: a presumed-dead worker answered after
                # re-dispatch. First-wins resolution already guarantees
                # at-most-once-answer; nothing to do.
                return
            _, pending = entry
            self.supervisor.breaker(index).record_success()
            if status == "ok":
                run = payload
                if pending.handle.expired():
                    if pending.handle.resolve(
                        error=DeadlineExceededError(
                            "result-wait",
                            budget=pending.request.deadline,
                            elapsed=time.monotonic() - pending.enqueued_at,
                        )
                    ):
                        self._counters["deadline_exceeded"] += 1
                elif pending.handle.resolve(run=run):
                    self._counters["completed"] += 1
                    self._latencies.append(
                        time.monotonic() - pending.enqueued_at
                    )
                    del self._latencies[: -self._stats_window]
            else:
                error = payload
                if isinstance(error, AdmissionError) and error.reason == (
                    "deadline"
                ):
                    # The worker's own admission shed it for a spent
                    # budget: surface the fleet-level truth (the budget
                    # ran out in transit/queue), not a nested admission.
                    error = DeadlineExceededError(
                        "queue",
                        budget=pending.request.deadline,
                        elapsed=time.monotonic() - pending.enqueued_at,
                    )
                if isinstance(
                    error, AdmissionError
                ) and error.reason == "capacity":
                    # Worker queue full (fleet raced its own view of
                    # pending depth): retry on another worker rather
                    # than failing the client.
                    if not self._stopping:
                        self._queue.insert(0, pending)
                        self._assigned.pop(req_id, None)
                        self._cond.notify_all()
                        return
                if pending.handle.resolve(error=error):
                    if isinstance(error, DeadlineExceededError):
                        self._counters["deadline_exceeded"] += 1
                    else:
                        self._counters["failed"] += 1
            self._cond.notify_all()

    def _on_worker_down(
        self, index: int, cause: str, error: WorkerCrashError, terminal: bool
    ) -> None:
        """Re-dispatch or structurally fail a dead worker's requests."""
        with self._cond:
            if cause == "hang":
                self._counters["worker_hangs"] += 1
            else:
                self._counters["worker_crashes"] += 1
            self.supervisor.breaker(index).record_failure()
            victims = [
                (req_id, pending)
                for req_id, (slot, pending) in self._assigned.items()
                if slot == index
            ]
            for req_id, pending in victims:
                self._assigned.pop(req_id, None)
                if pending.handle.done():
                    continue
                if pending.handle.expired():
                    if pending.handle.resolve(
                        error=DeadlineExceededError(
                            "execute",
                            budget=pending.request.deadline,
                            elapsed=time.monotonic() - pending.enqueued_at,
                        )
                    ):
                        self._counters["deadline_exceeded"] += 1
                    continue
                if (
                    pending.redispatches < self.max_redispatch
                    and not self._stopping
                ):
                    pending.redispatches += 1
                    self._counters["redispatched"] += 1
                    self._queue.insert(0, pending)
                    continue
                crash = WorkerCrashError(
                    worker=error.worker,
                    pid=error.pid,
                    exitcode=error.exitcode,
                    restarts=error.restarts,
                    request_id=pending.req_id,
                )
                if pending.handle.resolve(error=crash):
                    self._counters["failed"] += 1
            self._cond.notify_all()


# -- socket front door -------------------------------------------------------


class _FrontDoorHandler(socketserver.BaseRequestHandler):
    """One connection: hello handshake, then exec frames until EOF."""

    def handle(self) -> None:  # noqa: C901 - linear protocol walk
        sock = self.request
        fleet: FleetServer = self.server.fleet  # type: ignore[attr-defined]
        try:
            frame = recv_frame(sock)
            if frame is None:
                return
            header, _ = frame
            if header.get("kind") != "hello" or header.get("proto") != (
                PROTOCOL
            ):
                raise ProtocolError(
                    f"expected hello for {PROTOCOL}, got {header!r}"
                )
            send_frame(
                sock,
                {
                    "kind": "hello",
                    "proto": PROTOCOL,
                    "workers": fleet.workers,
                },
            )
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    return
                header, blob = frame
                if header.get("kind") != "exec":
                    raise ProtocolError(
                        f"unexpected frame kind {header.get('kind')!r}"
                    )
                self._serve_one(sock, fleet, header, blob)
        except ProtocolError as exc:
            self._try_send_error(sock, exc)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass

    def _serve_one(
        self, sock, fleet: FleetServer, header: dict, blob: bytes
    ) -> None:
        remote_id = header.get("id")
        try:
            a, b = decode_arrays(header["arrays"], blob)
            handle = fleet.submit(
                a,
                b,
                engine=header.get("engine", "cake"),
                deadline=header.get("deadline"),
                priority=int(header.get("priority", 0)),
                backend=header.get("backend"),
                workers=header.get("workers"),
            )
            run = handle.result(
                timeout=self.server.result_timeout  # type: ignore[attr-defined]
            )
        except ProtocolError:
            raise
        except BaseException as exc:  # noqa: BLE001 - crosses the wire
            send_frame(
                sock,
                {"kind": "error", "id": remote_id, "error": encode_error(exc)},
            )
            return
        manifest, out_blob = encode_arrays([run.c])
        send_frame(
            sock,
            {
                "kind": "result",
                "id": remote_id,
                "arrays": manifest,
                "report": handle.report.as_dict(),
            },
            out_blob,
        )

    def _try_send_error(self, sock, exc: BaseException) -> None:
        try:
            send_frame(sock, {"kind": "error", "error": encode_error(exc)})
        except OSError:
            pass


class FleetFrontDoor:
    """TCP front door for a fleet, speaking ``cake-serve/v1``.

    Thread-per-connection (stdlib :class:`socketserver`); each request
    frame blocks its connection until the fleet resolves the handle, so
    concurrency comes from concurrent connections — matching the
    one-multiply-at-a-time shape of the client API.
    """

    def __init__(
        self,
        fleet: FleetServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        result_timeout: float = 300.0,
    ) -> None:
        class _Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        self.fleet = fleet
        self._server = _Server((host, port), _FrontDoorHandler)
        self._server.fleet = fleet  # type: ignore[attr-defined]
        self._server.result_timeout = result_timeout  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    @property
    def address(self) -> "tuple[str, int]":
        return self._server.server_address[:2]

    def start(self) -> "FleetFrontDoor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="cake-fleet-frontdoor",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "FleetFrontDoor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


@dataclass(frozen=True, slots=True)
class RemoteRun:
    """What a remote multiply returns: the product + the serve report."""

    c: np.ndarray
    report: dict


class FleetClient:
    """Stdlib TCP client for :class:`FleetFrontDoor`.

    One connection, sequential requests; structured serve errors are
    rebuilt client-side as the same exception types the in-process API
    raises (:func:`repro.serve.protocol.decode_error`).
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 300.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._seq = 0
        send_frame(self._sock, {"kind": "hello", "proto": PROTOCOL})
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed during hello")
        header, _ = frame
        if header.get("kind") == "error":
            raise decode_error(header["error"])
        if header.get("proto") != PROTOCOL:
            raise ProtocolError(
                f"server speaks {header.get('proto')!r}, want {PROTOCOL!r}"
            )

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        engine: str = "cake",
        deadline: "float | None" = None,
        priority: int = 0,
        backend: "str | None" = None,
        workers: "int | None" = None,
    ) -> RemoteRun:
        self._seq += 1
        manifest, blob = encode_arrays([np.asarray(a), np.asarray(b)])
        send_frame(
            self._sock,
            {
                "kind": "exec",
                "id": self._seq,
                "arrays": manifest,
                "engine": engine,
                "deadline": deadline,
                "priority": priority,
                "backend": backend,
                "workers": workers,
            },
            blob,
        )
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed before responding")
        header, out_blob = frame
        if header.get("kind") == "error":
            raise decode_error(header["error"])
        if header.get("kind") != "result":
            raise ProtocolError(
                f"unexpected frame kind {header.get('kind')!r}"
            )
        (c,) = decode_arrays(header["arrays"], out_blob)
        return RemoteRun(c=c, report=header.get("report", {}))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
