"""Shape-class routing: which requests can share a plan and buffers.

The server's batching win comes from the paper's Fig. 8/9 regime —
many *small or skewed* problems with recurring shapes. Two requests
belong to the same **shape class** when an engine constructed for one
can execute the other with zero additional planning work: same engine
kind, same ``(m, n, k)`` extents, same accumulation dtype, same
modelled core count. That key is exactly the memo key of the plan
``lru_cache`` (:mod:`repro.gemm.plan`), so the first request of a
class pays for planning and every later one is a cache hit; it is also
the shape/dtype key of the packed buffers, so a shared
:class:`~repro.packing.pool.BufferPool` turns repeat classes into
allocation-free packs.

COSMA's observation (PAPERS.md) that the right decomposition is a
function of the problem *shape* rather than the machine alone is why
classification keys on extents and not on a coarse size bucket:
a ``256x1024x2048`` skewed problem and a ``1024x1024x1024`` cube of
similar volume get different plans, so they must be different classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Requests whose total operand+output surface (elements of A, B and C)
#: is at or below this are "small": eligible for dispatcher coalescing
#: into one engine pass per class. Larger problems run solo — their
#: execution dominates queueing overheads, and they are the ones worth
#: sharding instead. 2^22 elements is a ~1024^2-ish problem in float32.
SMALL_SURFACE_ELEMENTS = 1 << 22


@dataclass(frozen=True, slots=True)
class ShapeClass:
    """The routing identity of one request.

    ``key`` (all fields except ``small``) decides plan/pool sharing;
    ``small`` only gates coalescing.
    """

    engine: str
    m: int
    n: int
    k: int
    dtype: str
    cores: int | None
    small: bool

    @property
    def key(self) -> tuple:
        """Hashable identity: requests with equal keys share a plan."""
        return (self.engine, self.m, self.n, self.k, self.dtype, self.cores)

    def describe(self) -> str:
        """Compact human/report form, e.g. ``cake:256x1024x2048:f4``."""
        return (
            f"{self.engine}:{self.m}x{self.n}x{self.k}:"
            f"{np.dtype(self.dtype).str.lstrip('<>=|')}"
        )


def classify(
    engine: str,
    a: np.ndarray,
    b: np.ndarray,
    *,
    cores: int | None = None,
    small_surface: int = SMALL_SURFACE_ELEMENTS,
) -> ShapeClass:
    """The shape class of an ``a @ b`` request routed to ``engine``.

    Assumes operands already passed
    :func:`~repro.gemm.parallel.check_multiply_operands` (the front
    door validates before classifying).
    """
    m, k = a.shape
    n = b.shape[1]
    dtype = np.result_type(a, b)
    surface = m * k + k * n + m * n
    return ShapeClass(
        engine=engine,
        m=m,
        n=n,
        k=k,
        dtype=dtype.str,
        cores=cores,
        small=surface <= small_surface,
    )
