"""``cake-serve/v1``: the length-prefixed frame protocol of the front door.

The fleet's socket front door (:class:`repro.serve.fleet.FleetFrontDoor`)
speaks a deliberately boring wire format — stdlib only, versioned, and
strict about malformed input so a confused client gets a structured
:class:`~repro.errors.ProtocolError` instead of a hang:

``frame = MAGIC(4) | header_len(u32) | blob_len(u32) | header | blob``

* ``MAGIC`` is ``b"CKS1"`` — wrong magic means the peer is not speaking
  this protocol at all, and the connection is dropped immediately.
* ``header`` is UTF-8 JSON (kind, request metadata, array manifests,
  error payloads). Bounded by :data:`MAX_HEADER_BYTES`.
* ``blob`` is raw little-endian array bytes, concatenated in manifest
  order. Bounded by :data:`MAX_BLOB_BYTES`. Operands and results travel
  here so bit-identity survives the wire: the bytes a client receives
  are exactly the bytes the worker's ``cake_matmul`` produced.

Errors cross the wire as a small per-type field table
(:func:`encode_error` / :func:`decode_error`) so the structured serve
exceptions — admission decisions with ``retry_after``, deadline stages,
worker-crash forensics — arrive as the *same* exception types the
in-process API raises, not stringly-typed husks.
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

from repro.errors import (
    AdmissionError,
    BackendCapabilityError,
    CakeError,
    DeadlineExceededError,
    FleetError,
    ProtocolError,
    WorkerCrashError,
)

#: Protocol name/version announced in the hello handshake.
PROTOCOL = "cake-serve/v1"

#: Frame magic: 'CKS' + protocol major version.
MAGIC = b"CKS1"

#: network byte order: magic, header length, blob length.
_PREFIX = struct.Struct("!4sII")

#: JSON headers are metadata; a megabyte is already absurd.
MAX_HEADER_BYTES = 1 << 20

#: Operand/result payloads; 1 GiB bounds memory per connection.
MAX_BLOB_BYTES = 1 << 30


def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary.

    EOF *mid-read* is a truncated frame and raises
    :class:`ProtocolError` — the peer died mid-sentence.
    """
    if n == 0:
        return b""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"truncated frame: expected {n} bytes, got {got} before EOF"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, header: dict, blob: bytes = b"") -> None:
    """Send one frame: prefix + JSON header + raw blob."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"outgoing header too large: {len(header_bytes)} bytes"
        )
    if len(blob) > MAX_BLOB_BYTES:
        raise ProtocolError(f"outgoing blob too large: {len(blob)} bytes")
    sock.sendall(
        _PREFIX.pack(MAGIC, len(header_bytes), len(blob)) + header_bytes + blob
    )


def recv_frame(sock: socket.socket) -> "tuple[dict, bytes] | None":
    """Receive one frame; ``None`` on clean EOF before any bytes.

    Raises :class:`ProtocolError` for wrong magic, truncation,
    over-limit lengths, or an unparsable header.
    """
    prefix = _read_exact(sock, _PREFIX.size)
    if prefix is None:
        return None
    magic, header_len, blob_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (want {MAGIC!r})")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {header_len} over limit")
    if blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(f"blob length {blob_len} over limit")
    header_bytes = _read_exact(sock, header_len)
    if header_bytes is None:
        raise ProtocolError("truncated frame: EOF before header")
    blob = _read_exact(sock, blob_len)
    if blob is None:
        raise ProtocolError("truncated frame: EOF before blob")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparsable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header, blob


def encode_arrays(arrays: "list[np.ndarray]") -> "tuple[list[dict], bytes]":
    """Manifest + concatenated C-order bytes for a list of arrays."""
    manifest = []
    parts = []
    for array in arrays:
        contiguous = np.ascontiguousarray(array)
        manifest.append(
            {"dtype": str(contiguous.dtype), "shape": list(contiguous.shape)}
        )
        parts.append(contiguous.tobytes())
    return manifest, b"".join(parts)


def decode_arrays(manifest: "list[dict]", blob: bytes) -> "list[np.ndarray]":
    """Rebuild writable arrays from a manifest and the blob bytes."""
    arrays = []
    offset = 0
    for entry in manifest:
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed array manifest entry: {exc}")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(blob):
            raise ProtocolError(
                f"array manifest overruns blob: need {offset + nbytes} "
                f"bytes, have {len(blob)}"
            )
        # frombuffer on a bytearray copy keeps the result writable, so
        # callers can hand it straight to engines that refuse read-only
        # operands.
        flat = np.frombuffer(
            bytearray(blob[offset:offset + nbytes]), dtype=dtype
        )
        arrays.append(flat.reshape(shape))
        offset += nbytes
    if offset != len(blob):
        raise ProtocolError(
            f"blob has {len(blob) - offset} trailing bytes past manifest"
        )
    return arrays


# Per-type field tables: which constructor args travel for each serve
# exception. Anything not listed degrades to a generic CakeError that
# still names the original type.
_ERROR_FIELDS: "dict[str, tuple]" = {
    "AdmissionError": (
        AdmissionError,
        lambda e: (e.reason, e._message, e.queue_depth, e.capacity,
                   e.retry_after),
    ),
    "DeadlineExceededError": (
        DeadlineExceededError,
        lambda e: (e.stage, e.budget, e.elapsed),
    ),
    "FleetError": (
        FleetError,
        lambda e: (e.reason, e._message, e.workers),
    ),
    "WorkerCrashError": (
        WorkerCrashError,
        lambda e: (e.worker, e.pid, e.exitcode, e.restarts, e.request_id),
    ),
    "BackendCapabilityError": (
        BackendCapabilityError,
        lambda e: (
            e.backend,
            e._message,
            None if e.dtype is None else str(np.dtype(e.dtype)),
        ),
    ),
    "ProtocolError": (ProtocolError, lambda e: (str(e),)),
    "ValueError": (ValueError, lambda e: (str(e),)),
    "TypeError": (TypeError, lambda e: (str(e),)),
}


def encode_error(exc: BaseException) -> dict:
    """JSON-safe payload for an exception, preserving structured fields."""
    name = type(exc).__name__
    entry = _ERROR_FIELDS.get(name)
    if entry is not None:
        try:
            return {"type": name, "args": list(entry[1](exc))}
        except Exception:  # pragma: no cover - defensive
            pass
    return {"type": name, "message": str(exc)}


def decode_error(payload: dict) -> BaseException:
    """Rebuild the exception an :func:`encode_error` payload describes."""
    name = payload.get("type", "CakeError")
    entry = _ERROR_FIELDS.get(name)
    if entry is not None and "args" in payload:
        cls, _ = entry
        args = list(payload["args"])
        if cls is BackendCapabilityError and args[2] is not None:
            args[2] = np.dtype(args[2])
        try:
            return cls(*args)
        except Exception:  # pragma: no cover - defensive
            pass
    return CakeError(f"{name}: {payload.get('message', '')}")
