"""GEMM-as-a-service: the admission-controlled multiply front door.

ROADMAP item 1's serving layer. Clients submit multiply requests to a
:class:`~repro.serve.server.MultiplyServer` and get future-like
handles back; a dispatcher classifies requests by shape class
(:mod:`repro.serve.classifier`), coalesces compatible small problems
into shared plan + :class:`~repro.packing.pool.BufferPool` reuse
(:mod:`repro.serve.batching`), and executes them on the existing
engines. Robustness is the design center — bounded admission
(:mod:`repro.serve.admission`), per-request deadlines that propagate
into the shard executor, content-seeded retry with backoff, and a
graceful degradation ladder — with the repo-wide bit-identity
contract intact: a served product is bit-identical to a direct
engine call, or the request terminates with a structured error.

Quick start::

    from repro.serve import MultiplyServer

    with MultiplyServer() as server:
        handle = server.submit(a, b, deadline=0.5)
        run = handle.result()          # GemmRun, or structured error
        print(server.stats().as_dict())
"""

from repro.errors import AdmissionError, DeadlineExceededError
from repro.runtime.executor import RetryPolicy
from repro.serve.admission import admission_decision, retry_after_hint
from repro.serve.batching import EngineCache, Rung, degradation_rungs
from repro.serve.classifier import ShapeClass, classify
from repro.serve.loadgen import LoadReport, OperandSet, run_load
from repro.serve.request import (
    MultiplyRequest,
    ResponseHandle,
    ServeReport,
    content_seed,
)
from repro.serve.server import MultiplyServer, ServerStats
from repro.serve.soak import run_soak

__all__ = [
    "AdmissionError",
    "DeadlineExceededError",
    "RetryPolicy",
    "admission_decision",
    "retry_after_hint",
    "EngineCache",
    "Rung",
    "degradation_rungs",
    "ShapeClass",
    "classify",
    "LoadReport",
    "OperandSet",
    "run_load",
    "MultiplyRequest",
    "ResponseHandle",
    "ServeReport",
    "content_seed",
    "MultiplyServer",
    "ServerStats",
    "run_soak",
]
