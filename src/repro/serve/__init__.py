"""GEMM-as-a-service: the admission-controlled multiply front door.

ROADMAP item 1's serving layer. Clients submit multiply requests to a
:class:`~repro.serve.server.MultiplyServer` and get future-like
handles back; a dispatcher classifies requests by shape class
(:mod:`repro.serve.classifier`), coalesces compatible small problems
into shared plan + :class:`~repro.packing.pool.BufferPool` reuse
(:mod:`repro.serve.batching`), and executes them on the existing
engines. Robustness is the design center — bounded admission
(:mod:`repro.serve.admission`), per-request deadlines that propagate
into the shard executor, content-seeded retry with backoff, and a
graceful degradation ladder — with the repo-wide bit-identity
contract intact: a served product is bit-identical to a direct
engine call, or the request terminates with a structured error.

PR 10 scales the same front door across processes:
:class:`~repro.serve.fleet.FleetServer` runs N supervised worker
processes (heartbeats, capped-backoff restarts, crash-safe re-dispatch
— :mod:`repro.serve.supervisor`) behind an optional ``cake-serve/v1``
TCP front door (:mod:`repro.serve.protocol`,
:class:`~repro.serve.fleet.FleetFrontDoor` /
:class:`~repro.serve.fleet.FleetClient`).

Quick start::

    from repro.serve import MultiplyServer

    with MultiplyServer() as server:
        handle = server.submit(a, b, deadline=0.5)
        run = handle.result()          # GemmRun, or structured error
        print(server.stats().as_dict())
"""

from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    FleetError,
    ProtocolError,
    WorkerCrashError,
)
from repro.runtime.executor import RetryPolicy
from repro.runtime.restart import RestartPolicy, RestartTracker
from repro.serve.admission import admission_decision, retry_after_hint
from repro.serve.batching import EngineCache, Rung, degradation_rungs
from repro.serve.classifier import ShapeClass, classify
from repro.serve.fleet import (
    FleetClient,
    FleetFrontDoor,
    FleetServer,
    FleetStats,
    RemoteRun,
)
from repro.serve.loadgen import LoadReport, OperandSet, run_load
from repro.serve.protocol import (
    PROTOCOL,
    decode_arrays,
    decode_error,
    encode_arrays,
    encode_error,
    recv_frame,
    send_frame,
)
from repro.serve.request import (
    MultiplyRequest,
    ResponseHandle,
    ServeReport,
    content_seed,
)
from repro.serve.server import MultiplyServer, ServerStats
from repro.serve.soak import run_fleet_soak, run_soak
from repro.serve.supervisor import CircuitBreaker, Supervisor, WorkerOptions

__all__ = [
    "AdmissionError",
    "DeadlineExceededError",
    "FleetError",
    "ProtocolError",
    "WorkerCrashError",
    "RestartPolicy",
    "RestartTracker",
    "FleetClient",
    "FleetFrontDoor",
    "FleetServer",
    "FleetStats",
    "RemoteRun",
    "PROTOCOL",
    "decode_arrays",
    "decode_error",
    "encode_arrays",
    "encode_error",
    "recv_frame",
    "send_frame",
    "CircuitBreaker",
    "Supervisor",
    "WorkerOptions",
    "run_fleet_soak",
    "RetryPolicy",
    "admission_decision",
    "retry_after_hint",
    "EngineCache",
    "Rung",
    "degradation_rungs",
    "ShapeClass",
    "classify",
    "LoadReport",
    "OperandSet",
    "run_load",
    "MultiplyRequest",
    "ResponseHandle",
    "ServeReport",
    "content_seed",
    "MultiplyServer",
    "ServerStats",
    "run_soak",
]
