"""The multiply server: admission, dispatch, execution, degradation.

``MultiplyServer`` is a thread-based (stdlib-only) front door over the
existing GEMM engines. The lifecycle of one request::

    submit ──admit──▶ queue ──classify/coalesce──▶ execute ──▶ resolve
       │                 │                            │
       └─ AdmissionError └─ DeadlineExceededError     ├─ retry (backoff)
          (shed)            (expired while queued)    ├─ degrade (ladder)
                                                      └─ structured error

Robustness invariants, each pinned by the serve test suite:

* **Bounded everything.** The queue is capacity-bounded (admission
  sheds beyond it), in-flight execution is bounded by the executor
  thread count, and every wait in the system carries a timeout derived
  from a deadline. There is no unbounded buffer anywhere.
* **No stale results.** Handles resolve first-wins; expiry resolves
  them with :class:`~repro.errors.DeadlineExceededError` whether the
  request was queued, executing, or hung in a shard worker (the
  per-request :class:`~repro.gemm.sharded.ShardConfig` deadline kills
  the pool). A product computed after expiry is discarded.
* **Deterministic retries.** Transient failures back off through
  :class:`~repro.runtime.executor.RetryPolicy` seeded from request
  *content*, so a replayed request replays its retry schedule.
* **Bit-identical degradation.** Every ladder rung executes a path
  that is bit-identical to the serial numpy oracle (the repo-wide
  contract), so stepping down changes latency, never answers.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import (
    AdmissionError,
    BackendCapabilityError,
    CakeError,
    DeadlineExceededError,
)
from repro.gemm.backends import resolve_backend
from repro.gemm.parallel import check_multiply_operands
from repro.gemm.result import GemmRun
from repro.gemm.sharded import ShardExecutionError, resolve_shards
from repro.gemm.verify import NumericFaultError
from repro.machines.presets import intel_i9_10900k
from repro.machines.spec import MachineSpec
from repro.packing.pool import BufferPool
from repro.runtime.deadline import Deadline
from repro.runtime.executor import RetryPolicy
from repro.runtime.faults import InjectedFault
from repro.serve.admission import admission_decision
from repro.serve.batching import EngineCache, Rung, degradation_rungs
from repro.serve.classifier import ShapeClass, classify
from repro.serve.request import MultiplyRequest, ResponseHandle, ServeReport

#: Failures worth retrying in place: numeric faults heal on recompute,
#: shard/pool crashes heal on rebuild. Capability and deadline errors
#: are excluded — retrying cannot change either.
TRANSIENT_ERRORS = (
    NumericFaultError,
    InjectedFault,
    ShardExecutionError,
    BrokenProcessPool,
)

_VALID_ENGINES = ("cake", "goto")


def _percentile(latencies: list[float], q: float) -> float:
    """The q-th percentile (nearest-rank) of an unsorted sample."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True, slots=True)
class ServerStats:
    """One consistent snapshot of the server's health counters."""

    queue_depth: int
    in_flight: int
    capacity: int
    submitted: int
    admitted: int
    executed: int
    completed: int
    failed: int
    shed_capacity: int
    shed_deadline: int
    shed_shutdown: int
    deadline_exceeded: int
    retries: int
    degradations: int
    batches: int
    coalesced: int
    p50_seconds: float
    p99_seconds: float
    pool: dict = field(default_factory=dict)
    #: Plan-tuner counters (zero when the server runs untuned): how many
    #: requests resolved a tuned plan, how many served analytic while a
    #: tune was cold or in flight, and the background tune pipeline.
    tuned_hits: int = 0
    tuned_misses: int = 0
    tunes_pending: int = 0
    tunes_completed: int = 0

    def as_dict(self) -> dict:
        return {
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "capacity": self.capacity,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "executed": self.executed,
            "completed": self.completed,
            "failed": self.failed,
            "shed_capacity": self.shed_capacity,
            "shed_deadline": self.shed_deadline,
            "shed_shutdown": self.shed_shutdown,
            "deadline_exceeded": self.deadline_exceeded,
            "retries": self.retries,
            "degradations": self.degradations,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "pool": dict(self.pool),
            "tuned_hits": self.tuned_hits,
            "tuned_misses": self.tuned_misses,
            "tunes_pending": self.tunes_pending,
            "tunes_completed": self.tunes_completed,
        }


@dataclass(slots=True)
class _Pending:
    """One admitted request waiting in (or drained from) the queue."""

    seq: int
    request: MultiplyRequest
    handle: ResponseHandle
    shape_class: ShapeClass
    #: Coalescing identity: equal keys may share one engine pass.
    #: ``None`` marks requests that must run solo (verified/sharded).
    profile_key: tuple | None
    enqueued_at: float


class MultiplyServer:
    """An admission-controlled, deadline-aware GEMM front door.

    Use as a context manager (``with MultiplyServer() as server:``) or
    call :meth:`start`/:meth:`stop` explicitly. ``submit`` returns a
    :class:`~repro.serve.request.ResponseHandle` immediately (or raises
    :class:`~repro.errors.AdmissionError`); ``handle.result()`` blocks
    for the product.

    Parameters
    ----------
    machine:
        Platform model engines are built for (default: the paper's
        Intel i9-10900K).
    capacity:
        Bounded queue limit; submits beyond it are shed.
    executors:
        Concurrent engine passes (dispatcher worker threads).
    max_batch:
        Most same-class small requests coalesced into one engine pass.
    cores:
        Modelled core count for the engines (``None``: all).
    default_deadline:
        Budget in seconds applied when a request does not name one;
        ``None`` means unbounded by default.
    retry_policy:
        Backoff for transient failures (default: 2 retries from 10 ms).
    stats_window:
        Completed-request latencies retained for p50/p99.
    tune:
        Enable tuned-plan resolution (:mod:`repro.tune`): ``True`` for
        the default :class:`~repro.tune.TuneConfig`, or pass one. Each
        shape class resolves its tuned plan once (memory, then the
        on-disk plan cache); a genuinely cold class tunes on a
        background thread **off the request path** — the analytic plan
        serves, bit-identical, until the tuned one lands. Counters
        surface in :meth:`stats`.
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        *,
        capacity: int = 64,
        executors: int = 2,
        max_batch: int = 8,
        cores: int | None = None,
        default_deadline: float | None = None,
        retry_policy: RetryPolicy | None = None,
        stats_window: int = 512,
        tune: object = False,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if executors < 1:
            raise ValueError(f"executors must be >= 1, got {executors}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.machine = intel_i9_10900k() if machine is None else machine
        self.capacity = capacity
        self.executors = executors
        self.max_batch = max_batch
        self.cores = cores
        self.default_deadline = default_deadline
        self.retry_policy = (
            RetryPolicy(retries=2, base_delay=0.01, max_delay=0.25)
            if retry_policy is None
            else retry_policy
        )
        self.pool = BufferPool()
        self.engines = EngineCache(self.machine, self.pool)
        self.plans = None
        if tune:
            from repro.tune import PlanService, TuneConfig

            self.plans = PlanService(
                self.machine,
                tune if isinstance(tune, TuneConfig) else None,
            )

        self._cond = threading.Condition()
        self._queue: list[_Pending] = []
        self._seq = 0
        self._in_flight = 0
        self._running = False
        self._stopping = False
        self._drain = True
        self._executor: ThreadPoolExecutor | None = None
        self._dispatcher: threading.Thread | None = None
        self._counters = {
            "submitted": 0,
            "admitted": 0,
            "executed": 0,
            "completed": 0,
            "failed": 0,
            "shed_capacity": 0,
            "shed_deadline": 0,
            "shed_shutdown": 0,
            "deadline_exceeded": 0,
            "retries": 0,
            "degradations": 0,
            "batches": 0,
            "coalesced": 0,
        }
        self._latencies: deque[float] = deque(maxlen=stats_window)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MultiplyServer":
        """Start the dispatcher and executor threads (idempotent)."""
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._stopping = False
            self._drain = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.executors, thread_name_prefix="cake-serve"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="cake-serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        return self

    def stop(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop serving; always resolves every admitted handle.

        ``drain=True`` finishes queued work first; ``drain=False``
        resolves queued requests with ``AdmissionError("shutdown")``
        and only waits for the in-flight passes. Either way no handle
        is left unresolved — stop cannot strand a client.
        """
        with self._cond:
            if not self._running:
                return
            self._stopping = True
            self._drain = drain
            if not drain:
                for pending in self._queue:
                    pending.handle.resolve(
                        error=AdmissionError(
                            "shutdown",
                            "server stopped before execution",
                            len(self._queue),
                            self.capacity,
                            None,
                        )
                    )
                    self._counters["shed_shutdown"] += 1
                self._queue.clear()
            self._cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        with self._cond:
            self._running = False

    def __enter__(self) -> "MultiplyServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- client surface ------------------------------------------------------

    def submit(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        engine: str = "cake",
        deadline: float | None = None,
        priority: int = 0,
        verify=False,
        backend: str | None = None,
        workers: int | None = None,
        processes=None,
    ) -> ResponseHandle:
        """Admit one multiply; returns its handle or sheds structured.

        Validation (shape/dtype/backend capability) happens here,
        synchronously, so a request that can never execute is refused
        with the same structured errors the engines raise — the queue
        only ever holds executable work.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if engine not in _VALID_ENGINES:
            raise ValueError(
                f"engine must be one of {_VALID_ENGINES}, got {engine!r}"
            )
        spec = resolve_backend(backend)
        check_multiply_operands(a, b, backend=spec)
        budget = self.default_deadline if deadline is None else deadline
        with self._cond:
            self._counters["submitted"] += 1
            decision = admission_decision(
                queue_depth=len(self._queue),
                capacity=self.capacity,
                deadline_budget=budget,
                executors=self.executors,
                service_estimate=self._p50_locked(),
                stopping=self._stopping or not self._running,
            )
            if decision is not None:
                self._counters["shed_" + decision.reason] += 1
                raise decision
            seq = self._seq
            self._seq += 1
            now = time.monotonic()
            request = MultiplyRequest(
                a=a,
                b=b,
                engine=engine,
                deadline=budget,
                priority=priority,
                verify=verify,
                backend=backend,
                workers=workers,
                processes=processes,
            )
            shape_class = classify(engine, a, b, cores=self.cores)
            report = ServeReport(
                request_id=seq,
                shape_class=shape_class.describe(),
                engine=engine,
                deadline=budget,
                priority=priority,
                backend=backend,
                workers=workers,
            )
            handle = ResponseHandle(
                request,
                report,
                None if budget is None else Deadline.after(budget, now=now),
                now,
            )
            solo = (
                verify not in (False, None)
                or processes not in (None, 1)
                or not shape_class.small
            )
            pending = _Pending(
                seq=seq,
                request=request,
                handle=handle,
                shape_class=shape_class,
                profile_key=(
                    None
                    if solo
                    else (shape_class.key, backend, workers)
                ),
                enqueued_at=now,
            )
            self._queue.append(pending)
            self._counters["admitted"] += 1
            self._cond.notify_all()
        return handle

    def multiply(self, a: np.ndarray, b: np.ndarray, **kwargs) -> GemmRun:
        """Submit-and-wait convenience: one blocking round trip."""
        return self.submit(a, b, **kwargs).result()

    def pending_count(self) -> int:
        """Queued + in-flight requests — the fleet heartbeat payload.

        The supervisor polls this through the worker control channel so
        fleet-wide backpressure (``AdmissionError.retry_after``) can
        reflect aggregate depth, not just the front door's own queue.
        """
        with self._cond:
            return len(self._queue) + self._in_flight

    def stats(self) -> ServerStats:
        """A consistent snapshot of queue/health/latency counters."""
        tuner = self.plans.counters() if self.plans is not None else {}
        with self._cond:
            latencies = list(self._latencies)
            return ServerStats(
                queue_depth=len(self._queue),
                in_flight=self._in_flight,
                capacity=self.capacity,
                p50_seconds=_percentile(latencies, 50.0),
                p99_seconds=_percentile(latencies, 99.0),
                pool=self.pool.stats(),
                **self._counters,
                **tuner,
            )

    # -- dispatcher ----------------------------------------------------------

    def _p50_locked(self) -> float | None:
        if not self._latencies:
            return None
        return _percentile(list(self._latencies), 50.0)

    def _expire_queued_locked(self) -> None:
        """Resolve queued requests whose deadline passed; free the slots."""
        now = time.monotonic()
        expired = [p for p in self._queue if p.handle.expired(now)]
        if not expired:
            return
        for pending in expired:
            self._queue.remove(pending)
            deadline = pending.handle.deadline
            if pending.handle.resolve(
                error=DeadlineExceededError(
                    "queue",
                    budget=None if deadline is None else deadline.budget,
                    elapsed=now - pending.enqueued_at,
                )
            ):
                self._counters["deadline_exceeded"] += 1

    def _take_batch_locked(self) -> list[_Pending]:
        """Pop the highest-priority request plus coalescable classmates."""
        head = min(
            self._queue, key=lambda p: (-p.request.priority, p.seq)
        )
        self._queue.remove(head)
        batch = [head]
        if head.profile_key is not None:
            mates = sorted(
                (
                    p
                    for p in self._queue
                    if p.profile_key == head.profile_key
                ),
                key=lambda p: p.seq,
            )
            for mate in mates[: self.max_batch - 1]:
                self._queue.remove(mate)
                batch.append(mate)
        self._counters["batches"] += 1
        self._counters["coalesced"] += len(batch) - 1
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not (
                    self._queue and self._in_flight < self.executors
                ):
                    # The periodic wake expires queued deadlines even
                    # when nothing else moves.
                    self._cond.wait(timeout=0.05)
                    self._expire_queued_locked()
                if self._stopping and (not self._drain or not self._queue):
                    break
                self._expire_queued_locked()
                if not self._queue or self._in_flight >= self.executors:
                    continue
                batch = self._take_batch_locked()
                self._in_flight += 1
            assert self._executor is not None
            future = self._executor.submit(self._run_batch, batch)
            future.add_done_callback(
                lambda fut, batch=batch: self._batch_done(fut, batch)
            )

    def _batch_done(self, future, batch: list[_Pending]) -> None:
        error = future.exception()
        for pending in batch:
            if not pending.handle.done():
                # _run_one resolves every handle itself; reaching here
                # means a dispatcher bug — fail structured rather than
                # strand the client.
                pending.handle.resolve(
                    error=error
                    if error is not None
                    else CakeError("request dropped by the dispatcher")
                )
        with self._cond:
            self._in_flight -= 1
            if error is not None:
                self._counters["failed"] += len(batch)
            self._cond.notify_all()

    # -- execution -----------------------------------------------------------

    def _run_batch(self, batch: list[_Pending]) -> None:
        for pending in batch:
            self._run_one(pending, batch_size=len(batch))

    def _count(self, name: str, amount: int = 1) -> None:
        with self._cond:
            self._counters[name] += amount

    def _run_one(self, pending: _Pending, *, batch_size: int) -> None:
        handle = pending.handle
        report = handle.report
        request = pending.request
        deadline = handle.deadline
        now = time.monotonic()
        report.queue_seconds = now - pending.enqueued_at
        report.batch_size = batch_size
        if handle.done():
            return
        if handle.expired(now):
            if handle.resolve(
                error=DeadlineExceededError(
                    "queue",
                    budget=None if deadline is None else deadline.budget,
                    elapsed=now - pending.enqueued_at,
                )
            ):
                self._count("deadline_exceeded")
            return
        self._count("executed")

        rungs = degradation_rungs(request)
        rung_index = 0
        attempt_on_rung = 0
        seed = request.seed()
        # Tuned-plan resolution is a memory/disk probe at most — a cold
        # class tunes on a background thread and this request (plus any
        # before the winner lands) serves the analytic plan.
        tuned_plan = None
        if self.plans is not None:
            shards = resolve_shards(request.processes)
            tuned_plan = self.plans.resolve(
                pending.shape_class,
                backend=resolve_backend(request.backend).name,
                processes=1 if shards is None else shards.processes,
            )
        while True:
            rung = rungs[rung_index]
            now = time.monotonic()
            if handle.expired(now):
                if handle.resolve(
                    error=DeadlineExceededError(
                        "execute",
                        budget=deadline.budget if deadline else None,
                        elapsed=now - handle.submitted_at,
                    )
                ):
                    self._count("deadline_exceeded")
                return
            override = tuned_plan
            if override is not None and rung_index > 0:
                # A degraded rung exists because the stronger profile
                # kept failing; tuned execution knobs (extra workers)
                # must not re-complicate it. Plan-shape fields stay —
                # they are bit-safe and orthogonal to the failure.
                if override.workers is not None:
                    override = replace(override, workers=None)
            engine = self.engines.engine_for(
                request,
                pending.shape_class,
                rung,
                deadline_at=None if deadline is None else deadline.at,
                override=override,
            )
            report.attempts += 1
            started = time.perf_counter()
            try:
                run = engine.multiply(request.a, request.b)
            except DeadlineExceededError as err:
                report.execute_seconds += time.perf_counter() - started
                if handle.resolve(error=err):
                    self._count("deadline_exceeded")
                return
            except BackendCapabilityError as err:
                report.execute_seconds += time.perf_counter() - started
                oracle = Rung(1, rung.workers, "numpy")
                if rung.backend != "numpy" and oracle != rung:
                    report.degradations.append(
                        {
                            "from": rung.describe(),
                            "to": oracle.describe(),
                            "reason": type(err).__name__,
                        }
                    )
                    self._count("degradations")
                    rungs = rungs[: rung_index + 1] + [oracle]
                    rung_index += 1
                    attempt_on_rung = 0
                    continue
                if handle.resolve(error=err):
                    self._count("failed")
                return
            except TRANSIENT_ERRORS as err:
                report.execute_seconds += time.perf_counter() - started
                attempt_on_rung += 1
                if attempt_on_rung <= self.retry_policy.retries:
                    report.retries += 1
                    self._count("retries")
                    delay = self.retry_policy.delay(seed, attempt_on_rung)
                    if deadline is not None:
                        delay = min(delay, deadline.remaining())
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if rung_index + 1 < len(rungs):
                    report.degradations.append(
                        {
                            "from": rung.describe(),
                            "to": rungs[rung_index + 1].describe(),
                            "reason": type(err).__name__,
                        }
                    )
                    self._count("degradations")
                    rung_index += 1
                    attempt_on_rung = 0
                    continue
                if handle.resolve(error=err):
                    self._count("failed")
                return
            except Exception as err:  # noqa: BLE001 - fail structured, never strand
                report.execute_seconds += time.perf_counter() - started
                if handle.resolve(error=err):
                    self._count("failed")
                return
            report.execute_seconds += time.perf_counter() - started
            report.backend = run.backend
            report.workers = run.workers
            report.processes = run.processes
            now = time.monotonic()
            if handle.expired(now):
                # The product arrived after the budget: discard it.
                if handle.resolve(
                    error=DeadlineExceededError(
                        "execute",
                        budget=deadline.budget if deadline else None,
                        elapsed=now - handle.submitted_at,
                    )
                ):
                    self._count("deadline_exceeded")
                return
            if handle.resolve(run=run):
                with self._cond:
                    self._counters["completed"] += 1
                    self._latencies.append(now - handle.submitted_at)
            return
