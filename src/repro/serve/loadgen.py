"""Concurrent-client load generation against a MultiplyServer.

One reusable harness drives three consumers — ``benchmarks/
bench_serve.py``, the ``cake-bench serve`` experiment, and the
``cake-serve`` CLI: N client threads each submit R requests drawn from
a fixed operand set, wait for their responses, and verify **every**
successful product bit-identical to a reference computed once by a
direct :func:`~repro.api.cake_matmul`-style engine call. Structured
errors (:class:`~repro.errors.AdmissionError`,
:class:`~repro.errors.DeadlineExceededError`) are counted, never
hidden; anything unstructured or bit-different is a hard failure of
the serving contract.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AdmissionError, DeadlineExceededError
from repro.serve.server import MultiplyServer


@dataclass(slots=True)
class OperandSet:
    """A fixed pool of operand pairs plus their reference products."""

    pairs: list[tuple[np.ndarray, np.ndarray]]
    references: list[np.ndarray]

    @classmethod
    def figure8_skewed(
        cls,
        n: int = 256,
        *,
        variants: int = 3,
        dtype=np.float32,
        seed: int = 20218,
        machine=None,
        cores: int | None = None,
    ) -> "OperandSet":
        """Operands in the paper's Fig-8 skewed regime (short M, deep K).

        ``variants`` distinct pairs share one shape, so served traffic
        exercises shape-class reuse (one plan, pool-warm packs) while
        still proving responses are not cross-wired between requests.
        References come from a direct engine call — the bit-identity
        oracle every response is checked against.
        """
        from repro.api import cake_matmul

        rng = np.random.default_rng(seed)
        m, p, k = max(n // 4, 1), n, 2 * n
        pairs = [
            (
                rng.standard_normal((m, k)).astype(dtype),
                rng.standard_normal((k, p)).astype(dtype),
            )
            for _ in range(variants)
        ]
        references = [
            cake_matmul(a, b, machine=machine, cores=cores).c
            for a, b in pairs
        ]
        return cls(pairs=pairs, references=references)


@dataclass(slots=True)
class LoadReport:
    """What one load run produced, per outcome class."""

    clients: int
    requests: int
    ok: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    failed: int = 0
    mismatches: int = 0
    unresolved: int = 0
    latencies: list[float] = field(default_factory=list)
    errors: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def throughput_rps(self) -> float:
        """Successful responses per second of wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ok / self.wall_seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the successful-response latencies."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(
            len(ordered), max(1, math.ceil(q / 100.0 * len(ordered)))
        )
        return ordered[rank - 1]

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "mismatches": self.mismatches,
            "unresolved": self.unresolved,
            "errors": dict(self.errors),
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "p50_seconds": self.percentile(50.0),
            "p99_seconds": self.percentile(99.0),
        }


def run_load(
    server: "MultiplyServer",
    operands: OperandSet,
    *,
    clients: int,
    requests_per_client: int,
    deadline: float | None = None,
    engine: str = "cake",
    result_timeout: float = 120.0,
) -> LoadReport:
    """Drive ``clients`` threads of traffic and audit every response.

    ``server`` is anything with the ``submit()`` front-door contract —
    a :class:`~repro.serve.server.MultiplyServer` or a
    :class:`~repro.serve.fleet.FleetServer` (the multi-process fleet is
    audited by the same closed loop, bit for bit).

    Each client cycles through the operand set, submits, then blocks
    on the handle — a closed-loop client, so concurrency equals the
    thread count. Shed and expired requests count in their own
    buckets; any other exception, any bit-different product, and any
    handle still unresolved after ``result_timeout`` is a contract
    violation recorded in ``failed``/``mismatches``/``unresolved``.
    """
    report = LoadReport(
        clients=clients, requests=clients * requests_per_client
    )
    lock = threading.Lock()

    def record(name: str) -> None:
        with lock:
            report.errors[name] = report.errors.get(name, 0) + 1

    def client(worker: int) -> None:
        for i in range(requests_per_client):
            index = (worker + i * clients) % len(operands.pairs)
            a, b = operands.pairs[index]
            started = time.monotonic()
            try:
                handle = server.submit(
                    a, b, engine=engine, deadline=deadline
                )
            except AdmissionError as err:
                with lock:
                    report.shed += 1
                record(f"submit:{err.reason}")
                continue
            try:
                run = handle.result(timeout=result_timeout)
            except DeadlineExceededError:
                with lock:
                    report.deadline_exceeded += 1
                record("DeadlineExceededError")
                continue
            except TimeoutError:
                with lock:
                    report.unresolved += 1
                record("unresolved-handle")
                continue
            except Exception as err:  # noqa: BLE001 - audit every outcome
                with lock:
                    report.failed += 1
                record(type(err).__name__)
                continue
            latency = time.monotonic() - started
            if np.array_equal(run.c, operands.references[index]):
                with lock:
                    report.ok += 1
                    report.latencies.append(latency)
            else:
                with lock:
                    report.mismatches += 1
                record("bit-mismatch")

    threads = [
        threading.Thread(
            target=client, args=(worker,), name=f"loadgen-{worker}"
        )
        for worker in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report
