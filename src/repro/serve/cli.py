"""``cake-serve``: drive the multiply server from the command line.

Three modes:

* default — start a server, run the closed-loop load generator over
  the Fig-8 skewed operand set for one or more client-concurrency
  levels, print a per-level summary, and exit nonzero if any response
  violated the serving contract (a bit-different product or an
  unstructured error). ``--workers N`` (N > 0) drives the supervised
  multi-process fleet instead of the single in-process server;
* ``--port P`` — serve remote clients: start a fleet of ``--workers``
  supervised worker processes behind the ``cake-serve/v1`` socket
  front door and block until interrupted;
* ``--soak SECONDS`` — run the fault-injected soak instead
  (:mod:`repro.serve.soak`); with ``--workers N`` it becomes the
  supervisor-level fleet soak (worker processes killed and hung).

Examples::

    cake-serve --clients 1,2,4 --requests 8 --deadline-ms 30000
    cake-serve --workers 2 --clients 2 --requests 6
    cake-serve --workers 2 --port 7474
    cake-serve --soak 30
    cake-serve --workers 2 --soak 20
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.machines.presets import intel_i9_10900k
from repro.serve.fleet import FleetFrontDoor, FleetServer
from repro.serve.loadgen import OperandSet, run_load
from repro.serve.server import MultiplyServer
from repro.serve.soak import main as soak_main


def _parse_levels(text: str) -> list[int]:
    levels = [int(part) for part in text.split(",") if part.strip()]
    if not levels or any(level < 1 for level in levels):
        raise argparse.ArgumentTypeError(
            f"client levels must be positive integers, got {text!r}"
        )
    return levels


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cake-serve",
        description="Load-generate against the admission-controlled "
        "multiply server and audit every response.",
    )
    parser.add_argument(
        "--clients",
        type=_parse_levels,
        default=[1, 2, 4],
        help="comma-separated concurrency levels (default 1,2,4)",
    )
    parser.add_argument(
        "--requests", type=int, default=6, help="requests per client"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds (default: none)",
    )
    parser.add_argument(
        "--n", type=int, default=256, help="Fig-8 shape scale (N)"
    )
    parser.add_argument(
        "--capacity", type=int, default=64, help="admission queue bound"
    )
    parser.add_argument(
        "--executors", type=int, default=2, help="concurrent engine passes"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised worker processes (0: single in-process server)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve remote clients on this TCP port (0: ephemeral); "
        "implies --workers (default 2 when unset)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port (default 127.0.0.1)",
    )
    parser.add_argument(
        "--soak",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run the fault-injected soak for SECONDS instead",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write per-level rows here"
    )
    args = parser.parse_args(argv)

    if args.soak is not None:
        soak_argv = ["--seconds", str(args.soak)]
        if args.workers > 0:
            soak_argv += ["--fleet", str(args.workers)]
        return soak_main(soak_argv)

    if args.port is not None:
        return _serve_forever(args)

    deadline = (
        None if args.deadline_ms is None else args.deadline_ms / 1000.0
    )
    machine = intel_i9_10900k()
    operands = OperandSet.figure8_skewed(args.n, machine=machine)
    rows = []
    violations = 0
    for clients in args.clients:
        server = _build_server(args, machine, deadline)
        with server:
            report = run_load(
                server,
                operands,
                clients=clients,
                requests_per_client=args.requests,
                deadline=deadline,
            )
            stats = server.stats()
        row = {**report.as_dict(), "server": stats.as_dict()}
        if args.workers > 0:
            row["workers"] = args.workers
        rows.append(row)
        violations += report.mismatches + report.failed + report.unresolved
        line = (
            f"clients={clients:<3d} ok={report.ok:<4d} "
            f"shed={report.shed:<3d} expired={report.deadline_exceeded:<3d} "
            f"p50={1e3 * report.percentile(50):7.1f}ms "
            f"p99={1e3 * report.percentile(99):7.1f}ms "
            f"{report.throughput_rps:6.1f} req/s "
        )
        if args.workers > 0:
            line += (
                f"workers={stats.live_workers}/{stats.workers} "
                f"redispatched={stats.redispatched} "
                f"restarts={stats.worker_restarts}"
            )
        else:
            line += (
                f"batches={stats.batches} coalesced={stats.coalesced} "
                f"retries={stats.retries} degradations={stats.degradations}"
            )
        print(line)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(rows, indent=2, default=str))
    if violations:
        print(
            f"SERVE CONTRACT VIOLATED: {violations} bad responses",
            file=sys.stderr,
        )
        return 1
    return 0


def _build_server(args, machine, deadline):
    if args.workers > 0:
        return FleetServer(
            machine,
            workers=args.workers,
            capacity=args.capacity,
            worker_capacity=args.capacity,
            executors=args.executors,
            default_deadline=deadline,
        )
    return MultiplyServer(
        machine,
        capacity=args.capacity,
        executors=args.executors,
        default_deadline=deadline,
    )


def _serve_forever(args) -> int:
    workers = args.workers if args.workers > 0 else 2
    deadline = (
        None if args.deadline_ms is None else args.deadline_ms / 1000.0
    )
    fleet = FleetServer(
        intel_i9_10900k(),
        workers=workers,
        capacity=args.capacity,
        worker_capacity=args.capacity,
        executors=args.executors,
        default_deadline=deadline,
    )
    with fleet, FleetFrontDoor(fleet, args.host, args.port) as door:
        host, port = door.address
        print(
            f"cake-serve/v1 fleet: {workers} workers on {host}:{port} "
            "(Ctrl-C to stop)",
            flush=True,
        )
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            print("draining...", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
