"""``cake-serve``: drive the multiply server from the command line.

Two modes:

* default — start a server, run the closed-loop load generator over
  the Fig-8 skewed operand set for one or more client-concurrency
  levels, print a per-level summary, and exit nonzero if any response
  violated the serving contract (a bit-different product or an
  unstructured error);
* ``--soak SECONDS`` — run the fault-injected soak instead
  (:mod:`repro.serve.soak`) with kill/hang/bitflip rules firing while
  traffic flows.

Examples::

    cake-serve --clients 1,2,4 --requests 8 --deadline-ms 30000
    cake-serve --soak 30
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.machines.presets import intel_i9_10900k
from repro.serve.loadgen import OperandSet, run_load
from repro.serve.server import MultiplyServer
from repro.serve.soak import main as soak_main


def _parse_levels(text: str) -> list[int]:
    levels = [int(part) for part in text.split(",") if part.strip()]
    if not levels or any(level < 1 for level in levels):
        raise argparse.ArgumentTypeError(
            f"client levels must be positive integers, got {text!r}"
        )
    return levels


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cake-serve",
        description="Load-generate against the admission-controlled "
        "multiply server and audit every response.",
    )
    parser.add_argument(
        "--clients",
        type=_parse_levels,
        default=[1, 2, 4],
        help="comma-separated concurrency levels (default 1,2,4)",
    )
    parser.add_argument(
        "--requests", type=int, default=6, help="requests per client"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds (default: none)",
    )
    parser.add_argument(
        "--n", type=int, default=256, help="Fig-8 shape scale (N)"
    )
    parser.add_argument(
        "--capacity", type=int, default=64, help="admission queue bound"
    )
    parser.add_argument(
        "--executors", type=int, default=2, help="concurrent engine passes"
    )
    parser.add_argument(
        "--soak",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run the fault-injected soak for SECONDS instead",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write per-level rows here"
    )
    args = parser.parse_args(argv)

    if args.soak is not None:
        return soak_main(["--seconds", str(args.soak)])

    deadline = (
        None if args.deadline_ms is None else args.deadline_ms / 1000.0
    )
    machine = intel_i9_10900k()
    operands = OperandSet.figure8_skewed(args.n, machine=machine)
    rows = []
    violations = 0
    for clients in args.clients:
        with MultiplyServer(
            machine,
            capacity=args.capacity,
            executors=args.executors,
            default_deadline=deadline,
        ) as server:
            report = run_load(
                server,
                operands,
                clients=clients,
                requests_per_client=args.requests,
                deadline=deadline,
            )
            stats = server.stats()
        row = {**report.as_dict(), "server": stats.as_dict()}
        rows.append(row)
        violations += report.mismatches + report.failed + report.unresolved
        print(
            f"clients={clients:<3d} ok={report.ok:<4d} "
            f"shed={report.shed:<3d} expired={report.deadline_exceeded:<3d} "
            f"p50={1e3 * report.percentile(50):7.1f}ms "
            f"p99={1e3 * report.percentile(99):7.1f}ms "
            f"{report.throughput_rps:6.1f} req/s "
            f"batches={stats.batches} coalesced={stats.coalesced} "
            f"retries={stats.retries} degradations={stats.degradations}"
        )
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(rows, indent=2, default=str))
    if violations:
        print(
            f"SERVE CONTRACT VIOLATED: {violations} bad responses",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
