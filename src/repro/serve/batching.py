"""Engine reuse, request coalescing, and the degradation ladder.

Three mechanisms live here, all in service of the dispatcher:

**Engine cache.** Plain requests (no verification, no sharding) of the
same shape class and execution profile reuse one engine object. The
engine's plan is memoized process-wide anyway (``lru_cache`` in
:mod:`repro.gemm.plan`), but reusing the *object* also reuses its
reference to the server's shared :class:`~repro.packing.pool.BufferPool`
— the second request of a class packs into buffers the first one
released. Verified and sharded requests get fresh engines (their
configs carry per-request state: injection plans, shard deadlines);
construction is cheap because the plan cache absorbs the expensive
part.

**Coalescing.** The dispatcher drains up to ``max_batch`` same-class,
same-profile small requests from the queue in one scoop and runs them
back-to-back on one executor thread through one engine: one plan
lookup, pool-warm packs, no cross-thread handoff between them.

**Degradation ladder.** When retries on the requested configuration
keep failing, the server steps the request down a fixed ladder rather
than failing it outright: drop process sharding (sharded → threaded),
drop threading (threaded → serial), and finally drop a fast backend to
the trusted numpy oracle. Each rung is a strictly simpler execution
with strictly fewer failure modes; the last rung — serial oracle — is
the code path every other one is bit-identical to, so degradation
never changes the answer, only the speed. A
:class:`~repro.errors.BackendCapabilityError` jumps straight to the
oracle rung (capability gaps do not heal with retries).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.plan import PlanOverride
from repro.gemm.sharded import ShardConfig, resolve_shards
from repro.machines.spec import MachineSpec
from repro.packing.pool import BufferPool
from repro.serve.classifier import ShapeClass
from repro.serve.request import MultiplyRequest


@dataclass(frozen=True, slots=True)
class Rung:
    """One step of the degradation ladder (an execution profile)."""

    processes: "int | ShardConfig | None"
    workers: int | None
    backend: str | None

    def describe(self) -> str:
        shards = resolve_shards(self.processes)
        processes = 1 if shards is None else shards.processes
        workers = self.workers if self.workers else 1
        backend = self.backend or "default"
        return f"processes={processes} workers={workers} backend={backend}"


def degradation_rungs(request: MultiplyRequest) -> list[Rung]:
    """The ladder for one request, strongest configuration first.

    Always ends at the serial numpy oracle, deduplicated so a request
    already asking for the bottom rung gets a one-rung ladder.
    """
    rungs = [Rung(request.processes, request.workers, request.backend)]

    def push(rung: Rung) -> None:
        if rung != rungs[-1]:
            rungs.append(rung)

    # Degraded rungs pin processes to an explicit 1 (not None): None
    # re-resolves to the process-wide default, which may itself be
    # sharded when `cake-bench --processes` set it.
    if resolve_shards(request.processes) is not None:
        push(Rung(1, request.workers, request.backend))
    if request.workers is not None and request.workers > 1:
        push(Rung(1, None, request.backend))
    if request.backend not in (None, "numpy"):
        push(Rung(1, None, "numpy"))
    return rungs


def oracle_rung() -> Rung:
    """The ladder's terminal rung: serial, in-process, numpy oracle."""
    return Rung(1, None, "numpy")


class EngineCache:
    """Builds engines for (request, rung) pairs, reusing plain ones.

    All engines — cached or fresh — share the server's
    :class:`~repro.packing.pool.BufferPool`, which is what turns a
    repeated shape class into allocation-free packing. Thread-safe:
    engines themselves are safe for concurrent ``multiply`` (their
    pools lock), and the cache dict is guarded.
    """

    def __init__(self, machine: MachineSpec, pool: BufferPool) -> None:
        self.machine = machine
        self.pool = pool
        self._lock = threading.Lock()
        self._plain: dict[tuple, object] = {}

    def engine_for(
        self,
        request: MultiplyRequest,
        shape_class: ShapeClass,
        rung: Rung,
        deadline_at: float | None = None,
        override: "PlanOverride | None" = None,
    ):
        """An engine executing ``rung`` for this request.

        Sharded rungs get a fresh engine whose
        :class:`~repro.gemm.sharded.ShardConfig` carries the request's
        absolute deadline, so a hung shard worker is killed by the
        shard executor itself rather than stranding a dispatcher
        thread. ``override`` is the class's tuned
        :class:`~repro.gemm.plan.PlanOverride` (resolved off the
        request path by :class:`~repro.tune.PlanService`); it is part
        of the plain-engine cache key, so tuned and analytic engines
        for the same class coexist while a tune is landing.
        """
        shards = resolve_shards(rung.processes)
        if shards is not None:
            processes: "int | ShardConfig" = replace(
                shards, deadline=deadline_at
            )
        else:
            # Explicit 1, not None: None would re-resolve through the
            # process-wide default inside the engine constructor.
            processes = 1
        plain = request.verify in (False, None) and shards is None
        key = (
            shape_class.engine,
            shape_class.cores,
            rung.workers,
            rung.backend,
            override,
        )
        if plain:
            with self._lock:
                engine = self._plain.get(key)
                if engine is not None:
                    return engine
        engine = self._build(
            shape_class, rung, processes, request.verify, override
        )
        if plain:
            with self._lock:
                engine = self._plain.setdefault(key, engine)
        return engine

    def _build(self, shape_class, rung, processes, verify, override=None):
        kwargs = dict(
            cores=shape_class.cores,
            workers=rung.workers,
            verify=verify,
            backend=rung.backend,
            processes=processes,
            pool=self.pool,
            plan=override,
            # Explicit False: serve engines never self-tune — the tuned
            # override (if any) arrives via PlanService, resolved off
            # the request path. Inheriting the process default would
            # put a synchronous tune on a request deadline.
            tuned=False,
        )
        if shape_class.engine == "goto":
            return GotoGemm(self.machine, **kwargs)
        return CakeGemm(self.machine, **kwargs)
