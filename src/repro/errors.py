"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`CakeError` so callers can
catch one type at the API boundary. ``ValueError``/``TypeError`` are still
raised for plain argument-contract violations where that is the idiomatic
Python behaviour; the subclasses here mark *domain* failures (inconsistent
machine configuration, malformed schedules, simulator protocol violations).
"""

from __future__ import annotations


class CakeError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(CakeError):
    """A machine spec, block shape, or tiling parameter is inconsistent.

    Examples: a CB block that cannot fit into the last-level cache under the
    LRU sizing rule of Section 4.3; a cache level smaller than one line; a
    core count exceeding what the machine provides.
    """


class BackendCapabilityError(CakeError, TypeError):
    """A compute backend cannot satisfy the requested operation.

    Raised at the API boundary (operand validation, backend selection)
    instead of a bare ``TypeError`` deep in a kernel, so callers can see
    *which* backend refused and why. Subclasses ``TypeError`` because the
    pre-backend operand contract raised that type for dtype rejections —
    existing ``except TypeError`` handlers keep working.

    Attributes
    ----------
    backend:
        Name of the backend that rejected the request (``"numpy"``,
        ``"blas-group"``, ``"torch"``, ...).
    dtype:
        The offending accumulation dtype, when the rejection is about
        dtype support; ``None`` otherwise (e.g. an unavailable backend).
    """

    def __init__(self, backend: str, message: str, *, dtype=None):
        self.backend = backend
        self.dtype = dtype
        self._message = message
        super().__init__(f"backend {backend!r}: {message}")

    def __reduce__(self):
        # The two-positional + keyword signature defeats the default
        # exception reduce; shard workers may raise this across a
        # process boundary, so rebuild explicitly.
        return (
            BackendCapabilityError,
            (self.backend, self._message),
            {"dtype": self.dtype},
        )


class ScheduleError(CakeError):
    """A block schedule violates a structural invariant.

    Examples: a schedule that does not cover every block exactly once, or a
    traversal step between non-adjacent blocks where adjacency is required.
    """


class SimulationError(CakeError):
    """The discrete-event or cache simulator reached an invalid state.

    Examples: a packet routed to a module that cannot accept it, an event
    scheduled in the past, or an accumulation arriving for a retired block.
    """
