"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`CakeError` so callers can
catch one type at the API boundary. ``ValueError``/``TypeError`` are still
raised for plain argument-contract violations where that is the idiomatic
Python behaviour; the subclasses here mark *domain* failures (inconsistent
machine configuration, malformed schedules, simulator protocol violations).
"""

from __future__ import annotations


class CakeError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(CakeError):
    """A machine spec, block shape, or tiling parameter is inconsistent.

    Examples: a CB block that cannot fit into the last-level cache under the
    LRU sizing rule of Section 4.3; a cache level smaller than one line; a
    core count exceeding what the machine provides.
    """


class BackendCapabilityError(CakeError, TypeError):
    """A compute backend cannot satisfy the requested operation.

    Raised at the API boundary (operand validation, backend selection)
    instead of a bare ``TypeError`` deep in a kernel, so callers can see
    *which* backend refused and why. Subclasses ``TypeError`` because the
    pre-backend operand contract raised that type for dtype rejections —
    existing ``except TypeError`` handlers keep working.

    Attributes
    ----------
    backend:
        Name of the backend that rejected the request (``"numpy"``,
        ``"blas-group"``, ``"torch"``, ...).
    dtype:
        The offending accumulation dtype, when the rejection is about
        dtype support; ``None`` otherwise (e.g. an unavailable backend).
    """

    def __init__(self, backend: str, message: str, dtype=None):
        self.backend = backend
        self.dtype = dtype
        self._message = message
        super().__init__(f"backend {backend!r}: {message}")

    def __reduce__(self):
        # The multi-argument signature defeats the default exception
        # reduce (which replays only the formatted message); shard and
        # serve workers raise this across process/thread boundaries, so
        # rebuild positionally — ``dtype`` included — and through
        # ``type(self)`` so subclasses round-trip as themselves.
        return (type(self), (self.backend, self._message, self.dtype))


class AdmissionError(CakeError):
    """The serve front door refused a request before queueing it.

    Load shedding is a *feature*: a bounded queue that rejects work it
    cannot finish in time beats an unbounded one that accepts
    everything and strands most of it. The structured payload tells the
    client whether to retry (``reason="capacity"`` plus a
    ``retry_after`` hint) or to give up (``reason="deadline"`` — the
    budget was already spent at submit time; ``reason="shutdown"`` —
    the server is stopping).

    Attributes
    ----------
    reason:
        ``"capacity"``, ``"deadline"`` or ``"shutdown"``.
    queue_depth:
        Requests queued at the moment of rejection.
    capacity:
        The bounded queue's limit.
    retry_after:
        Suggested client backoff in seconds (an estimate from recent
        service latency and the current backlog), or ``None`` when
        retrying cannot help.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        queue_depth: int = 0,
        capacity: int = 0,
        retry_after: "float | None" = None,
    ):
        self.reason = reason
        self.queue_depth = queue_depth
        self.capacity = capacity
        self.retry_after = retry_after
        self._message = message
        hint = (
            f"; retry after {retry_after:.3f}s" if retry_after is not None
            else ""
        )
        super().__init__(
            f"admission refused ({reason}): {message} "
            f"[queue {queue_depth}/{capacity}{hint}]"
        )

    def __reduce__(self):
        return (
            type(self),
            (
                self.reason,
                self._message,
                self.queue_depth,
                self.capacity,
                self.retry_after,
            ),
        )


class DeadlineExceededError(CakeError):
    """A request's deadline expired before a result could be returned.

    The serving contract is *no stale results*: once the budget is
    spent the request terminates with this error whether it was still
    queued, mid-execution, or waiting on a hung shard worker — a late
    product computed after expiry is discarded, never returned.

    Attributes
    ----------
    stage:
        Where the budget ran out: ``"queue"`` (expired before
        execution started), ``"execute"`` (expired while an engine ran
        it), ``"shard"`` (the sharded executor's deadline fired and the
        pool was killed), or ``"result-wait"`` (the waiter's clock
        expired before the dispatcher resolved the handle).
    budget:
        The request's deadline budget in seconds, when known.
    elapsed:
        Seconds between submit and expiry, when known.
    """

    def __init__(
        self,
        stage: str,
        budget: "float | None" = None,
        elapsed: "float | None" = None,
    ):
        self.stage = stage
        self.budget = budget
        self.elapsed = elapsed
        detail = ""
        if budget is not None:
            detail += f" budget={budget:.3f}s"
        if elapsed is not None:
            detail += f" elapsed={elapsed:.3f}s"
        super().__init__(f"deadline exceeded during {stage}{detail}")

    def __reduce__(self):
        return (type(self), (self.stage, self.budget, self.elapsed))


class FleetError(CakeError):
    """The serving fleet, as a whole, cannot take or finish a request.

    Distinct from :class:`AdmissionError` (one server's bounded queue
    saying *not now*): a ``FleetError`` means the supervisor layer has
    no healthy worker to hand the request to — every slot is terminal
    after exhausting its restart budget, or the fleet was torn down
    with work still unassigned. Like every serve-path error it is
    pickle-safe, because it crosses the worker/supervisor process
    boundary.

    Attributes
    ----------
    reason:
        ``"no-workers"`` (all worker slots terminal), ``"worker-crash"``
        (see :class:`WorkerCrashError`), or ``"stopped"`` (fleet torn
        down before the request could be dispatched).
    workers:
        Fleet size (configured worker-slot count) at the time of the
        failure, for the operator reading the message.
    """

    def __init__(self, reason: str, message: str, workers: int = 0):
        self.reason = reason
        self.workers = workers
        self._message = message
        super().__init__(
            f"fleet {reason}: {message} [workers={workers}]"
        )

    def __reduce__(self):
        return (type(self), (self.reason, self._message, self.workers))


class WorkerCrashError(FleetError):
    """A fleet worker process died (or hung past its heartbeat) with a
    request in flight, and the re-dispatch budget could not save it.

    The supervisor re-dispatches in-flight requests from a dead worker
    to a healthy one (bit-identity makes re-execution safe); only when
    a request has burned through ``max_redispatch`` workers — or the
    fleet is draining — does it surface this error instead. The
    attributes identify the *last* worker that took the request down
    with it.

    Attributes
    ----------
    worker:
        Slot index of the worker that died.
    pid:
        OS pid of the dead process, when known.
    exitcode:
        Its exit code (negative = killed by that signal), when known.
    restarts:
        How many times that slot had been restarted when it died.
    request_id:
        The content-hash request id that was in flight, or ``None``
        when the crash is being reported for the slot itself.
    """

    def __init__(
        self,
        worker: int,
        pid: "int | None" = None,
        exitcode: "int | None" = None,
        restarts: int = 0,
        request_id: "str | None" = None,
    ):
        self.worker = worker
        self.pid = pid
        self.exitcode = exitcode
        self.restarts = restarts
        self.request_id = request_id
        detail = f"worker {worker} (pid={pid}, exitcode={exitcode}) died"
        if request_id is not None:
            detail += f" holding request {request_id}"
        detail += f" after {restarts} restart(s)"
        super().__init__("worker-crash", detail, workers=0)

    def __reduce__(self):
        return (
            type(self),
            (
                self.worker,
                self.pid,
                self.exitcode,
                self.restarts,
                self.request_id,
            ),
        )


class ProtocolError(CakeError):
    """A ``cake-serve/v1`` frame on the socket front door was malformed.

    Examples: wrong magic bytes, a truncated frame, a header or blob
    over the size limit, or a hello announcing an unknown protocol
    version. The connection is closed after raising; the fleet behind
    it is unaffected.
    """


class ScheduleError(CakeError):
    """A block schedule violates a structural invariant.

    Examples: a schedule that does not cover every block exactly once, or a
    traversal step between non-adjacent blocks where adjacency is required.
    """


class SimulationError(CakeError):
    """The discrete-event or cache simulator reached an invalid state.

    Examples: a packet routed to a module that cannot accept it, an event
    scheduled in the past, or an accumulation arriving for a retired block.
    """
