"""Data-movement energy model.

The paper's closing argument for trading external for internal traffic:
"relying on local memory is generally preferable since DRAM has
relatively high latency and **power consumption**" (Conclusion, citing
Vogelsang's DRAM energy analysis [29]). This module quantifies that
trade: energy is charged per byte moved at each interface plus a per-FLOP
compute term, using widely-cited planning numbers (DRAM access costs
roughly an order of magnitude more per byte than an on-chip SRAM access,
which itself dwarfs the cost of an arithmetic operation).

The defaults are deliberately round planning values, not measurements of
any specific part; the *ratio* between levels is what drives the
CAKE-vs-GOTO comparison, and that ratio is robust across the literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util import require_positive

if TYPE_CHECKING:  # pragma: no cover — avoids a package-import cycle
    from repro.gemm.result import GemmRun


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Per-byte / per-FLOP energy coefficients (picojoules)."""

    dram_pj_per_byte: float = 160.0  # ~20 pJ/bit LPDDR/DDR access+IO
    internal_pj_per_byte: float = 12.0  # large shared SRAM access
    compute_pj_per_flop: float = 2.0  # fp32 FMA + register traffic

    def __post_init__(self) -> None:
        require_positive("dram_pj_per_byte", self.dram_pj_per_byte)
        require_positive("internal_pj_per_byte", self.internal_pj_per_byte)
        require_positive("compute_pj_per_flop", self.compute_pj_per_flop)


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy breakdown of one GEMM run, in joules."""

    dram_joules: float
    internal_joules: float
    compute_joules: float
    flops: float

    @property
    def total_joules(self) -> float:
        return self.dram_joules + self.internal_joules + self.compute_joules

    @property
    def dram_fraction(self) -> float:
        """Share of total energy spent on external memory traffic."""
        return self.dram_joules / self.total_joules

    @property
    def gflops_per_watt(self) -> float:
        """Energy efficiency: FLOP/J numerically equals FLOPS/W."""
        return self.flops / self.total_joules / 1e9


def estimate_energy(run: "GemmRun", model: EnergyModel | None = None) -> EnergyReport:
    """Charge a run's counted traffic and arithmetic against ``model``.

    External bytes use the machine's physical-traffic scaling (the same
    ``external_traffic_factor`` the bandwidth accounting uses); internal
    logical traffic likewise.
    """
    model = EnergyModel() if model is None else model
    machine = run.machine
    dram_bytes = run.dram_bytes  # already physically scaled
    internal_bytes = (
        run.counters.internal
        * machine.element_bytes
        * machine.internal_traffic_factor
    )
    flops = 2.0 * run.counters.macs
    return EnergyReport(
        dram_joules=dram_bytes * model.dram_pj_per_byte * 1e-12,
        internal_joules=internal_bytes * model.internal_pj_per_byte * 1e-12,
        compute_joules=flops * model.compute_pj_per_flop * 1e-12,
        flops=flops,
    )
