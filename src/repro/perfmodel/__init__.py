"""Performance model: roofline timing of block schedules on a machine.

The model follows the paper's Section 4 reasoning: a block (CAKE CB block
or GOTO super-step wave) takes the *maximum* of its compute time, its
external-IO time, and its internal-IO time — IO overlaps computation, and
whichever resource is scarcest bounds the block. Summing over the schedule
(plus packing) yields wall time; dividing external traffic by wall time
yields the observed DRAM bandwidth the paper plots in Figures 10a/11a/12a.

:mod:`repro.perfmodel.roofline` prices one block;
:mod:`repro.perfmodel.predict` prices whole problems analytically (without
touching numerics) so the 23040x23040 sweeps of Figures 10-12 run in
milliseconds; :mod:`repro.perfmodel.optimal` evaluates the paper's
"CAKE optimal" dashed DRAM-bandwidth curve (Equation 4).
"""

from repro.perfmodel.roofline import BlockTime, block_time
from repro.perfmodel.predict import PerfPrediction, predict_cake, predict_goto
from repro.perfmodel.optimal import cake_optimal_dram_gb_per_s
from repro.perfmodel.energy import EnergyModel, EnergyReport, estimate_energy

__all__ = [
    "BlockTime",
    "block_time",
    "PerfPrediction",
    "predict_cake",
    "predict_goto",
    "cake_optimal_dram_gb_per_s",
    "EnergyModel",
    "EnergyReport",
    "estimate_energy",
]
