"""Roofline pricing of a single scheduled block.

One *model cycle* is one register-tile multiply per core (see
:mod:`repro.machines.spec`). A block that needs ``tile_cycles`` cycles of
compute, ``ext_bytes`` of DRAM traffic and ``int_elements`` of logical
LLC-to-core traffic completes in::

    max(compute_time, external_io_time, internal_io_time)

because the engines stream IO concurrently with computation (Section 2.1:
"the IO time for the three surfaces will match the computation time ...
allowing IO to overlap computation"). The returned breakdown records which
resource bound the block — the aggregate tallies reproduce the paper's
bottleneck narratives (GOTO external-bound on ARM, CAKE internal-bound at
high core counts, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.machines.spec import MachineSpec
from repro.util import require_nonnegative, require_positive

Bound = Literal["compute", "external", "internal"]


@dataclass(frozen=True, slots=True)
class BlockTime:
    """Priced execution of one block."""

    seconds: float
    compute_seconds: float
    external_seconds: float
    internal_seconds: float
    bound: Bound

    def __add__(self, other: "BlockTime") -> "BlockTime":
        return BlockTime(
            seconds=self.seconds + other.seconds,
            compute_seconds=self.compute_seconds + other.compute_seconds,
            external_seconds=self.external_seconds + other.external_seconds,
            internal_seconds=self.internal_seconds + other.internal_seconds,
            bound=self.bound if self.seconds >= other.seconds else other.bound,
        )


ZERO_TIME = BlockTime(0.0, 0.0, 0.0, 0.0, "compute")


def block_time(
    machine: MachineSpec,
    *,
    active_cores: int,
    tile_cycles: float,
    kc: int,
    ext_bytes: float,
    int_elements: float,
) -> BlockTime:
    """Price one block on ``machine``.

    Parameters
    ----------
    active_cores:
        Cores participating in the block (sets internal-bandwidth supply).
    tile_cycles:
        Model cycles of the critical-path core (the most-loaded one), in
        units of depth-``kc`` tile multiplies.
    kc:
        Nominal tile depth, fixing the cycle-to-seconds conversion.
    ext_bytes:
        Counted DRAM operand traffic attributable to the block (fetches
        plus write-backs); scaled by the machine's
        ``external_traffic_factor`` to physical traffic.
    int_elements:
        Logical operand elements moved between LLC and cores; scaled by
        the machine's ``internal_traffic_factor`` to physical traffic.
    """
    require_positive("active_cores", active_cores)
    require_nonnegative("tile_cycles", tile_cycles)
    require_positive("kc", kc)
    require_nonnegative("ext_bytes", ext_bytes)
    require_nonnegative("int_elements", int_elements)

    compute_s = tile_cycles / machine.tile_ops_per_second(kc)
    ext_s = ext_bytes * machine.external_traffic_factor / machine.dram_bytes_per_second
    int_bytes = int_elements * machine.element_bytes * machine.internal_traffic_factor
    int_s = int_bytes / machine.internal_bytes_per_second(active_cores)

    seconds = max(compute_s, ext_s, int_s)
    if seconds == compute_s:
        bound: Bound = "compute"
    elif seconds == ext_s:
        bound = "external"
    else:
        bound = "internal"
    return BlockTime(
        seconds=seconds,
        compute_seconds=compute_s,
        external_seconds=ext_s,
        internal_seconds=int_s,
        bound=bound,
    )
