"""Roofline pricing of a single scheduled block.

One *model cycle* is one register-tile multiply per core (see
:mod:`repro.machines.spec`). A block that needs ``tile_cycles`` cycles of
compute, ``ext_bytes`` of DRAM traffic and ``int_elements`` of logical
LLC-to-core traffic completes in::

    max(compute_time, external_io_time, internal_io_time)

because the engines stream IO concurrently with computation (Section 2.1:
"the IO time for the three surfaces will match the computation time ...
allowing IO to overlap computation"). The returned breakdown records which
resource bound the block — the aggregate tallies reproduce the paper's
bottleneck narratives (GOTO external-bound on ARM, CAKE internal-bound at
high core counts, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.machines.spec import MachineSpec
from repro.util import require_nonnegative, require_positive

Bound = Literal["compute", "external", "internal"]

#: Bound names indexed by the integer codes :func:`block_times_batch` emits.
BOUND_NAMES: tuple[Bound, Bound, Bound] = ("compute", "external", "internal")


def _dominant_bound(
    compute_seconds: float, external_seconds: float, internal_seconds: float
) -> Bound:
    """Which resource dominates a time breakdown (block or aggregate).

    Tie priority matches :func:`block_time`: compute wins over external
    wins over internal.
    """
    top = max(compute_seconds, external_seconds, internal_seconds)
    if top == compute_seconds:
        return "compute"
    if top == external_seconds:
        return "external"
    return "internal"


@dataclass(frozen=True, slots=True)
class BlockTime:
    """Priced execution of one block (or a sum of blocks).

    For a sum, ``seconds`` is the accumulated per-block wall time (each
    block pays its own max) while ``bound`` names the resource whose
    *summed* demand dominates the aggregate — the argmax over the
    accumulated per-resource seconds, not the bound of whichever single
    block happened to be largest.
    """

    seconds: float
    compute_seconds: float
    external_seconds: float
    internal_seconds: float
    bound: Bound

    def __add__(self, other: "BlockTime") -> "BlockTime":
        compute_s = self.compute_seconds + other.compute_seconds
        ext_s = self.external_seconds + other.external_seconds
        int_s = self.internal_seconds + other.internal_seconds
        return BlockTime(
            seconds=self.seconds + other.seconds,
            compute_seconds=compute_s,
            external_seconds=ext_s,
            internal_seconds=int_s,
            bound=_dominant_bound(compute_s, ext_s, int_s),
        )


ZERO_TIME = BlockTime(0.0, 0.0, 0.0, 0.0, "compute")


def block_time(
    machine: MachineSpec,
    *,
    active_cores: int,
    tile_cycles: float,
    kc: int,
    ext_bytes: float,
    int_elements: float,
) -> BlockTime:
    """Price one block on ``machine``.

    Parameters
    ----------
    active_cores:
        Cores participating in the block (sets internal-bandwidth supply).
    tile_cycles:
        Model cycles of the critical-path core (the most-loaded one), in
        units of depth-``kc`` tile multiplies.
    kc:
        Nominal tile depth, fixing the cycle-to-seconds conversion.
    ext_bytes:
        Counted DRAM operand traffic attributable to the block (fetches
        plus write-backs); scaled by the machine's
        ``external_traffic_factor`` to physical traffic.
    int_elements:
        Logical operand elements moved between LLC and cores; scaled by
        the machine's ``internal_traffic_factor`` to physical traffic.
    """
    require_positive("active_cores", active_cores)
    require_nonnegative("tile_cycles", tile_cycles)
    require_positive("kc", kc)
    require_nonnegative("ext_bytes", ext_bytes)
    require_nonnegative("int_elements", int_elements)

    compute_s = tile_cycles / machine.tile_ops_per_second(kc)
    ext_s = ext_bytes * machine.external_traffic_factor / machine.dram_bytes_per_second
    int_bytes = int_elements * machine.element_bytes * machine.internal_traffic_factor
    int_s = int_bytes / machine.internal_bytes_per_second(active_cores)

    seconds = max(compute_s, ext_s, int_s)
    if seconds == compute_s:
        bound: Bound = "compute"
    elif seconds == ext_s:
        bound = "external"
    else:
        bound = "internal"
    return BlockTime(
        seconds=seconds,
        compute_seconds=compute_s,
        external_seconds=ext_s,
        internal_seconds=int_s,
        bound=bound,
    )


@dataclass(frozen=True, slots=True)
class BlockTimesBatch:
    """Per-block roofline pricing of a whole schedule, as arrays.

    Element ``i`` of every array is exactly what :func:`block_time`
    returns for block ``i`` — same IEEE operations, applied elementwise —
    so per-block seconds and bound codes are bit-identical to the scalar
    walk's. ``bounds`` holds integer codes indexing :data:`BOUND_NAMES`.
    """

    seconds: np.ndarray
    compute_seconds: np.ndarray
    external_seconds: np.ndarray
    internal_seconds: np.ndarray
    bounds: np.ndarray

    def __len__(self) -> int:
        return len(self.seconds)

    def bound_tallies(self) -> dict[str, int]:
        """How many blocks each resource bounded (Fig. 7-style histogram)."""
        counts = np.bincount(self.bounds, minlength=len(BOUND_NAMES))
        return {name: int(counts[code]) for code, name in enumerate(BOUND_NAMES)}

    def total(self) -> BlockTime:
        """The aggregate :class:`BlockTime` of the whole schedule.

        Float components are accumulated *sequentially in schedule
        order* — the same additions, in the same order, as the scalar
        walk's ``total = total + block_time(...)`` chain — so the result
        is bit-identical to it, not merely close.
        """
        seconds = compute_s = ext_s = int_s = 0.0
        per_block = zip(
            self.seconds.tolist(),
            self.compute_seconds.tolist(),
            self.external_seconds.tolist(),
            self.internal_seconds.tolist(),
        )
        for sec, comp, ext, internal in per_block:
            seconds += sec
            compute_s += comp
            ext_s += ext
            int_s += internal
        return BlockTime(
            seconds=seconds,
            compute_seconds=compute_s,
            external_seconds=ext_s,
            internal_seconds=int_s,
            bound=_dominant_bound(compute_s, ext_s, int_s),
        )


def block_times_batch(
    machine: MachineSpec,
    *,
    active_cores: np.ndarray,
    tile_cycles: np.ndarray,
    kc: int,
    ext_bytes: np.ndarray,
    int_elements: np.ndarray,
) -> BlockTimesBatch:
    """Price every block of a schedule in one shot.

    Vectorized :func:`block_time`: the four parameters become equal-length
    arrays (one entry per block). Arithmetic is the same sequence of IEEE
    operations as the scalar function, applied elementwise, and the bound
    classification uses the same equality tests in the same priority
    order — per-block results are bit-for-bit identical.

    ``active_cores`` typically takes only a handful of distinct values
    (full waves plus a ragged tail), so the internal-bandwidth curve is
    evaluated once per distinct count through the exact scalar method.
    """
    require_positive("kc", kc)
    compute_s = tile_cycles / machine.tile_ops_per_second(kc)
    ext_s = (
        ext_bytes * machine.external_traffic_factor / machine.dram_bytes_per_second
    )
    int_bytes = (
        int_elements * machine.element_bytes * machine.internal_traffic_factor
    )
    internal_bps = np.empty(len(int_bytes), dtype=np.float64)
    for cores in np.unique(active_cores).tolist():
        require_positive("active_cores", cores)
        internal_bps[active_cores == cores] = machine.internal_bytes_per_second(
            int(cores)
        )
    int_s = int_bytes / internal_bps

    seconds = np.maximum(np.maximum(compute_s, ext_s), int_s)
    bounds = np.where(
        seconds == compute_s, 0, np.where(seconds == ext_s, 1, 2)
    ).astype(np.int8)
    return BlockTimesBatch(
        seconds=seconds,
        compute_seconds=compute_s,
        external_seconds=ext_s,
        internal_seconds=int_s,
        bounds=bounds,
    )
