"""Whole-problem performance prediction.

These wrappers run the engines' *analytic* walk (identical code path to
numerical execution, minus the arithmetic) and repackage the result as a
:class:`PerfPrediction` — one point on a paper figure. The 23040 x 23040
sweeps of Figures 10-12 are thousands of block evaluations, which complete
in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.spec import MachineSpec


@dataclass(frozen=True, slots=True)
class PerfPrediction:
    """One (machine, engine, cores, problem) performance point."""

    engine: str
    machine_name: str
    cores: int
    m: int
    n: int
    k: int
    gflops: float
    seconds: float
    dram_gb_per_s: float
    bound_blocks: dict[str, int]
    plan_summary: dict[str, float]


def predict_cake(
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    cores: int | None = None,
    alpha: float | None = None,
    exact_walk: bool = False,
) -> PerfPrediction:
    """Predicted CAKE performance for ``m x k . k x n`` on ``machine``.

    Priced by the vectorized batch analyzer unless ``exact_walk`` forces
    the scalar per-block walk (same numbers either way, bit for bit).
    """
    from repro.gemm.cake import CakeGemm  # local import: avoids package cycle

    engine = CakeGemm(machine, cores=cores, alpha=alpha, exact_walk=exact_walk)
    return _package(engine.analyze(m, n, k))


def predict_goto(
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    cores: int | None = None,
    exact_walk: bool = False,
) -> PerfPrediction:
    """Predicted GOTO (MKL/ARMPL/OpenBLAS-model) performance."""
    from repro.gemm.goto import GotoGemm  # local import: avoids package cycle

    engine = GotoGemm(machine, cores=cores, exact_walk=exact_walk)
    return _package(engine.analyze(m, n, k))


def _package(run) -> PerfPrediction:
    return PerfPrediction(
        engine=run.engine,
        machine_name=run.machine.name,
        cores=run.cores,
        m=run.space.m,
        n=run.space.n,
        k=run.space.k,
        gflops=run.gflops,
        seconds=run.seconds,
        dram_gb_per_s=run.dram_gb_per_s,
        bound_blocks=dict(run.bound_blocks),
        plan_summary=dict(run.plan_summary),
    )
