"""CAKE's theoretically optimal DRAM bandwidth — the dashed curve of
Figures 10a and 11a.

Equation 4 gives the external bandwidth a CB block *requires*:
``BW_ext = ((alpha + 1) / alpha) * mr * nr`` elements per model cycle,
independent of core count. Converted to GB/s at the machine's tile rate,
this is the flat dashed "CAKE Optimal" line the paper plots against
observed usage.
"""

from __future__ import annotations

from repro.core.cpu_model import cake_external_bw
from repro.machines.spec import MachineSpec
from repro.schedule.space import ComputationSpace


def cake_optimal_dram_gb_per_s(
    machine: MachineSpec,
    *,
    cores: int | None = None,
    m: int = 1,
    n: int = 1,
    k: int = 1,
) -> float:
    """Equation 4 in GB/s for ``machine`` (and optionally a problem).

    The problem extents only matter through the plan's chosen
    ``(alpha, kc)``; defaults give the asymptotic large-problem value.
    """
    from repro.gemm.plan import CakePlan  # local import: avoids package cycle

    space = ComputationSpace(max(m, 1), max(n, 1), max(k, 1))
    plan = CakePlan.from_problem(machine, space, cores=cores)
    elements_per_cycle = cake_external_bw(plan.cpu_params)
    bytes_per_second = (
        elements_per_cycle
        * machine.tile_ops_per_second(plan.kc)
        * machine.element_bytes
        * machine.external_traffic_factor
    )
    return bytes_per_second / 1e9
