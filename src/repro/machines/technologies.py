"""Hypothetical machines built on emerging memory technologies.

Section 1 motivates CAKE with "architectures [that] may arise as a result
of emerging technologies such as special-purpose accelerators, low-power
systems, 3D DRAM die stacking and high-capacity non-volatile memory
(NVM)". These presets realise that spectrum around a common compute
complex (the Intel preset's cores and caches), so the *only* thing that
varies is the external memory:

* :func:`hbm_stacked_machine` — 3D-stacked DRAM: external bandwidth so
  high the memory wall effectively disappears. GOTO's linear bandwidth
  demand is easily paid; CAKE's advantage narrows to energy.
* :func:`ddr_machine` — the baseline desktop DDR channel (the Intel
  preset itself).
* :func:`nvm_machine` — high-capacity non-volatile main memory: huge
  capacity, a fraction of DDR's bandwidth and efficiency. The memory
  wall at its starkest; GOTO collapses, CAKE stretches alpha.

The memory-technology bench sweeps GEMM across all three with both
engines, reproducing the paper's framing: the faster the external memory,
the less CAKE's discipline matters — and the slower it is, the more.
"""

from __future__ import annotations

import dataclasses

from repro.machines.presets import intel_i9_10900k
from repro.machines.spec import MachineSpec
from repro.util.units import BYTES_PER_GIB


def ddr_machine() -> MachineSpec:
    """Baseline: a dual-channel DDR4 desktop (the Intel i9 preset)."""
    return dataclasses.replace(intel_i9_10900k(), name="DDR4 desktop")


def hbm_stacked_machine() -> MachineSpec:
    """3D die-stacked DRAM: ~8x the external bandwidth at full efficiency.

    Modelled on an HBM2-class stack (hundreds of GB/s to a CPU-sized
    compute complex); capacity is modest, as stacks are.
    """
    return dataclasses.replace(
        intel_i9_10900k(),
        name="3D-stacked HBM system",
        dram_gb_per_s=320.0,
        dram_efficiency=0.9,
        dram_bytes=16 * BYTES_PER_GIB,
        dram_latency_cycles=220,
    )


def nvm_machine() -> MachineSpec:
    """High-capacity NVM as main memory: vast, slow, write-averse.

    Modelled on Optane-class persistent memory: ~1/5th the read
    bandwidth of DDR, poor mixed-stream efficiency, long latency, huge
    capacity.
    """
    return dataclasses.replace(
        intel_i9_10900k(),
        name="NVM main-memory system",
        dram_gb_per_s=8.0,
        dram_efficiency=0.6,
        dram_bytes=512 * BYTES_PER_GIB,
        dram_latency_cycles=900,
    )


MEMORY_TECHNOLOGIES = {
    "hbm": hbm_stacked_machine,
    "ddr": ddr_machine,
    "nvm": nvm_machine,
}
