"""The MachineSpec value type.

A spec is the *entire* interface between the CAKE/GOTO analysis and a
platform: every performance prediction in this library is a function of a
spec plus a problem size. That mirrors the paper, whose Sections 3-4 derive
all claims from exactly these parameters (cache sizes, core count, DRAM
bandwidth, micro-kernel tile, internal-bandwidth curve).

Time base
---------
The model clock follows the paper: one core retires one ``mr x kc`` by
``kc x nr`` register-tile multiply per *model cycle*. A spec carries the
core's sustained GEMM rate (``clock_hz * flops_per_cycle_per_core``), from
which :meth:`MachineSpec.tile_ops_per_second` converts model cycles to
seconds for a given ``kc``. Calibration of ``flops_per_cycle_per_core`` to
the paper's observed single-core throughputs is documented per preset in
:mod:`repro.machines.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machines.internal_bw import InternalBandwidthCurve
from repro.util import require_positive
from repro.util.units import FLOAT32_BYTES


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """Parametric model of a CPU platform (one row of Table 2).

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"Intel i9-10900K"``).
    cores:
        Physical cores available.
    clock_hz:
        Core clock used for cycle/second conversions.
    flops_per_cycle_per_core:
        Sustained single-precision FLOPs a core retires per clock inside
        the GEMM micro-kernel (captures SIMD width, FMA issue, and
        measured efficiency).
    l1_bytes, l2_bytes:
        Per-core data-cache capacities.
    llc_bytes:
        Capacity of the last-level cache shared by all cores. On the ARM
        Cortex-A53 this *is* the L2 (``llc_is_l2=True``) and there is no
        private L2.
    llc_is_l2:
        True when the shared LLC is the L2 (no private per-core L2).
    dram_bytes:
        Main-memory capacity (bounds admissible problem sizes).
    dram_gb_per_s:
        Peak external (DRAM) bandwidth, decimal GB/s as in Table 2.
    dram_efficiency:
        Fraction of peak DRAM bandwidth sustainable under GEMM's mixed
        read/write streams (1.0 = ideal). Low-power LPDDR systems sit well
        below peak; this is the knob that encodes it.
    dram_latency_cycles:
        Load-to-use latency of DRAM in model *core clock* cycles; used by
        the stall accounting of Figure 7.
    l1_latency_cycles, l2_latency_cycles, llc_latency_cycles:
        Same, for each cache level.
    mr, nr:
        Register-tile (micro-kernel) extents.
    element_bytes:
        Width of a matrix element (4 for float32, as evaluated in the
        paper).
    internal_bw:
        LLC-to-cores bandwidth curve (see :mod:`repro.machines.internal_bw`).
    internal_traffic_factor:
        Multiplier converting *logical* operand traffic (elements the
        kernel must move between LLC and cores) into *physical* internal
        traffic on the pmbw scale of Figures 10c/11c/12c. Physical traffic
        is larger because of cache-line granularity, write-allocate,
        refills across L2/L1, and coherence; the factor is calibrated per
        preset so internal-bandwidth saturation binds at the core counts
        the paper observed.
    external_traffic_factor:
        Same idea for the DRAM interface: converts counted operand
        elements into the physical traffic a hardware counter would see
        (cache-line granularity, write-allocate on stores, prefetcher
        overfetch, TLB walks). Calibrated against the observed DRAM
        bandwidths of Figures 10a/11a (e.g. the paper's CAKE-on-Intel
        average of 4.5 GB/s against an Eq. 4 operand count near 3).
    """

    name: str
    cores: int
    clock_hz: float
    flops_per_cycle_per_core: float
    l1_bytes: int
    l2_bytes: int
    llc_bytes: int
    dram_bytes: int
    dram_gb_per_s: float
    mr: int
    nr: int
    internal_bw: InternalBandwidthCurve
    internal_traffic_factor: float = 1.0
    external_traffic_factor: float = 1.0
    llc_is_l2: bool = False
    dram_efficiency: float = 1.0
    dram_latency_cycles: int = 300
    l1_latency_cycles: int = 4
    l2_latency_cycles: int = 14
    llc_latency_cycles: int = 40
    element_bytes: int = FLOAT32_BYTES

    def __post_init__(self) -> None:
        require_positive("cores", self.cores)
        require_positive("clock_hz", self.clock_hz)
        require_positive("flops_per_cycle_per_core", self.flops_per_cycle_per_core)
        require_positive("l1_bytes", self.l1_bytes)
        require_positive("l2_bytes", self.l2_bytes)
        require_positive("llc_bytes", self.llc_bytes)
        require_positive("dram_bytes", self.dram_bytes)
        require_positive("dram_gb_per_s", self.dram_gb_per_s)
        require_positive("mr", self.mr)
        require_positive("nr", self.nr)
        require_positive("internal_traffic_factor", self.internal_traffic_factor)
        require_positive("external_traffic_factor", self.external_traffic_factor)
        require_positive("dram_efficiency", self.dram_efficiency)
        if self.dram_efficiency > 1.0:
            raise ValueError(
                f"dram_efficiency must be <= 1.0, got {self.dram_efficiency}"
            )
        require_positive("element_bytes", self.element_bytes)

    # -- capacities in elements -------------------------------------------

    @property
    def l1_elements(self) -> int:
        """L1 capacity in matrix elements."""
        return self.l1_bytes // self.element_bytes

    @property
    def l2_elements(self) -> int:
        """Per-core local-memory capacity in elements.

        On machines whose LLC is the shared L2 (ARM A53), the per-core
        private level is the L1, so this returns the L1 capacity — the
        paper's analysis always needs "the cache private to one core".
        """
        if self.llc_is_l2:
            return self.l1_elements
        return self.l2_bytes // self.element_bytes

    @property
    def llc_elements(self) -> int:
        """Shared last-level-cache capacity in elements."""
        return self.llc_bytes // self.element_bytes

    # -- time base ---------------------------------------------------------

    @property
    def core_flops_per_second(self) -> float:
        """Sustained FLOP/s of one core inside the micro-kernel."""
        return self.clock_hz * self.flops_per_cycle_per_core

    def peak_gflops(self, cores: int | None = None) -> float:
        """Aggregate sustained GFLOP/s with ``cores`` cores active."""
        cores = self.cores if cores is None else cores
        require_positive("cores", cores)
        return cores * self.core_flops_per_second / 1e9

    def tile_flops(self, kc: int) -> float:
        """FLOPs of one ``mr x kc`` by ``kc x nr`` register-tile multiply."""
        require_positive("kc", kc)
        return 2.0 * self.mr * self.nr * kc

    def tile_ops_per_second(self, kc: int) -> float:
        """Model cycles per second for depth-``kc`` tiles.

        One model cycle == one tile multiply per core, so this is also the
        rate at which a single core advances through model cycles.
        """
        return self.core_flops_per_second / self.tile_flops(kc)

    # -- bandwidths --------------------------------------------------------

    @property
    def dram_bytes_per_second(self) -> float:
        """Effective external bandwidth in bytes/s (after efficiency)."""
        return self.dram_gb_per_s * self.dram_efficiency * 1e9

    def internal_bytes_per_second(self, cores: int) -> float:
        """Effective LLC-to-cores bandwidth in bytes/s for ``cores`` cores."""
        return self.internal_bw.bandwidth_gb_per_s(cores) * 1e9

    # -- derived machines ---------------------------------------------------

    def with_cores(self, cores: int) -> "MachineSpec":
        """A copy of this spec restricted/expanded to ``cores`` cores.

        Cache sizes and bandwidth curves are unchanged; use
        :func:`repro.machines.extrapolate.extrapolated_machine` for the
        paper's grown-machine assumptions.
        """
        require_positive("cores", cores)
        return replace(self, cores=cores)
