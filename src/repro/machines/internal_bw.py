"""Internal (last-level-cache to cores) bandwidth curves.

The paper measures these with pmbw (Figures 10c, 11c, 12c) and uses them to
explain where CAKE's observed DRAM bandwidth departs from the theoretical
optimum:

* **Intel i9-10900K** — internal bandwidth stops scaling proportionally past
  6 cores, so CAKE's DRAM bandwidth creeps above optimal at 9-10 cores.
* **ARM Cortex-A53** — internal bandwidth is flat beyond 2 cores, so CAKE's
  DRAM bandwidth rises above optimal at 3-4 cores.
* **AMD Ryzen 9 5950X** — internal bandwidth grows ~50 GB/s per core,
  roughly linearly, so CAKE is never internal-bandwidth bound.

:class:`SaturatingCurve` models all three shapes with a per-core slope up to
a knee and a (small) post-knee slope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.util import require_nonnegative, require_positive


@runtime_checkable
class InternalBandwidthCurve(Protocol):
    """Bandwidth (GB/s) available between the LLC and ``cores`` active cores."""

    def bandwidth_gb_per_s(self, cores: int) -> float:  # pragma: no cover
        ...


@dataclass(frozen=True, slots=True)
class SaturatingCurve:
    """Piecewise-linear internal-bandwidth curve with a saturation knee.

    ``bw(c) = per_core * min(c, knee) + per_core * post_knee_fraction * max(0, c - knee)``

    Attributes
    ----------
    per_core_gb_per_s:
        Bandwidth added per core while scaling is proportional.
    knee_cores:
        Core count past which proportional scaling stops.
    post_knee_fraction:
        Fraction of ``per_core_gb_per_s`` each core beyond the knee still
        contributes (0 = completely flat, 1 = never saturates).
    """

    per_core_gb_per_s: float
    knee_cores: int
    post_knee_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_positive("per_core_gb_per_s", self.per_core_gb_per_s)
        require_positive("knee_cores", self.knee_cores)
        require_nonnegative("post_knee_fraction", self.post_knee_fraction)
        if self.post_knee_fraction > 1.0:
            raise ValueError(
                "post_knee_fraction must be <= 1.0, got "
                f"{self.post_knee_fraction}"
            )

    def bandwidth_gb_per_s(self, cores: int) -> float:
        """Internal bandwidth in GB/s with ``cores`` cores active."""
        require_positive("cores", cores)
        linear = min(cores, self.knee_cores)
        excess = max(0, cores - self.knee_cores)
        return self.per_core_gb_per_s * (linear + self.post_knee_fraction * excess)

    def linearised(self) -> "SaturatingCurve":
        """The knee-free curve used by the paper's extrapolations.

        Figures 10-12 draw dotted lines "assuming internal memory bandwidth
        increases proportionally for each additional core"; this returns
        that idealised version of the curve.
        """
        return SaturatingCurve(
            per_core_gb_per_s=self.per_core_gb_per_s,
            knee_cores=2**31,
            post_knee_fraction=1.0,
        )
