"""Machine models — Table 2 of the paper plus internal-bandwidth curves.

A :class:`~repro.machines.spec.MachineSpec` captures everything the CAKE
analysis needs about a platform: core count and per-core sustained compute
rate, the cache hierarchy, DRAM bandwidth/capacity, the micro-kernel tile
shape, and an internal (LLC-to-cores) bandwidth curve standing in for the
paper's pmbw measurements.

The three presets reproduce Table 2:

=====================  =====  =====  ======  ======  =====  ==============
CPU                    L1     L2     LLC     DRAM    Cores  DRAM bandwidth
=====================  =====  =====  ======  ======  =====  ==============
Intel i9-10900K        32KiB  256KiB 20MiB   32GB    10     40 GB/s
AMD Ryzen 9 5950X      32KiB  512KiB 64MiB   128GB   16     47 GB/s
ARM v8 Cortex-A53      16KiB  512KiB (L2)    1GB     4      2 GB/s
=====================  =====  =====  ======  ======  =====  ==============

(The A53 has no L3; its shared L2 is the last-level cache, as in the paper.)
"""

from repro.machines.internal_bw import InternalBandwidthCurve, SaturatingCurve
from repro.machines.spec import MachineSpec
from repro.machines.presets import (
    amd_ryzen_9_5950x,
    arm_cortex_a53,
    intel_i9_10900k,
    preset,
    PRESET_NAMES,
)
from repro.machines.extrapolate import extrapolated_machine
from repro.machines.technologies import (
    MEMORY_TECHNOLOGIES,
    ddr_machine,
    hbm_stacked_machine,
    nvm_machine,
)

__all__ = [
    "MEMORY_TECHNOLOGIES",
    "ddr_machine",
    "hbm_stacked_machine",
    "nvm_machine",
    "InternalBandwidthCurve",
    "SaturatingCurve",
    "MachineSpec",
    "amd_ryzen_9_5950x",
    "arm_cortex_a53",
    "intel_i9_10900k",
    "preset",
    "PRESET_NAMES",
    "extrapolated_machine",
]
