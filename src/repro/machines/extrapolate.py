"""Grown-machine extrapolation (dotted lines of Figures 10-12).

The paper extrapolates CAKE and the vendor library beyond the physical core
count under three explicit assumptions:

1. internal bandwidth keeps increasing **proportionally** with each
   additional core (the measured knee is removed),
2. local-memory (LLC) size increases **quadratically** with the number of
   cores (what Eq. 5 requires for CAKE to stay constant-bandwidth),
3. DRAM bandwidth stays **fixed**.

:func:`extrapolated_machine` applies exactly those assumptions to a base
spec.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigurationError
from repro.machines.internal_bw import SaturatingCurve
from repro.machines.spec import MachineSpec
from repro.util import require_positive


def extrapolated_machine(base: MachineSpec, cores: int) -> MachineSpec:
    """A hypothetical ``cores``-core version of ``base``.

    LLC capacity scales as ``(cores / base.cores)^2``; the internal
    bandwidth curve is linearised (no knee); DRAM bandwidth and all other
    parameters stay fixed. With ``cores <= base.cores`` the spec is simply
    restricted (no scaling), matching how the paper's dotted lines take
    over only beyond the measured range.
    """
    require_positive("cores", cores)
    if cores <= base.cores:
        return base.with_cores(cores)
    if not isinstance(base.internal_bw, SaturatingCurve):
        raise ConfigurationError(
            "extrapolation requires a SaturatingCurve internal-bandwidth model"
        )
    growth = cores / base.cores
    return replace(
        base,
        cores=cores,
        llc_bytes=int(base.llc_bytes * growth * growth),
        internal_bw=base.internal_bw.linearised(),
    )
