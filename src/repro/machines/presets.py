"""The three CPUs of Table 2 as MachineSpec presets.

Calibration notes (how ``flops_per_cycle_per_core`` and the internal
bandwidth curves were chosen — each is pinned by a number the paper itself
reports):

**Intel i9-10900K** (Comet Lake, AVX2).
    Peak fp32 per core is 32 FLOP/cycle (2x 8-wide FMA); at the 3.7 GHz
    all-core clock that is ~118 GF/core, putting 10 cores at ~1184 GFLOP/s —
    Figure 10b's observed plateau is ~1150-1200 GFLOP/s, so we use 30
    FLOP/cycle of sustained rate. The internal-bandwidth curve scales
    ~55 GB/s/core up to a 6-core knee then largely flattens, matching
    Figure 10c (and reproducing the paper's observation that CAKE's DRAM
    bandwidth creeps above optimal only at 9-10 cores).

**AMD Ryzen 9 5950X** (Zen 3).
    Figure 12b reads ~1150-1200 GFLOP/s at 16 cores observed, i.e.
    ~72 GF/core sustained; at 3.4 GHz that is 21 FLOP/cycle. Internal
    bandwidth grows ~50 GB/s per core roughly linearly to 32 threads
    (Figure 12c reaches ~1600 GB/s), so the curve never saturates in range.

**ARM v8 Cortex-A53** (in-order, 64-bit NEON).
    The A53 retires at most 2 fp32 MACs/cycle; the paper's single-core
    observed throughput is ~1.4 GFLOP/s at a typical 1.4 GHz part, i.e.
    2 sustained FLOP/cycle once load/store pressure on the tiny L1 is
    folded in. DRAM is a single 32-bit LPDDR channel (2 GB/s peak,
    ``dram_efficiency=0.80``) whose *physical* traffic under GEMM is
    ~4.5x the counted operand traffic (``external_traffic_factor``; the
    16 KiB L1 forces constant line refills) — together these cap
    ARMPL/GOTO near 2 cores as in Figure 11b. The shared 512 KiB L2 is
    the LLC (no L3); its bandwidth is flat beyond 2 cores per Figure 11c,
    which is what bends CAKE's DRAM usage above optimal at 3-4 cores in
    Figure 11a.

The two traffic factors (``internal_traffic_factor``,
``external_traffic_factor``) convert counted operand movement into the
physical traffic hardware counters report; see
:class:`repro.machines.spec.MachineSpec`. Desktop values ~1.5 (external)
are pinned by the paper's Intel observations: CAKE ~4.5 GB/s observed vs
~3 GB/s of counted operands, MKL ~25 GB/s vs ~16.5 counted.
"""

from __future__ import annotations

from typing import Callable

from repro.machines.internal_bw import SaturatingCurve
from repro.machines.spec import MachineSpec
from repro.util.units import BYTES_PER_GIB, BYTES_PER_KIB, BYTES_PER_MIB


def intel_i9_10900k() -> MachineSpec:
    """Intel i9-10900K: 10 cores, 20 MiB LLC, 40 GB/s DRAM (Table 2)."""
    return MachineSpec(
        name="Intel i9-10900K",
        cores=10,
        clock_hz=3.7e9,
        flops_per_cycle_per_core=30.0,
        l1_bytes=32 * BYTES_PER_KIB,
        l2_bytes=256 * BYTES_PER_KIB,
        llc_bytes=20 * BYTES_PER_MIB,
        dram_bytes=32 * BYTES_PER_GIB,
        dram_gb_per_s=40.0,
        dram_efficiency=0.95,
        mr=6,
        nr=16,
        internal_bw=SaturatingCurve(
            per_core_gb_per_s=55.0, knee_cores=6, post_knee_fraction=0.3
        ),
        internal_traffic_factor=11.0,
        external_traffic_factor=1.5,
    )


def amd_ryzen_9_5950x() -> MachineSpec:
    """AMD Ryzen 9 5950X: 16 cores, 64 MiB LLC, 47 GB/s DRAM (Table 2)."""
    return MachineSpec(
        name="AMD Ryzen 9 5950X",
        cores=16,
        clock_hz=3.4e9,
        flops_per_cycle_per_core=21.0,
        l1_bytes=32 * BYTES_PER_KIB,
        l2_bytes=512 * BYTES_PER_KIB,
        llc_bytes=64 * BYTES_PER_MIB,
        dram_bytes=128 * BYTES_PER_GIB,
        dram_gb_per_s=47.0,
        dram_efficiency=0.95,
        mr=6,
        nr=16,
        internal_bw=SaturatingCurve(
            per_core_gb_per_s=50.0, knee_cores=32, post_knee_fraction=1.0
        ),
        internal_traffic_factor=10.0,
        external_traffic_factor=1.5,
    )


def arm_cortex_a53() -> MachineSpec:
    """ARM v8 Cortex-A53: 4 cores, shared 512 KiB L2 as LLC, 2 GB/s DRAM."""
    return MachineSpec(
        name="ARM v8 Cortex-A53",
        cores=4,
        clock_hz=1.4e9,
        flops_per_cycle_per_core=2.0,
        l1_bytes=16 * BYTES_PER_KIB,
        l2_bytes=512 * BYTES_PER_KIB,
        llc_bytes=512 * BYTES_PER_KIB,
        llc_is_l2=True,
        dram_bytes=1 * BYTES_PER_GIB,
        dram_gb_per_s=2.0,
        dram_efficiency=0.80,
        dram_latency_cycles=180,
        mr=8,
        nr=12,
        internal_bw=SaturatingCurve(
            per_core_gb_per_s=9.0, knee_cores=2, post_knee_fraction=0.05
        ),
        internal_traffic_factor=22.0,
        external_traffic_factor=4.5,
    )


_PRESETS: dict[str, Callable[[], MachineSpec]] = {
    "intel-i9-10900k": intel_i9_10900k,
    "amd-ryzen-9-5950x": amd_ryzen_9_5950x,
    "arm-cortex-a53": arm_cortex_a53,
}

PRESET_NAMES: tuple[str, ...] = tuple(_PRESETS)


def preset(name: str) -> MachineSpec:
    """Look up a preset by its kebab-case name.

    >>> preset("intel-i9-10900k").cores
    10
    """
    try:
        return _PRESETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown machine preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None
