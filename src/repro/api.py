"""Top-level convenience API.

Most users want exactly one call: multiply two matrices with the CAKE
discipline on a modelled machine and look at the throughput/bandwidth
report. These wrappers construct the engine, run it, and hand back the
:class:`~repro.gemm.result.GemmRun`.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.backends import Backend
from repro.gemm.cake import CakeGemm
from repro.gemm.goto import GotoGemm
from repro.gemm.result import GemmRun
from repro.gemm.sharded import ShardConfig
from repro.gemm.verify import VerifyConfig
from repro.machines.presets import intel_i9_10900k
from repro.machines.spec import MachineSpec
from repro.runtime.executor import RetryPolicy
from repro.serve.server import MultiplyServer


def serve(
    machine: MachineSpec | None = None,
    *,
    capacity: int = 64,
    executors: int = 2,
    max_batch: int = 8,
    cores: int | None = None,
    default_deadline: float | None = None,
    retry_policy: RetryPolicy | None = None,
    tune: object = False,
    workers: int = 1,
) -> MultiplyServer:
    """A **started** multiply server (GEMM-as-a-service front door).

    Convenience constructor over
    :class:`~repro.serve.server.MultiplyServer` — admission-controlled
    bounded queue, per-request deadlines, shape-class batching with
    shared plan/buffer reuse, content-seeded retry with backoff, and a
    graceful degradation ladder, all over the same engines
    :func:`cake_matmul` uses (responses are bit-identical to direct
    calls). Use as a context manager or call ``stop()`` when done::

        with serve(default_deadline=0.5) as server:
            handle = server.submit(a, b)
            run = handle.result()

    ``tune=True`` (or a :class:`~repro.tune.TuneConfig`) resolves each
    shape class's plan through the persistent plan cache, tuning cold
    classes on background threads off the request path — see
    :mod:`repro.tune`.

    ``workers > 1`` returns a started
    :class:`~repro.serve.fleet.FleetServer` instead: that many
    supervised worker *processes* (each a full ``MultiplyServer``) with
    heartbeat liveness, capped-backoff restarts and crash-safe
    re-dispatch — the same ``submit``/``multiply``/``stats`` surface,
    the same bit-identity contract, surviving worker death.
    """
    if workers > 1:
        if tune:
            raise ValueError(
                "tune is per-process state; run the plan autotuner in "
                "the single-server mode (workers=1)"
            )
        from repro.serve.fleet import FleetServer

        return FleetServer(
            machine,
            workers=workers,
            capacity=capacity,
            worker_capacity=capacity,
            executors=executors,
            max_batch=max_batch,
            cores=cores,
            default_deadline=default_deadline,
            retry_policy=retry_policy,
        ).start()
    return MultiplyServer(
        machine,
        capacity=capacity,
        executors=executors,
        max_batch=max_batch,
        cores=cores,
        default_deadline=default_deadline,
        retry_policy=retry_policy,
        tune=tune,
    ).start()


def cake_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    machine: MachineSpec | None = None,
    cores: int | None = None,
    alpha: float | None = None,
    workers: int | None = None,
    verify: bool | VerifyConfig = False,
    backend: str | Backend | None = None,
    processes: int | ShardConfig | None = None,
    tuned: object = None,
) -> GemmRun:
    """Multiply ``a @ b`` with the CAKE engine.

    Parameters
    ----------
    a, b:
        2-D operands with matching inner dimension (any memory layout).
    machine:
        Platform model (default: the Intel i9-10900K of Table 2).
    cores:
        Cores to use (default: all the machine has).
    alpha:
        CB aspect factor; ``None`` derives it from DRAM bandwidth per
        Section 3.2.
    workers:
        Host threads for numeric execution (default: serial). The
        product is bit-identical for any worker count.
    verify:
        ABFT verified execution (:mod:`repro.gemm.verify`): every block's
        C update is checksum-validated and self-healed on mismatch, or
        :class:`~repro.gemm.verify.NumericFaultError` is raised with the
        faulting block's coordinates. ``True`` for defaults, a
        :class:`~repro.gemm.verify.VerifyConfig` to tune. A clean
        verified run returns bit-identical ``c`` and counters.
    backend:
        Compute backend (:mod:`repro.gemm.backends`): a registered name
        (``"numpy"``, ``"blas-group"``, ``"torch"``) or a
        :class:`~repro.gemm.backends.Backend` instance. Default is the
        per-strip numpy oracle. ``verify=True`` plus a non-oracle
        backend is the headline ABFT scenario: the fast path is
        checksum-validated and healed through the trusted oracle rung.
    processes:
        Worker *processes* for numeric execution
        (:mod:`repro.gemm.sharded`): the CB block grid is partitioned
        into a near-square shard grid, packed operands are shared
        zero-copy through ``multiprocessing.shared_memory``, and each
        shard runs the threaded executor in its own process. The
        product is bit-identical to the serial path for every
        (processes x workers x backend) combination; ``run.shards``
        reports the grid, per-shard timers, and measured inter-process
        bytes against the communication lower bound.
    tuned:
        Resolve the plan through the autotuner's persistent cache
        (:mod:`repro.tune`): ``True`` for the process default
        :class:`~repro.tune.TuneConfig`, or pass one; ``False`` is
        explicitly off, and the default ``None`` follows the
        process-wide switch (:func:`repro.tune.set_default_tune`,
        i.e. ``cake-bench --tuned``). A cold shape
        tunes synchronously once; later calls (and later processes) hit
        the cache. Tuned results are bit-identical to analytic ones —
        validation rejects any candidate that is not.

    Returns
    -------
    GemmRun
        ``run.c`` is the product; ``run.gflops`` / ``run.dram_gb_per_s``
        are the modelled metrics; ``run.verify`` the ABFT accounting
        when verification ran; ``run.backend`` the backend that
        executed.
    """
    machine = intel_i9_10900k() if machine is None else machine
    return CakeGemm(
        machine, cores=cores, alpha=alpha, workers=workers, verify=verify,
        backend=backend, processes=processes, tuned=tuned,
    ).multiply(a, b)


def goto_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    machine: MachineSpec | None = None,
    cores: int | None = None,
    workers: int | None = None,
    verify: bool | VerifyConfig = False,
    backend: str | Backend | None = None,
    processes: int | ShardConfig | None = None,
    tuned: object = None,
) -> GemmRun:
    """Multiply ``a @ b`` with the GOTO baseline engine (MKL/ARMPL model).

    Same contract as :func:`cake_matmul` (minus ``alpha``), including
    the ``backend``, ``processes``, and ``tuned`` selectors (GOTO
    shards over its ``mc``-strip rows and ``nc``-panel columns).
    """
    machine = intel_i9_10900k() if machine is None else machine
    return GotoGemm(
        machine, cores=cores, workers=workers, verify=verify,
        backend=backend, processes=processes, tuned=tuned,
    ).multiply(a, b)
