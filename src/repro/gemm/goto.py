"""The GOTO baseline engine (Goto's algorithm, Section 4.1).

Stands in for Intel MKL, ARM Performance Libraries and OpenBLAS — the
paper models all three as GOTO. Loop structure (Figure 5):

* outer loop over ``nc``-wide column panels of C (B panel resident in
  the LLC),
* middle loop over ``kc``-deep reduction slices,
* inner loop over waves of ``p`` square ``mc x kc`` A sub-blocks, one per
  core's L2; each core computes its own ``mc x nc`` partial C panel.

The defining contrast with CAKE: **partial C panels stream to DRAM** after
every slice and stream back for the next one, so external traffic carries
a ``(2*Kb - 1) * M * N`` partial-result term that grows with core count in
bandwidth terms — Section 4.1's ``BW_GOTO >= p``-scaling. Also unlike
CAKE, the M dimension is carved into *fixed* ``mc`` strips, so when
``M < p * mc`` some cores simply idle (visible as the flattened MKL
speedup for small matrices in Figure 9a).
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigurationError
from repro.gemm.backends import Backend, resolve_backend
from repro.gemm.counters import TrafficCounters
from repro.gemm.parallel import (
    PhaseTimers,
    StripGroup,
    StripTask,
    check_multiply_operands,
    resolve_workers,
    run_strip_groups,
)
from repro.gemm.plan import GotoPlan, PlanOverride
from repro.gemm.result import GemmRun, degenerate_run
from repro.gemm.verify import (
    GroupVerifier,
    VerifyConfig,
    VerifyReport,
    resolve_verify,
)
from repro.gemm.sharded import (
    ShardConfig,
    plan_shards,
    resolve_shards,
    run_sharded,
)
from repro.machines.spec import MachineSpec
from repro.packing.cost import packing_cost
from repro.packing.pack import pack_a_goto, pack_b_goto
from repro.packing.pool import BufferPool, SharedBufferPool
from repro.perfmodel.roofline import ZERO_TIME, block_time
from repro.schedule.space import ComputationSpace
from repro.util import split_length


class GotoGemm:
    """GOTO matrix-multiplication engine for one machine.

    Parameters mirror :class:`~repro.gemm.cake.CakeGemm` minus ``alpha``
    (GOTO has no bandwidth-adaptive parameter — that is the point).
    Numeric execution shares CAKE's executor
    (:mod:`repro.gemm.parallel`): ``workers`` threads fan out over the
    ``mc``-strip slabs of each ``(nc, kc)`` slice, preserving the
    N-then-M loop order and bit-identical numerics.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        cores: int | None = None,
        exact_tiles: bool = False,
        exact_walk: bool = False,
        workers: int | None = None,
        exact_pack: bool = False,
        verify: bool | VerifyConfig = False,
        backend: "str | Backend | None" = None,
        processes: "int | ShardConfig | None" = None,
        pool: "BufferPool | None" = None,
        plan: "PlanOverride | None" = None,
        tuned: object = None,
    ) -> None:
        self.machine = machine
        self.cores = cores
        self.exact_tiles = exact_tiles
        self.exact_walk = exact_walk
        self.workers = resolve_workers(workers)
        self._workers_explicit = workers is not None
        # Same autotuner seam as CakeGemm: an explicit PlanOverride
        # replaces mc/kc/nc after derivation (schedule/strips have no
        # GOTO meaning and are ignored); tuned= consults the plan cache.
        self.override = plan
        self.tuned = tuned
        if plan is not None and tuned:
            raise ConfigurationError(
                "plan= and tuned= are mutually exclusive: an explicit "
                "override already decides the plan"
            )
        self.exact_pack = exact_pack
        self.verify = resolve_verify(verify)
        self.backend = resolve_backend(backend)
        self.shards = resolve_shards(processes)
        if self.shards is not None and self.exact_pack:
            raise ConfigurationError(
                "processes > 1 is incompatible with exact_pack: shard "
                "workers rebuild the vectorized pack's buffer grid over "
                "shared memory, which the loop oracle does not produce"
            )
        # Same sharing hook as CakeGemm: a caller-supplied pool spans
        # engines (the serve batcher's per-class reuse); None stays
        # private.
        self._pool = BufferPool() if pool is None else pool

    # -- public API ----------------------------------------------------------

    def plan_for(self, m: int, n: int, k: int) -> GotoPlan:
        """The plan this engine would use for an ``m x k . k x n`` product."""
        return GotoPlan.from_problem(
            self.machine,
            ComputationSpace(m, n, k),
            cores=self.cores,
            override=self.override,
        )

    def _tuned_override(
        self, space: ComputationSpace, dtype: np.dtype
    ) -> "PlanOverride | None":
        """The override for this multiply: explicit, tuned, or none."""
        if self.override is not None:
            return self.override
        tuned = self.tuned
        if tuned is None:  # defer to the process default (--tuned)
            from repro.tune import get_default_tune  # lazy: pkg cycle

            tuned = get_default_tune()
        if not tuned:
            return None
        from repro.tune import tuned_override  # lazy: pkg cycle

        return tuned_override(
            self.machine,
            engine="goto",
            space=space,
            dtype=dtype,
            cores=self.cores,
            backend=self.backend.name,
            processes=self.shards.processes if self.shards is not None else 1,
            config=None if tuned is True else tuned,
        )

    def multiply(self, a: np.ndarray, b: np.ndarray) -> GemmRun:
        """Compute ``A x B``, returning numerics plus full accounting.

        Same operand contract as :meth:`CakeGemm.multiply`: any layout
        is packed with a single copy, integer dtypes are rejected, and
        float32 stays float32.
        """
        dtype = check_multiply_operands(a, b, backend=self.backend)
        m, k, n = a.shape[0], a.shape[1], b.shape[1]
        if m == 0 or n == 0 or k == 0:
            return degenerate_run(
                "goto", self.machine, m, n, k, dtype,
                cores=self.cores or self.machine.cores,
                workers=self.workers,
                backend=self.backend.name,
            )
        space = ComputationSpace(m, n, k)
        return self._run(space, a=a, b=b)

    def analyze(self, m: int, n: int, k: int) -> GemmRun:
        """Traffic and timing accounting only — no numerical execution.

        Runs the vectorized batch analyzer by default
        (:func:`repro.analysis.batch.analyze_goto_batch`, bit-identical
        to the loop nest); ``exact_walk=True`` forces the scalar nest.
        """
        if self.exact_walk:
            return self._run(ComputationSpace(m, n, k))
        from repro.analysis.batch import analyze_goto_batch  # lazy: pkg cycle

        return analyze_goto_batch(
            self.machine,
            ComputationSpace(m, n, k),
            cores=self.cores,
            plan=self.plan_for(m, n, k) if self.override is not None else None,
        )

    # -- the loop nest ---------------------------------------------------------

    def _run(
        self,
        space: ComputationSpace,
        a: np.ndarray | None = None,
        b: np.ndarray | None = None,
    ) -> GemmRun:
        machine = self.machine
        numeric = a is not None
        override = self.override
        if numeric:
            assert b is not None
            override = self._tuned_override(space, np.result_type(a, b))
        plan = GotoPlan.from_problem(
            machine, space, cores=self.cores, override=override
        )
        run_workers = self.workers
        if (
            override is not None
            and override.workers is not None
            and not self._workers_explicit
        ):
            run_workers = resolve_workers(override.workers)
        kernel = plan.kernel

        shards = self.shards if numeric else None
        verifying = numeric and self.verify is not None and self.verify.enabled
        timers = PhaseTimers()
        arena: SharedBufferPool | None = None
        if numeric:
            assert b is not None
            # Sharded runs pack into a shared-memory arena (workers
            # attach the segments zero-copy) and compute checksum
            # material inside each shard instead of at pack time.
            arena = SharedBufferPool() if shards is not None else None
            pool = arena if arena is not None else self._pool
            pack_start = time.perf_counter()
            packed_a = pack_a_goto(
                a, plan.mc, plan.kc,
                pool=pool, exact=self.exact_pack,
                checksums=verifying and shards is None,
            )
            packed_b = pack_b_goto(
                b, plan.kc, plan.nc,
                pool=pool, exact=self.exact_pack,
                checksums=verifying and shards is None,
            )
            timers.pack_seconds = time.perf_counter() - pack_start
            dtype = np.result_type(a, b)
            if arena is not None:
                c = arena.lease((space.m, space.n), dtype)
                c[...] = 0
            else:
                c = np.zeros((space.m, space.n), dtype=dtype)
        else:
            packed_a = packed_b = None
            c = None
        build_groups = numeric and shards is None
        groups: list[StripGroup] = []
        # A slice-group's column checksum spans every mc-strip of A at
        # that ki; identical for all ni, so summed once per ki. The
        # concatenated A operand and its magnitude sums are likewise
        # shared by every ni at that ki.
        cs_a_by_ki: dict[int, np.ndarray] = {}
        a_full_by_ki: dict[int, np.ndarray] = {}
        mag_a_by_ki: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        counters = TrafficCounters()
        counters.ext_pack = 2 * (space.m * space.k + space.k * space.n)
        pack = packing_cost(machine, space.m * space.k, space.k * space.n)
        counters.macs = space.macs

        m_strips = split_length(space.m, min(plan.mc, space.m))
        n_sizes = split_length(space.n, min(plan.nc, space.n))
        k_sizes = split_length(space.k, min(plan.kc, space.k))
        m_offsets = _offsets(m_strips)
        n_offsets = _offsets(n_sizes)
        k_offsets = _offsets(k_sizes)

        total = ZERO_TIME
        bound_blocks: dict[str, int] = {"compute": 0, "external": 0, "internal": 0}
        last_slice = len(k_sizes) - 1

        for ni, nc_actual in enumerate(n_sizes):
            for ki, kc_actual in enumerate(k_sizes):
                b_el = kc_actual * nc_actual
                counters.ext_b_read += b_el
                b_pending = b_el  # charged to the first wave of this panel
                # One strip group per (nc, kc) slice: every mc-strip of the
                # slice updates a disjoint C row panel, so all waves'
                # strips may run concurrently; the cross-slice barrier
                # keeps each C element's accumulation order identical to
                # the serial nest.
                tasks: list[StripTask] = []

                # Waves of p strips: cores beyond the remaining strip count idle.
                for wave_start in range(0, len(m_strips), plan.cores):
                    wave = m_strips[wave_start : wave_start + plan.cores]
                    active = len(wave)
                    wave_rows = sum(wave)

                    a_el = wave_rows * kc_actual
                    counters.ext_a_read += a_el

                    c_el = wave_rows * nc_actual
                    if ki == last_slice:
                        counters.ext_c_write += c_el
                    else:
                        counters.ext_c_spill += c_el
                    c_read_el = c_el if ki > 0 else 0
                    counters.ext_c_read += c_read_el

                    cycles = kernel.panel_tile_cycles(
                        max(wave), nc_actual, kc_actual
                    )
                    counters.tile_cycles += cycles

                    internal = a_el + active * b_el + 2 * c_el
                    counters.internal += internal

                    ext_bytes = (
                        a_el + b_pending + c_el + c_read_el
                    ) * machine.element_bytes
                    b_pending = 0
                    bt = block_time(
                        machine,
                        active_cores=active,
                        tile_cycles=cycles,
                        kc=plan.kc,
                        ext_bytes=ext_bytes,
                        int_elements=internal,
                    )
                    total = total + bt
                    bound_blocks[bt.bound] += 1

                    if build_groups:
                        assert (
                            packed_a is not None
                            and packed_b is not None
                            and c is not None
                        )
                        b_panel = packed_b.panel(ki, ni)
                        n0 = n_offsets[ni]
                        for lane, rows in enumerate(wave):
                            strip = wave_start + lane
                            m0 = m_offsets[strip]
                            tasks.append(
                                StripTask(
                                    packed_a.block(strip, ki),
                                    b_panel,
                                    c[m0 : m0 + rows, n0 : n0 + nc_actual],
                                )
                            )
                if build_groups:
                    assert packed_a is not None and packed_b is not None
                    cs_a = cs_b = a_full = mag_a = mag_b = None
                    # The concatenated A operand serves two consumers: the
                    # verifier's group checksum check, and whole-group
                    # backends, which multiply it in a single call.
                    if verifying or self.backend.capabilities.grouped:
                        if ki not in a_full_by_ki:
                            a_full_by_ki[ki] = packed_a.column(
                                ki, pool=self._pool
                            )
                        a_full = a_full_by_ki[ki]
                    if verifying:
                        if ki not in cs_a_by_ki:
                            acc = packed_a.checksum(0, ki).copy()
                            for strip in range(1, len(m_strips)):
                                acc += packed_a.checksum(strip, ki)
                            cs_a_by_ki[ki] = acc
                            col_acc = packed_a.magnitude(0, ki)[0].copy()
                            row_parts = [packed_a.magnitude(0, ki)[1]]
                            for strip in range(1, len(m_strips)):
                                s_col, s_row = packed_a.magnitude(strip, ki)
                                col_acc += s_col
                                row_parts.append(s_row)
                            mag_a_by_ki[ki] = (
                                col_acc, np.concatenate(row_parts)
                            )
                        cs_a = cs_a_by_ki[ki]
                        cs_b = packed_b.checksum(ki, ni)
                        mag_a = mag_a_by_ki[ki]
                        mag_b = packed_b.magnitude(ki, ni)
                    groups.append(
                        StripGroup(
                            tasks=tasks,
                            index=len(groups),
                            coord=(ni, ki),
                            label=f"goto slice (ni={ni}, ki={ki})",
                            checksum_a=cs_a,
                            checksum_b=cs_b,
                            panel=c[
                                :, n_offsets[ni] : n_offsets[ni] + nc_actual
                            ],
                            fresh_panel=ki == 0,
                            operand_a=a_full,
                            mag_a=mag_a,
                            mag_b=mag_b,
                        )
                    )

        report = None
        shard_report = None
        if numeric:
            assert packed_a is not None and packed_b is not None
            if shards is not None:
                assert arena is not None and c is not None
                try:
                    shard_plan = plan_shards(
                        shards.processes, m_strips, n_sizes, space.k
                    )
                    counters.ipc_bytes = (
                        shard_plan.ipc_elements * machine.element_bytes
                    )
                    shard_report, report = run_sharded(
                        engine="goto",
                        dims={
                            "m": space.m,
                            "n": space.n,
                            "k": space.k,
                            "mc": plan.mc,
                            "kc": plan.kc,
                            "nc": plan.nc,
                            "mr": machine.mr,
                            "nr": machine.nr,
                        },
                        plan=shard_plan,
                        packed_a=packed_a,
                        packed_b=packed_b,
                        pool=arena,
                        c=c,
                        config=shards,
                        workers=run_workers,
                        backend=self.backend.name,
                        verify=self.verify,
                        exact_tiles=self.exact_tiles,
                        timers=timers,
                        element_bytes=machine.element_bytes,
                    )
                    c = c.copy()  # off the arena before it is destroyed
                finally:
                    arena.destroy()
            else:
                verifier = faults = None
                if self.verify is not None:
                    if self.verify.inject is not None:
                        from repro.runtime.faults import NumericFaultInjector

                        faults = NumericFaultInjector(self.verify.inject)
                    if verifying:
                        report = VerifyReport(
                            checksum_elements=packed_a.checksum_elements
                            + packed_b.checksum_elements
                        )
                        verifier = GroupVerifier(self.verify, report, timers)
                run_strip_groups(
                    groups,
                    kernel,
                    workers=run_workers,
                    exact_tiles=self.exact_tiles,
                    timers=timers,
                    verifier=verifier,
                    faults=faults,
                    backend=self.backend.create(
                        kernel=kernel, exact_tiles=self.exact_tiles
                    ),
                )
                packed_a.release_to(self._pool)
                packed_b.release_to(self._pool)
                # Single-strip columns are zero-copy views into the pack
                # buffers (released above); only multi-strip concatenations
                # were leased.
                if a_full_by_ki and packed_a.strips > 1:
                    self._pool.release(*a_full_by_ki.values())

        plan_summary = {
            "mc": plan.mc,
            "kc": plan.kc,
            "nc": plan.nc,
            "m_strips": len(m_strips),
        }
        if override is not None:
            plan_summary["override"] = override.as_dict()
        return GemmRun(
            engine="goto",
            machine=machine,
            space=space,
            cores=plan.cores,
            counters=counters,
            time=total,
            packing_seconds=pack.seconds,
            bound_blocks=bound_blocks,
            plan_summary=plan_summary,
            c=c,
            workers=run_workers if numeric else 1,
            backend=self.backend.name if numeric else "numpy",
            phase_seconds=timers.as_dict() if numeric else None,
            verify=report,
            processes=shard_report.processes if shard_report is not None else 1,
            shards=shard_report,
        )


def _offsets(sizes: list[int]) -> list[int]:
    out = [0]
    for s in sizes[:-1]:
        out.append(out[-1] + s)
    return out
