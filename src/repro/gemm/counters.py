"""Traffic counters shared by the engines.

Every engine tallies external (DRAM) traffic by operand and direction, and
logical internal (LLC-to-cores) traffic, in *elements*. Byte conversions
happen at reporting time with the machine's element width. The categories
mirror :class:`repro.schedule.reuse.ReuseReport` so executor-counted
traffic can be cross-checked against the schedule analyzer in tests.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class TrafficCounters:
    """External and internal operand traffic, in elements.

    Attributes
    ----------
    ext_a_read, ext_b_read:
        Input-surface elements fetched from DRAM.
    ext_c_write:
        Completed-result elements written back to DRAM.
    ext_c_spill, ext_c_read:
        Partial-result elements written back before completion and
        fetched again (zero for CAKE's K-first schedule by construction;
        the dominant cost for GOTO at large K).
    ext_pack:
        Packing traffic (each packed element read + written once).
    internal:
        Logical LLC-to-core elements moved (A loads, per-core B streams,
        partial-C read+write).
    tile_cycles:
        Critical-path model cycles across all blocks (the most-loaded
        core's tile count per block, summed).
    macs:
        Multiply-accumulate operations actually executed.
    ipc_bytes:
        Inter-process traffic of a process-sharded run
        (:mod:`repro.gemm.sharded`), in **bytes**: the packed A/B panel
        surface each shard worker attaches plus the C panel it writes
        back, derived deterministically from the shard plan (never
        measured from the OS). Zero for in-process runs, so equality of
        serial and sharded counters is checked via :meth:`without_ipc`.
    """

    ext_a_read: int = 0
    ext_b_read: int = 0
    ext_c_write: int = 0
    ext_c_spill: int = 0
    ext_c_read: int = 0
    ext_pack: int = 0
    internal: int = 0
    tile_cycles: float = 0.0
    macs: int = 0
    ipc_bytes: int = 0

    @property
    def ext_compute_elements(self) -> int:
        """External elements moved during compute (excludes packing)."""
        return (
            self.ext_a_read
            + self.ext_b_read
            + self.ext_c_write
            + self.ext_c_spill
            + self.ext_c_read
        )

    @property
    def ext_total_elements(self) -> int:
        """All external elements, packing included."""
        return self.ext_compute_elements + self.ext_pack

    def ext_total_bytes(self, element_bytes: int) -> int:
        """All external traffic in bytes."""
        return self.ext_total_elements * element_bytes

    def merge(self, other: "TrafficCounters") -> None:
        """Accumulate ``other`` into ``self`` in place."""
        self.ext_a_read += other.ext_a_read
        self.ext_b_read += other.ext_b_read
        self.ext_c_write += other.ext_c_write
        self.ext_c_spill += other.ext_c_spill
        self.ext_c_read += other.ext_c_read
        self.ext_pack += other.ext_pack
        self.internal += other.internal
        self.tile_cycles += other.tile_cycles
        self.macs += other.macs
        self.ipc_bytes += other.ipc_bytes

    def without_ipc(self) -> "TrafficCounters":
        """A copy with :attr:`ipc_bytes` zeroed.

        The schedule-derived tallies of a process-sharded run must equal
        the serial walk's exactly; only the IPC surface differs. Tests
        and benches compare ``run.counters.without_ipc() ==
        serial.counters`` to assert that.
        """
        return TrafficCounters(
            ext_a_read=self.ext_a_read,
            ext_b_read=self.ext_b_read,
            ext_c_write=self.ext_c_write,
            ext_c_spill=self.ext_c_spill,
            ext_c_read=self.ext_c_read,
            ext_pack=self.ext_pack,
            internal=self.internal,
            tile_cycles=self.tile_cycles,
            macs=self.macs,
        )
