"""ABFT checksum verification and self-healing execution.

Nothing in a fast numeric path proves the ``C`` it produced is actually
the product — a soft error, a misbehaving thread, or a buggy fast path
corrupts silently. This module adds classic algorithm-based fault
tolerance (Huang & Abraham) at exactly the granule CAKE already exposes:
the CB block / strip group of the executor.

The identities
--------------

For every strip group the executor runs (one CB block for CAKE, one
``(nc, kc)`` slice for GOTO), the group updates a C row panel by
``C += A_g @ B_g``. Two checksum identities must then hold:

* **column**: ``colsum(C_after) - colsum(C_before) = colsum(A_g) @ B_g``,
  where ``colsum`` sums over rows. ``colsum(A_g)`` is the pack-time
  column checksum of the packed A block(s) — computed once and reused
  every time the block participates in a group.
* **row** (per strip): ``rowsum(C_after) - rowsum(C_before) =
  A_s @ rowsum(B_g)``, where ``rowsum`` sums over columns and
  ``rowsum(B_g)`` is the pack-time row checksum of the packed B panel.
  The row identity localizes a mismatch to one strip.

Verifying a group costs ``O(mk + kn + mn)`` against the ``O(mkn)`` it
checks — asymptotically free, and measured end-to-end by
``benchmarks/bench_verify_overhead.py``. To keep the constant small the
verifier caches each C panel's column/row sums between the groups that
accumulate into it (:class:`_PanelState`): the sums it computed to
verify group ``g`` *are* the "before" sums of group ``g+1`` on the same
panel, so steady-state verification touches the panel only twice (one
colsum pass, one rowsum pass) instead of re-deriving before/after
magnitudes from scratch.

Tolerance model
---------------

Checksummed and direct accumulations associate differently, so the two
sides differ by rounding noise. The verifier bounds that noise with a
dtype-aware band: ``atol + rtol * ref`` where ``ref`` is a running
*absolute-value* bound — each group adds its update magnitude to the
panel's accumulated bound, which keeps the band honest under
cancellation without re-scanning ``|C|`` every group. The update
magnitudes come from **pack-time** ``|A|``/``|B|`` axis sums
(:mod:`repro.packing.pack` magnitudes), so the per-group band is
O(m + n) vector arithmetic; groups built without magnitudes fall back
to an exact ``|A| @ |B|`` scan. ``rtol`` defaults to
``8 * eps * (m + k + 2)`` for the group's extents in the accumulation
dtype. Non-finite values
(inf/NaN from a flipped exponent bit) always count as mismatches —
comparisons are written so NaN fails them.

The recovery ladder
-------------------

On mismatch, recovery runs **inside the group barrier** (the executor
calls the verifier before the next group starts), so healing is
bit-deterministic for any worker count:

1. restore the group's pre-group C panel — by zero-filling and
   replaying the panel's verified group history (bit-exact, since every
   accepted group's bits equal a clean run's; replay restore is only
   used with the deterministic oracle backend — other backends take
   real snapshots for non-fresh panels) or, for a panel first seen
   mid-accumulation, from the copy taken at dispatch — then recompute
   the group inline through the *same* backend calls the clean path
   issued, up to ``max_retries`` times: a transient fault does not
   recur, and a reproducible backend's recomputed bits equal the clean
   run's exactly;
2. restore and recompute through the **oracle path**: per-strip
   micro-kernel arithmetic with operand checks enabled and fault
   injection bypassed (bit-exact for the oracle backend; the trusted
   reference product for any other — this is the rung that makes a
   *fast untrusted backend* safe to run verified);
3. raise :class:`NumericFaultError` carrying the block coordinates, the
   failing identity, the strip (when the row identity localized one),
   and the residual/tolerance pair.

Deterministic corruption to drive all three rungs comes from
:class:`repro.runtime.faults.NumericFaultRule`, attached via
:attr:`VerifyConfig.inject`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import CakeError
from repro.gemm.backends.base import Backend, execute_group
from repro.gemm.backends.numpy_backend import NumpyBackend
from repro.util import require_nonnegative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.gemm.microkernel import MicroKernel
    from repro.gemm.parallel import PhaseTimers, StripGroup
    from repro.runtime.faults import NumericFaultInjector, NumericFaultPlan

#: Multiplier on ``eps * (m + k + 2)`` for the default relative band —
#: ~100x above the rounding noise observed for random operands, while
#: still far below any injected corruption kind.
_RTOL_SAFETY = 8.0


def _stack(parts: "Sequence[np.ndarray]") -> np.ndarray:
    """A new contiguous array holding the strips, stacked in order.

    Always copies — snapshots must not alias the live panel, and
    whole-panel reductions on the copy beat per-strip reductions on the
    views by an order of magnitude in call overhead.
    """
    return np.concatenate(parts, axis=0)


class NumericFaultError(CakeError):
    """A strip group failed checksum verification beyond recovery.

    Attributes
    ----------
    label, coord:
        Human-readable block name and the engine's block coordinates
        (``(mi, ni, ki)`` for CAKE, ``(ni, ki)`` for GOTO).
    identity:
        Which checksum identity failed — ``"column"`` or ``"row"``.
    strip:
        Strip index within the group when the row identity localized the
        fault, else ``None``.
    residual, tolerance:
        Worst absolute residual and the tolerance it exceeded.
    """

    def __init__(self, label: str, coord: tuple, failure: "IdentityFailure"):
        self.label = label
        self.coord = coord
        self.identity = failure.identity
        self.strip = failure.strip
        self.residual = failure.residual
        self.tolerance = failure.tolerance
        where = f" (strip {failure.strip})" if failure.strip is not None else ""
        super().__init__(
            f"unrecoverable numeric fault in {label}{where}: "
            f"{failure.identity}-checksum residual {failure.residual:.6g} "
            f"exceeds tolerance {failure.tolerance:.6g}"
        )

    def __reduce__(self):
        # Custom three-argument __init__: the default exception reduce
        # (cls, self.args) cannot rebuild it, which matters once shard
        # workers raise this across a process boundary.
        return (
            NumericFaultError,
            (
                self.label,
                self.coord,
                IdentityFailure(
                    identity=self.identity,
                    strip=self.strip,
                    residual=self.residual,
                    tolerance=self.tolerance,
                ),
            ),
        )


@dataclass(frozen=True, slots=True)
class IdentityFailure:
    """One checksum identity violation, for error reporting."""

    identity: str
    strip: int | None
    residual: float
    tolerance: float


@dataclass(frozen=True, slots=True)
class VerifyConfig:
    """How an engine verifies (and recovers) its numeric output.

    Parameters
    ----------
    enabled:
        Verify every strip group (pack-time checksums + per-group
        identity checks + the recovery ladder). ``False`` with a
        non-``None`` ``inject`` corrupts *without* verification — the
        control case proving what silent corruption looks like.
    max_retries:
        Strip recomputations attempted per mismatched group before
        escalating (rung 1 of the ladder).
    oracle_fallback:
        Whether rung 2 (checked, injection-free recompute) runs before
        raising :class:`NumericFaultError`.
    rtol, atol:
        Override the dtype-aware tolerance band. ``rtol=None`` derives
        ``8 * eps * (m + k + 2)`` per group.
    inject:
        Deterministic strip-output corruption plan
        (:class:`repro.runtime.faults.NumericFaultPlan`).
    """

    enabled: bool = True
    max_retries: int = 2
    oracle_fallback: bool = True
    rtol: float | None = None
    atol: float = 0.0
    inject: "NumericFaultPlan | None" = None

    def __post_init__(self) -> None:
        require_nonnegative("max_retries", self.max_retries)
        require_nonnegative("atol", self.atol)
        if self.rtol is not None and not self.rtol > 0:
            raise ValueError(f"rtol must be > 0, got {self.rtol!r}")


def resolve_verify(verify: "bool | VerifyConfig | None") -> VerifyConfig | None:
    """Normalize an engine's ``verify`` parameter.

    ``None``/``False`` mean no verification machinery at all; ``True``
    means defaults; a :class:`VerifyConfig` passes through (including
    ``enabled=False`` configs that only carry an injection plan).
    """
    if verify is None or verify is False:
        return None
    if verify is True:
        return VerifyConfig()
    if isinstance(verify, VerifyConfig):
        return verify
    raise TypeError(
        f"verify must be a bool or VerifyConfig, got {type(verify).__name__}"
    )


@dataclass(slots=True)
class VerifyReport:
    """What verification observed and did during one run.

    ``checksum_elements`` is the extra operand surface the run carried
    (A column checksums + B row checksums); :meth:`checksum_bytes`
    converts it with the machine's element width so the paper's
    constant-bandwidth claim can be re-checked *with* verification
    overhead included (``GemmRun.dram_bytes_with_verify``).
    """

    blocks: int = 0
    verified: int = 0
    mismatches: int = 0
    retries: int = 0
    retry_recoveries: int = 0
    oracle_recoveries: int = 0
    checksum_elements: int = 0

    def checksum_bytes(self, element_bytes: int) -> int:
        """Checksum surface traffic in bytes (written at pack, read at
        verify — hence the factor of two)."""
        return 2 * self.checksum_elements * element_bytes

    def as_dict(self) -> dict[str, int]:
        """Flat dict for bench rows and JSON emission."""
        return {
            "blocks": self.blocks,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "retries": self.retries,
            "retry_recoveries": self.retry_recoveries,
            "oracle_recoveries": self.oracle_recoveries,
            "checksum_elements": self.checksum_elements,
        }


@dataclass(slots=True)
class _PanelState:
    """Cached sums of one C panel between the groups that update it.

    ``colsum``/``rowsum`` are the panel's exact column/row sums as of
    the last verified group — reusable as the next group's "before"
    sums, because the panel is untouched in between. ``col_mag``/
    ``row_mag`` are running upper bounds on the matching absolute-value
    sums, grown by each verified update's ``|A|``/``|B|`` magnitude.
    """

    colsum: np.ndarray
    rowsum: np.ndarray
    col_mag: np.ndarray
    row_mag: np.ndarray

    @classmethod
    def from_snapshot(cls, snap: np.ndarray) -> "_PanelState":
        """Full-pass sums of a panel seen for the first time."""
        abs_snap = np.abs(snap)
        return cls(
            snap.sum(axis=0),
            snap.sum(axis=1),
            abs_snap.sum(axis=0),
            abs_snap.sum(axis=1),
        )

    @classmethod
    def zeros(cls, m: int, n: int, dtype: np.dtype) -> "_PanelState":
        """The state of a panel known to be all-zero (first update)."""
        zn = np.zeros(n, dtype=dtype)
        zm = np.zeros(m, dtype=dtype)
        # Shared between sum and magnitude: _identity_failure_impl only
        # reads prior vectors, never writes them.
        return cls(zn, zm, zn, zm)


@dataclass(slots=True)
class _Snapshot:
    """Pre-group C panel contents; ``data is None`` means all-zero.

    Fresh panels (first update, still zero-filled) skip the copy —
    restoring them is a zero fill.
    """

    data: np.ndarray | None


class GroupVerifier:
    """Per-group checksum verification plus the recovery ladder.

    One verifier serves one run; the executor calls :meth:`snapshot`
    before a group's strips are submitted and :meth:`check_and_recover`
    at the group barrier. Both run on the orchestrator thread, so the
    verifier needs no locking of its own.
    """

    def __init__(
        self,
        config: VerifyConfig,
        report: VerifyReport,
        timers: "PhaseTimers",
    ) -> None:
        self.config = config
        self.report = report
        self.timers = timers
        self._panels: dict[tuple, _PanelState] = {}
        # Verified groups per panel, in accumulation order. A panel with
        # full history needs no pre-group snapshot copy: restoring it is
        # a zero fill plus a bit-exact replay of these groups (healed
        # groups' accepted bits equal a clean run's, so replaying them
        # once, injection-free, reproduces the pre-group state exactly).
        self._history: dict[tuple, list["StripGroup"]] = {}
        # Reused work buffers (groups verify one at a time, so one
        # buffer per (tag, shape, dtype) suffices). Fresh allocations
        # every group cost more in page faults than the arithmetic.
        self._scratch: dict[tuple, np.ndarray] = {}

    def _scratch_like(
        self, tag: str, shape: tuple, dtype: np.dtype
    ) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf

    # -- executor hooks ------------------------------------------------------

    def snapshot(
        self, group: "StripGroup", backend: "Backend | None" = None
    ) -> "_Snapshot | None":
        """Capture the group's C panel (strips stacked) before it runs.

        Fresh panels and panels whose verified history this verifier
        holds need no copy (``_Snapshot(None)``): their pre-group state
        is reconstructible — zero fill, then replay the history. Only
        panels first seen mid-accumulation pay for a real snapshot.

        History replay is only sound for the deterministic oracle
        backend (replaying a call must reproduce the *accepted* bits —
        an oracle-healed group's bits equal the oracle's, which for a
        non-oracle backend are not the backend's own). With any other
        backend every non-fresh panel takes a real snapshot.
        """
        if group.checksum_a is None:
            return None
        replayable = backend is None or backend.capabilities.deterministic
        if group.fresh_panel or (
            replayable and self._panel_key(group) in self._history
        ):
            return _Snapshot(None)
        start = time.perf_counter()
        if group.panel is not None:
            buf = self._scratch_like(
                "snap", group.panel.shape, group.panel.dtype
            )
            np.copyto(buf, group.panel)
            snap = buf
        else:
            snap = _stack([task.c for task in group.tasks])
        self.timers.verify_seconds += time.perf_counter() - start
        return _Snapshot(snap)

    def check_and_recover(
        self,
        group: "StripGroup",
        snap: "_Snapshot | None",
        kernel: "MicroKernel",
        exact_tiles: bool,
        faults: "NumericFaultInjector | None",
        backend: "Backend | None" = None,
    ) -> None:
        """Verify the group; on mismatch walk the recovery ladder.

        ``backend`` is the backend the clean path executed with; the
        retry rung recomputes through it (a reproducible backend then
        heals transient faults bit-exactly), while the oracle rung always
        recomputes through the checked micro-kernel. ``None`` means the
        oracle executed the group (the pre-backend behaviour).
        """
        if snap is None:
            return
        start = time.perf_counter()
        failure = self._verify_group(group, snap)
        self.timers.verify_seconds += time.perf_counter() - start
        self.report.blocks += 1
        replayable = backend is None or backend.capabilities.deterministic
        if failure is None:
            self.report.verified += 1
            if replayable:
                self._history.setdefault(
                    self._panel_key(group), []
                ).append(group)
            return
        self.report.mismatches += 1
        start = time.perf_counter()
        try:
            self._recover(
                group, snap, kernel, exact_tiles, faults, failure, backend
            )
        finally:
            self.timers.recover_seconds += time.perf_counter() - start
        if replayable:
            self._history.setdefault(self._panel_key(group), []).append(group)

    # -- the recovery ladder -------------------------------------------------

    def _recover(
        self,
        group: "StripGroup",
        snap: "_Snapshot",
        kernel: "MicroKernel",
        exact_tiles: bool,
        faults: "NumericFaultInjector | None",
        failure: IdentityFailure,
        backend: "Backend | None" = None,
    ) -> None:
        if backend is None:
            backend = NumpyBackend(kernel, exact_tiles=exact_tiles)
        for _ in range(self.config.max_retries):
            self._restore(group, snap, kernel, exact_tiles, backend)
            # Recompute through the same backend calls the clean path
            # issued (group-mode stays group-mode): a reproducible
            # backend then reproduces the clean bits exactly.
            execute_group(backend, group, faults)
            self.report.retries += 1
            recheck = self._verify_group(group, snap)
            if recheck is None:
                self.report.verified += 1
                self.report.retry_recoveries += 1
                return
            failure = recheck
        if self.config.oracle_fallback:
            # The oracle rung: per-strip micro-kernel arithmetic with
            # operand checks on and injection bypassed — heals persistent
            # corruption of the fast path. For the oracle backend the
            # recomputed bits equal the clean run's exactly; for other
            # backends they are the trusted oracle's bits (the group's
            # update is then exact-by-construction, re-verified below
            # within the tolerance band).
            self._restore(group, snap, kernel, exact_tiles, backend)
            for task in group.tasks:
                kernel.panel_matmul(
                    task.a, task.b, task.c, exact_tiles=exact_tiles, checked=True
                )
            oracle_failure = self._verify_group(group, snap)
            if oracle_failure is None:
                self.report.verified += 1
                self.report.oracle_recoveries += 1
                return
            failure = oracle_failure
        raise NumericFaultError(group.label, group.coord, failure)

    def _restore(
        self,
        group: "StripGroup",
        snap: "_Snapshot",
        kernel: "MicroKernel",
        exact_tiles: bool,
        backend: "Backend | None" = None,
    ) -> None:
        if snap.data is None:
            # No snapshot was taken: zero the panel and replay its
            # verified history (empty for a fresh panel; always empty
            # for non-oracle backends, whose non-fresh panels take real
            # snapshots). Replay is injection-free — every verified
            # group's accepted bits equal a clean run's, so one
            # unchecked pass reproduces the pre-group state bit-exactly.
            if backend is None:
                backend = NumpyBackend(kernel, exact_tiles=exact_tiles)
            if group.panel is not None:
                group.panel.fill(0)
            else:
                for task in group.tasks:
                    task.c.fill(0)
            for past in self._history.get(self._panel_key(group), []):
                execute_group(backend, past, None)
            return
        if group.panel is not None:
            np.copyto(group.panel, snap.data)
            return
        r0 = 0
        for task in group.tasks:
            rows = task.c.shape[0]
            np.copyto(task.c, snap.data[r0 : r0 + rows])
            r0 += rows

    # -- identity evaluation -------------------------------------------------

    def _band(self, dtype: np.dtype, m: int, k: int) -> tuple[float, float]:
        rtol = self.config.rtol
        if rtol is None:
            rtol = _RTOL_SAFETY * float(np.finfo(dtype).eps) * (m + k + 2)
        return rtol, self.config.atol

    def _verify_group(
        self, group: "StripGroup", snap: "_Snapshot"
    ) -> IdentityFailure | None:
        """Evaluate both identities; cache the panel sums on success."""
        failure, state = self._identity_failure(group, snap)
        if failure is None:
            assert state is not None
            self._panels[self._panel_key(group)] = state
        return failure

    @staticmethod
    def _panel_key(group: "StripGroup") -> tuple:
        # Task C panels are views into the run's output array, built
        # once per schedule, so their (address, shape) identifies the
        # panel across every group that accumulates into it.
        return tuple(
            (task.c.__array_interface__["data"][0], task.c.shape)
            for task in group.tasks
        )

    def _identity_failure(
        self, group: "StripGroup", snap: "_Snapshot"
    ) -> tuple[IdentityFailure | None, "_PanelState | None"]:
        # Corrupted panels may hold inf/NaN; the sums below then warn on
        # purpose-built inputs. The comparisons already treat non-finite
        # as mismatch, so the warnings are pure noise.
        with np.errstate(invalid="ignore", over="ignore"):
            return self._identity_failure_impl(group, snap)

    def _identity_failure_impl(
        self, group: "StripGroup", snap: "_Snapshot"
    ) -> tuple[IdentityFailure | None, "_PanelState | None"]:
        tasks = group.tasks
        b = tasks[0].b
        c_full = (
            group.panel
            if group.panel is not None
            else _stack([task.c for task in tasks])
        )
        if group.operand_a is not None:
            a_full = group.operand_a
        elif len(tasks) == 1:
            a_full = tasks[0].a
        else:
            parts = [task.a for task in tasks]
            rows = sum(part.shape[0] for part in parts)
            a_full = np.concatenate(
                parts,
                axis=0,
                out=self._scratch_like(
                    "a_full", (rows, parts[0].shape[1]), parts[0].dtype
                ),
            )
        m, k = a_full.shape
        rtol, atol = self._band(c_full.dtype, m, k)

        prior = self._panels.get(self._panel_key(group))
        if prior is None:
            if snap.data is None:
                prior = _PanelState.zeros(m, c_full.shape[1], c_full.dtype)
            else:
                prior = _PanelState.from_snapshot(snap.data)

        if group.mag_a is not None and group.mag_b is not None:
            # Pack-time magnitudes: bound the update's column magnitudes
            # by max(|A|-colsum) * |B|-colsum and its row magnitudes by
            # |A|-rowsum * max(|B|-rowsum) — sound upper bounds on
            # colsum(|A||B|) / rowsum(|A||B|), O(m + n) to evaluate.
            col_upd = float(group.mag_a[0].max()) * group.mag_b[0]
            row_upd = group.mag_a[1] * float(group.mag_b[1].max())
        else:
            abs_a = np.abs(
                a_full,
                out=self._scratch_like("abs_a", a_full.shape, a_full.dtype),
            )
            abs_b = np.abs(
                b, out=self._scratch_like("abs_b", b.shape, b.dtype)
            )
            col_upd = abs_a.sum(axis=0) @ abs_b
            row_upd = abs_a @ abs_b.sum(axis=1)

        # Column identity over the whole group.
        col_after = c_full.sum(axis=0)
        col_mag = prior.col_mag + col_upd
        residual = (col_after - prior.colsum) - group.checksum_a @ b
        bad = self._worst(residual, atol + rtol * col_mag)
        if bad is not None:
            return IdentityFailure("column", None, bad[1], bad[2]), None

        # Row identity over all strips at once; a failing row localizes
        # to the strip that owns it.
        row_after = c_full.sum(axis=1)
        row_mag = prior.row_mag + row_upd
        cs_b = group.checksum_b
        if cs_b is not None:
            residual = (row_after - prior.rowsum) - a_full @ cs_b
            bad = self._worst(residual, atol + rtol * row_mag)
            if bad is not None:
                strip = self._strip_of(tasks, bad[0])
                return IdentityFailure("row", strip, bad[1], bad[2]), None

        return None, _PanelState(col_after, row_after, col_mag, row_mag)

    @staticmethod
    def _strip_of(tasks: Sequence, row: int) -> int:
        """Map a panel-relative row index to its strip."""
        r0 = 0
        for strip, task in enumerate(tasks):
            r0 += task.c.shape[0]
            if row < r0:
                return strip
        return len(tasks) - 1

    @staticmethod
    def _worst(
        residual: np.ndarray, tol: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Worst (index, residual, tolerance), or None when all pass.

        Written so NaN/inf residuals *fail*: ``|r| <= tol`` is False for
        NaN, and an all-finite pass is required explicitly.
        """
        diff = np.abs(residual)
        if bool(np.all(diff <= tol)):
            return None
        finite = np.isfinite(diff)
        if not bool(np.all(finite)):
            j = int(np.argmin(finite))  # first non-finite entry
        else:
            j = int(np.argmax(diff - tol))
        return j, float(diff[j]), float(tol[j])
