"""Reference matrix multiplications used to validate the engines.

:func:`naive_matmul` is a dependency-free triple loop (Algorithm 1 of the
paper, literally) — slow, but it validates the NumPy-based kernels against
something that shares no code with them. :func:`reference_matmul` is the
NumPy product used for larger comparisons.
"""

from __future__ import annotations

import numpy as np

_NAIVE_LIMIT = 128


def naive_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Algorithm 1: the literal triple loop over scalar MACs.

    Restricted to small operands (every dimension <= 128) because the
    point is independent validation, not throughput.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("operands must be 2-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions disagree: {k} vs {k2}")
    if max(m, n, k) > _NAIVE_LIMIT:
        raise ValueError(
            f"naive_matmul is for validation on sizes <= {_NAIVE_LIMIT}; "
            f"got {m}x{k}x{n}"
        )
    c = np.zeros((m, n), dtype=np.result_type(a, b))
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for kk in range(k):
                acc += a[i, kk] * b[kk, j]
            c[i, j] = acc
    return c


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The NumPy product, used as ground truth at realistic sizes."""
    return a @ b
