"""Pluggable compute backends for the GEMM engines.

The schedule/compute split: CAKE's CB-block schedule (and GOTO's loop
nest) decide what data moves and in what order; a :class:`Backend`
decides how each strip group actually multiplies. Swap the backend
freely — the blocking, traffic counters, and ABFT verification are
backend-invariant by construction.

Built-ins:

* ``numpy`` — per-strip micro-kernel execution, the bit-exact oracle
  every other backend is conformance-tested against;
* ``blas-group`` — one ``np.matmul`` per whole strip group, releasing
  the GIL for large contiguous panel products;
* ``torch`` — whole-group ``torch.matmul`` (CPU by default), registered
  with an availability probe so hosts without torch skip it cleanly.

Select by name (``CakeGemm(machine, backend="blas-group")``), pass a
:class:`Backend` instance, or register your own via
:func:`register_backend` — registration alone enrolls a backend in the
cross-backend conformance suite.
"""

from repro.errors import BackendCapabilityError
from repro.gemm.backends.base import (
    Backend,
    BackendCapabilities,
    dtype_supported,
    execute_group,
    group_eligible,
)
from repro.gemm.backends.blas_group import BlasGroupBackend
from repro.gemm.backends.numpy_backend import NumpyBackend
from repro.gemm.backends.registry import (
    BackendSpec,
    available_backends,
    backend_spec,
    default_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    set_default_backend,
)
from repro.gemm.backends.torch_backend import TorchBackend

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendSpec",
    "BlasGroupBackend",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "backend_spec",
    "default_backend",
    "dtype_supported",
    "execute_group",
    "group_eligible",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "set_default_backend",
]
