"""The per-strip NumPy backend — the bit-exact oracle.

This is the execution path the engines have always had: each core strip
goes through :meth:`~repro.gemm.microkernel.MicroKernel.panel_matmul`,
one call per strip, optionally walking every ``mr x nr`` register tile
(``exact_tiles``). Every other backend is validated against this one:
``deterministic=True`` here *defines* the reference bits.

It stays per-strip on purpose. The strip is the schedule-faithful
granule (one core's slab of a CB block), and keeping the oracle at that
granule is what lets the conformance suite and the ABFT verifier treat
"what the schedule prescribes" and "what the oracle computes" as the
same thing.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.backends.base import Backend, BackendCapabilities
from repro.gemm.microkernel import MicroKernel


class NumpyBackend(Backend):
    """Schedule-faithful per-strip execution through the micro-kernel."""

    name = "numpy"
    capabilities = BackendCapabilities(
        deterministic=True,
        grouped=False,
        dtypes=None,  # any float/complex dtype NumPy accumulates
        reproducible=True,
    )

    def __init__(self, kernel: MicroKernel, *, exact_tiles: bool = False) -> None:
        self.kernel = kernel
        self.exact_tiles = exact_tiles

    def matmul_strip(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        # checked=False: strip shapes are correct by construction (the
        # packing grid and the C views come from the same plan).
        self.kernel.panel_matmul(
            a, b, c, exact_tiles=self.exact_tiles, checked=False
        )
