"""The ``Backend`` protocol: what a pluggable compute engine must provide.

CAKE's CB-block schedule is backend-agnostic — it decides *what* moves
and *when*, never *how* a strip multiplies. This module pins down the
seam: a :class:`Backend` receives the packed operand views the schedule
produced and accumulates ``c += a @ b`` in place, either strip by strip
(:meth:`Backend.matmul_strip`, one call per core slab) or for a whole
strip group at once (:meth:`Backend.matmul_group`, one call per CB
block / GOTO slice — the shape BLAS-class libraries want).

Capability flags (:class:`BackendCapabilities`) tell the rest of the
system what it may assume:

* ``deterministic`` — the backend's bits equal the per-strip NumPy
  oracle's exactly. The verifier's snapshot-free replay restore and the
  bit-identity test battery key off this.
* ``grouped`` — the backend prefers one whole-group call; the executor
  then runs each group as a single operation on the orchestrator thread
  (worker-count invariance is trivial) and the engines provide
  group-contiguous operands.
* ``dtypes`` — accumulation dtypes the backend accepts, ``None`` meaning
  every float/complex dtype NumPy has. Violations surface as structured
  :class:`~repro.errors.BackendCapabilityError` at operand validation,
  not as a ``TypeError`` deep in a kernel.
* ``reproducible`` — the same call on the same data returns the same
  bits run-to-run (true for every library here; a hypothetical
  split-K-atomics GPU kernel would clear it). The ABFT recovery ladder
  relies on it for bit-exact transient healing.

The tolerance contract: a backend that is not ``deterministic`` must
still agree with the oracle within :meth:`Backend.agreement_band` — the
same ``8 * eps * (k + 2)`` shape the ABFT checksum band uses, since both
bound re-associated summation over the reduction depth.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import BackendCapabilityError

#: Multiplier on ``eps * (k + 2)`` for the cross-backend agreement band —
#: the same safety factor the ABFT tolerance model uses
#: (:mod:`repro.gemm.verify`), for the same reason: both bound the
#: rounding drift of re-associated length-``k`` summations.
_BAND_SAFETY = 8.0


@dataclass(frozen=True, slots=True)
class BackendCapabilities:
    """What a backend supports and guarantees.

    ``dtypes`` is a frozenset of NumPy dtype *names* (``"float32"``,
    ``"complex128"``, ...) or ``None`` for "any float/complex dtype".
    """

    deterministic: bool
    grouped: bool
    dtypes: frozenset[str] | None = None
    reproducible: bool = True


def dtype_supported(caps: BackendCapabilities, dtype) -> bool:
    """Whether an accumulation dtype is inside a capability envelope.

    Integer/boolean dtypes are *never* supported — blocked accumulation
    in fixed-width integers wraps silently on overflow, which no backend
    is allowed to offer.
    """
    dt = np.dtype(dtype)
    if not (
        np.issubdtype(dt, np.floating) or np.issubdtype(dt, np.complexfloating)
    ):
        return False
    return caps.dtypes is None or dt.name in caps.dtypes


class Backend(ABC):
    """One way to execute the schedule's strip multiplications.

    Implementations are cheap, per-run objects (engines create one per
    ``multiply()`` call): they may cache scratch buffers keyed by shape,
    because groups execute one at a time on the orchestrator thread.
    Only :meth:`matmul_strip` may be called concurrently (the thread
    executor fans strips out), so it must not touch shared scratch.
    """

    #: Registry name; subclasses override.
    name: str = "?"
    capabilities: BackendCapabilities

    @abstractmethod
    def matmul_strip(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        """Accumulate ``c += a @ b`` for one core's strip, in place.

        May run concurrently with other strips of the same group on
        *disjoint* ``c`` views — implementations must be thread-safe
        (no shared mutable scratch on this path).
        """

    def matmul_group(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        """Accumulate ``c += a @ b`` for a whole strip group, in place.

        ``a`` is the group-contiguous operand (every strip stacked),
        ``c`` the group's full C panel view. Called on the orchestrator
        thread only. The default delegates to :meth:`matmul_strip`;
        ``grouped`` backends override with their one-call path.
        """
        self.matmul_strip(a, b, c)

    # -- capability queries ---------------------------------------------------

    def supports_dtype(self, dtype) -> bool:
        """Whether this backend accepts ``dtype`` accumulation."""
        return dtype_supported(self.capabilities, dtype)

    def require_dtype(self, dtype) -> np.dtype:
        """Validate an accumulation dtype, raising the structured error."""
        dt = np.dtype(dtype)
        if not self.supports_dtype(dt):
            raise BackendCapabilityError(
                self.name,
                f"does not support {dt} accumulation",
                dtype=dt,
            )
        return dt

    def agreement_band(self, dtype, k: int) -> float:
        """Relative tolerance vs the NumPy oracle for depth-``k`` products.

        Zero for deterministic backends (agreement is bit-exact); the
        ABFT-shaped ``8 * eps * (k + 2)`` band otherwise. The conformance
        suite asserts every backend honors its own declaration.
        """
        if self.capabilities.deterministic:
            return 0.0
        return _BAND_SAFETY * float(np.finfo(np.dtype(dtype)).eps) * (k + 2)


def group_eligible(backend: Backend, group) -> bool:
    """Whether a strip group can run as one whole-group backend call.

    Requires a ``grouped`` backend plus the group-contiguous views the
    engines attach (``operand_a`` stacking every strip's A, ``panel``
    stacking every strip's C). Groups lacking them fall back to the
    per-strip path — correctness never depends on eligibility.
    """
    return (
        backend.capabilities.grouped
        and getattr(group, "panel", None) is not None
        and getattr(group, "operand_a", None) is not None
        and len(group.tasks) > 0
    )


def execute_group(backend: Backend, group, faults=None) -> None:
    """Run one strip group through ``backend``, inline, faults applied.

    The single execution seam shared by the serial executor path and the
    ABFT recovery ladder's recompute rung — both must issue *exactly*
    the calls the clean path would, so a reproducible backend recomputes
    the same bits. Fault injection lands per strip after the numeric
    update, keyed ``(group.index, strip)``, identically in group mode
    (the strip views alias the panel) and strip mode.
    """
    if group_eligible(backend, group):
        backend.matmul_group(group.operand_a, group.tasks[0].b, group.panel)
        if faults is not None:
            for strip, task in enumerate(group.tasks):
                faults.corrupt(group.index, strip, task.c)
        return
    for strip, task in enumerate(group.tasks):
        backend.matmul_strip(task.a, task.b, task.c)
        if faults is not None:
            faults.corrupt(group.index, strip, task.c)
