"""The whole-group BLAS backend: one ``np.matmul`` per strip group.

The per-strip oracle dispatches one small matmul per core slab from
Python, so on a GIL-bound host the thread executor's speedup saturates
near 1.0x: the kernels release the GIL, but the per-strip Python call
overhead and barrier bookkeeping do not shrink with more workers. This
backend flips the granularity: each strip group (one CAKE CB block, one
GOTO ``(nc, kc)`` slice) becomes a *single* ``np.matmul`` over the
group-contiguous A operand and the full C panel — the shape BLAS
libraries are optimized for. One Python call per group, the GIL released
for the whole contiguous panel product, and the underlying BLAS free to
use its own blocking (and threads, where NumPy links a threaded BLAS).

Numerically the group product computes the same dot products over the
same reduction depth as the per-strip walk; only the library's internal
blocking may re-associate them. Hence ``deterministic=False`` — results
are tolerance-banded against the oracle (``agreement_band``), not
bit-compared — while ``reproducible=True`` holds: the same call on the
same data returns the same bits, which the ABFT recovery ladder uses to
heal transient corruption bit-exactly.

The product lands in a shape-keyed scratch buffer and is added into the
C panel in place (``np.add(c, scratch, out=c)``), so the per-group cost
is two GIL-released NumPy calls and zero allocations at steady state.
Groups execute one at a time on the orchestrator thread, so the scratch
cache needs no locking; the per-strip fallback path (groups without
group-contiguous views) deliberately avoids the cache.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.backends.base import Backend, BackendCapabilities


class BlasGroupBackend(Backend):
    """One whole-panel ``np.matmul`` per strip group."""

    name = "blas-group"
    capabilities = BackendCapabilities(
        deterministic=False,
        grouped=True,
        dtypes=None,  # np.matmul covers every float/complex dtype
        reproducible=True,
    )

    def __init__(self) -> None:
        # Shape-keyed product scratch; orchestrator-thread only.
        self._scratch: dict[tuple, np.ndarray] = {}

    def matmul_group(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        key = (c.shape, c.dtype.str)
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(c.shape, dtype=c.dtype)
            self._scratch[key] = buf
        np.matmul(a, b, out=buf)
        np.add(c, buf, out=c)

    def matmul_strip(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        # Fallback for groups without group-contiguous views; allocates
        # its own temporary so concurrent strips never share scratch.
        c += a @ b
