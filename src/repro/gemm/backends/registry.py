"""Backend registration and selection.

The registry maps backend *names* — what ``CakeGemm(backend="...")``,
the bench CLI and the conformance suite speak — to
:class:`BackendSpec` records bundling the capability flags, an
availability probe, and a factory. Selection is one call::

    spec = resolve_backend("blas-group")
    backend = spec.create(kernel=plan.kernel)

A new backend participates in *everything* (engine selection, the
cross-backend conformance battery, the differential hypothesis sweep,
the bench matrix) by registering here — the test suite parametrizes
over :func:`registered_backends` and skips what
:meth:`BackendSpec.is_available` rules out, so no test file needs to
know the backend exists.

Unknown names and unavailable backends surface as structured
:class:`~repro.errors.BackendCapabilityError` (never a ``KeyError`` or
an ``ImportError`` from deep inside an engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BackendCapabilityError
from repro.gemm.backends.base import (
    Backend,
    BackendCapabilities,
    dtype_supported,
)
from repro.gemm.backends.blas_group import BlasGroupBackend
from repro.gemm.backends.numpy_backend import NumpyBackend
from repro.gemm.backends.torch_backend import TorchBackend
from repro.gemm.microkernel import MicroKernel


@dataclass(frozen=True)
class BackendSpec:
    """One selectable backend: capabilities, availability, factory.

    ``factory`` receives the plan's micro-kernel and the engine's
    ``exact_tiles`` flag as keywords; backends that do not execute
    through the kernel simply ignore them.
    """

    name: str
    capabilities: BackendCapabilities
    factory: Callable[..., Backend]
    available: Callable[[], bool] = field(default=lambda: True)
    description: str = ""
    #: Human hint for what an unavailable backend needs (``"torch"``).
    requires: str | None = None

    def is_available(self) -> bool:
        """Whether this backend can run on this host right now."""
        try:
            return bool(self.available())
        except Exception:  # pragma: no cover - defensive probe guard
            return False

    def supports_dtype(self, dtype) -> bool:
        """Capability check without instantiating the backend."""
        return dtype_supported(self.capabilities, dtype)

    def create(
        self, *, kernel: MicroKernel, exact_tiles: bool = False
    ) -> Backend:
        """Instantiate the backend for one run."""
        return self.factory(kernel=kernel, exact_tiles=exact_tiles)


_REGISTRY: dict[str, BackendSpec] = {}
_DEFAULT_BACKEND = "numpy"


def default_backend() -> str:
    """The process-wide default backend name (what ``backend=None`` means)."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> str:
    """Change what ``backend=None`` resolves to, returning the old default.

    This is how a CLI flag (``cake-bench --backend blas-group``) threads
    backend selection through code that constructs engines without an
    explicit ``backend`` argument. The name must be registered and
    available; a structured error is raised otherwise.
    """
    global _DEFAULT_BACKEND
    spec = backend_spec(name)
    if not spec.is_available():
        needs = f" (requires {spec.requires})" if spec.requires else ""
        raise BackendCapabilityError(
            spec.name, f"not available on this host{needs}"
        )
    old = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return old


def register_backend(spec: BackendSpec, *, replace: bool = False) -> BackendSpec:
    """Add a backend to the registry (idempotent with ``replace``).

    Registering is all a new backend must do to be covered by the
    conformance suite and selectable by name everywhere.
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"backend {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def registered_backends() -> tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Registered backends whose availability probe passes on this host."""
    return tuple(
        name for name, spec in _REGISTRY.items() if spec.is_available()
    )


def backend_spec(name: str) -> BackendSpec:
    """Look a backend up by name (structured error on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendCapabilityError(
            name,
            f"unknown backend; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}",
        ) from None


def resolve_backend(backend: "str | Backend | BackendSpec | None") -> BackendSpec:
    """Normalize an engine's ``backend`` parameter to a usable spec.

    ``None`` means the process default (the oracle ``"numpy"`` unless
    :func:`set_default_backend` changed it); a name is looked up and its
    availability enforced (selecting ``"torch"`` without torch installed
    fails *here*, at engine construction, with a structured error); a
    :class:`Backend` instance is wrapped so user-built backends slot in
    without registration.
    """
    if backend is None:
        return _REGISTRY[_DEFAULT_BACKEND]
    if isinstance(backend, BackendSpec):
        spec = backend
    elif isinstance(backend, Backend):
        instance = backend
        return BackendSpec(
            name=instance.name,
            capabilities=instance.capabilities,
            factory=lambda **_kw: instance,
            description="user-provided backend instance",
        )
    elif isinstance(backend, str):
        spec = backend_spec(backend)
    else:
        raise TypeError(
            f"backend must be a name, Backend instance, or BackendSpec; "
            f"got {type(backend).__name__}"
        )
    if not spec.is_available():
        needs = f" (requires {spec.requires})" if spec.requires else ""
        raise BackendCapabilityError(
            spec.name, f"not available on this host{needs}"
        )
    return spec


# -- built-in backends --------------------------------------------------------

register_backend(
    BackendSpec(
        name="numpy",
        capabilities=NumpyBackend.capabilities,
        factory=lambda *, kernel, exact_tiles=False: NumpyBackend(
            kernel, exact_tiles=exact_tiles
        ),
        description="per-strip micro-kernel execution — the bit-exact oracle",
    )
)
register_backend(
    BackendSpec(
        name="blas-group",
        capabilities=BlasGroupBackend.capabilities,
        factory=lambda *, kernel, exact_tiles=False: BlasGroupBackend(),
        description="one np.matmul per strip group (GIL-free panel products)",
    )
)
register_backend(
    BackendSpec(
        name="torch",
        capabilities=TorchBackend.capabilities,
        factory=lambda *, kernel, exact_tiles=False: TorchBackend(),
        available=TorchBackend.available,
        description="whole-group torch.matmul (CPU default, device-capable)",
        requires="torch",
    )
)
