"""Optional PyTorch backend (CPU by default, any torch device on request).

Torch is *not* a dependency of this package: the backend registers with
an availability probe (``TorchBackend.available()``, a ``find_spec``
check that never imports torch) and everything downstream — engine
selection, the conformance suite, the CI matrix — skips cleanly when it
is absent. Constructing the backend without torch installed raises a
structured :class:`~repro.errors.BackendCapabilityError` naming the
missing requirement.

Execution wraps the packed NumPy views zero-copy with
``torch.from_numpy`` (packed blocks and group operands are contiguous by
construction), multiplies on the configured device, and accumulates the
result back into the C panel view with one in-place NumPy add — C stays
a plain NumPy array throughout, so GemmRun consumers never see a tensor.
On non-CPU devices the operands are staged through device memory per
group; that transfer is the price of the device's throughput, exactly
the traffic/compute trade the paper's roofline would model for an
accelerator tier.

Capabilities: ``float32``/``float64`` only (torch's CPU GEMM does not
cover NumPy's extended-precision or — uniformly across versions —
complex dtypes; a float16 or complex request becomes a structured
capability error instead of a deep torch ``RuntimeError``), grouped
(torch wants big GEMMs), non-deterministic vs the oracle
(tolerance-banded agreement), reproducible run-to-run on a fixed device.
"""

from __future__ import annotations

from importlib import util as _importlib_util

import numpy as np

from repro.errors import BackendCapabilityError
from repro.gemm.backends.base import Backend, BackendCapabilities


class TorchBackend(Backend):
    """Whole-group matmul through ``torch`` (CPU default, device-capable)."""

    name = "torch"
    capabilities = BackendCapabilities(
        deterministic=False,
        grouped=True,
        dtypes=frozenset({"float32", "float64"}),
        reproducible=True,
    )

    @staticmethod
    def available() -> bool:
        """Whether torch is importable — probed without importing it."""
        try:
            return _importlib_util.find_spec("torch") is not None
        except (ImportError, ValueError):  # pragma: no cover - broken metadata
            return False

    def __init__(self, device: str = "cpu") -> None:
        if not self.available():
            raise BackendCapabilityError(
                self.name, "requires torch, which is not installed"
            )
        import torch

        self._torch = torch
        self._device = torch.device(device)

    def _product(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        torch = self._torch
        ta = torch.from_numpy(np.ascontiguousarray(a))
        tb = torch.from_numpy(np.ascontiguousarray(b))
        if self._device.type != "cpu":  # pragma: no cover - device-gated
            ta = ta.to(self._device)
            tb = tb.to(self._device)
        out = torch.matmul(ta, tb)
        if self._device.type != "cpu":  # pragma: no cover - device-gated
            out = out.cpu()
        return out.numpy()

    def matmul_group(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        np.add(c, self._product(a, b), out=c)

    def matmul_strip(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        np.add(c, self._product(a, b), out=c)
