"""Execution plans: from (machine, problem) to tiling parameters.

This is where CAKE's "no design search" claim lives. A
:class:`CakePlan` is derived *analytically*:

1. ``alpha`` from available DRAM bandwidth via ``alpha >= 1/(R-1)``
   (Section 3.2), evaluated jointly with the cache sizing — the
   bandwidth ratio ``R`` depends (through the tile depth ``kc``) on the
   block size the cache admits, so the smallest feasible alpha on a
   short candidate grid is taken (see ``from_problem``);
2. ``mc = kc`` from the LRU sizing rule ``C + 2(A+B) <= S`` (Section 4.3);
3. block extents ``p*mc x kc x alpha*p*mc`` (Section 4.2);
4. the K-first schedule of Algorithm 2.

A :class:`GotoPlan` fills its caches instead (Section 4.1): square
L2-resident A blocks and an LLC-filling B panel, with no bandwidth term —
which is exactly why its DRAM demand grows with core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.cb_block import CBBlock
from repro.core.cpu_model import CakeCpuParams, GotoCpuParams
from repro.core.lru_sizing import solve_cake_mc, solve_goto_tiles
from repro.errors import ConfigurationError
from repro.gemm.microkernel import MicroKernel
from repro.machines.spec import MachineSpec
from repro.schedule.kfirst import kfirst_schedule
from repro.schedule.space import BlockCoord, BlockGrid, ComputationSpace
from repro.util import require_positive

#: Hard cap on the aspect factor: past this, blocks are so wide that the
#: cache-sizing rule forces degenerate mc, and the machine is simply too
#: bandwidth-starved for the problem.
MAX_ALPHA = 64.0

#: Explicit bound on the process-wide plan memos. Long-lived servers see
#: an unbounded stream of shape classes; the memo must not grow planner
#: memory without limit, so both memos evict LRU past this many plans
#: (re-deriving an evicted plan is pure math, microseconds).
PLAN_MEMO_MAXSIZE = 1024

#: Candidate aspect factors for the bandwidth-matching scan.
ALPHA_GRID: tuple[float, ...] = (
    1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0,
    10.0, 12.0, 16.0, 24.0, 32.0, 48.0, MAX_ALPHA,
)


def _resolve_cores(machine: MachineSpec, cores: int | None) -> int:
    cores = machine.cores if cores is None else cores
    require_positive("cores", cores)
    if cores > machine.cores:
        raise ConfigurationError(
            f"requested {cores} cores but {machine.name} has {machine.cores}"
        )
    return cores


def _balanced_extent(total: int, nominal: int) -> int:
    """Even block extent: same block count as ``nominal``, sizes balanced.

    ``ceil(total / ceil(total / nominal))`` — never exceeds the
    cache-derived nominal, and leaves a remainder of at most the number
    of blocks (instead of an arbitrarily small ragged block).
    """
    from repro.util import ceil_div

    blocks = ceil_div(total, min(nominal, total))
    return ceil_div(total, blocks)


def _external_elements_per_cycle(machine: MachineSpec, kc: int) -> float:
    """Available DRAM bandwidth in *operand* elements per model cycle.

    Physical traffic exceeds counted operand traffic by the machine's
    ``external_traffic_factor``, so the bandwidth available to operands
    is the nominal rate divided by that factor.
    """
    bytes_per_second = (
        machine.dram_bytes_per_second / machine.external_traffic_factor
    )
    elements_per_second = bytes_per_second / machine.element_bytes
    return elements_per_second / machine.tile_ops_per_second(kc)


@dataclass(frozen=True, slots=True)
class PlanOverride:
    """Targeted deviations from the analytic plan (the autotuner's seam).

    Every field defaults to "keep the analytic value"; the autotuner
    (:mod:`repro.tune`) searches over the fields that are safe to vary
    and persists the winner. The seam is deliberately narrow:

    ``alpha``, ``mc``, ``nc``
        Re-shape the CB block (CAKE) or the cache tiles (GOTO) along M
        and N only. M/N re-blocking never changes any C element's
        reduction order, so these are bit-safe by construction.
    ``kc``
        Allowed but **bit-hazardous**: re-blocking K changes the
        floating-point accumulation grouping. The tuner pins ``kc`` to
        the analytic value; an explicit override here is for
        experiments, and tuner validation rejects any candidate whose
        product drifts from the analytic plan's.
    ``strips``
        Host execution granularity: split each block's M extent into
        this many strip tasks instead of one per *modelled* core.
        Purely an execution knob — the schedule walk still prices the
        plan at the modelled core count, so counters and modelled time
        are unchanged. On hosts with fewer real cores than the model,
        coarser strips trade scheduling overhead for larger kernel
        calls.
    ``workers``
        Host threads for the numeric executor; applies only when the
        engine was not given an explicit ``workers`` argument (an
        explicit request, e.g. a serve degradation rung, always wins).
    ``schedule``
        Block-order variant name (:mod:`repro.schedule.variants`). Only
        reduction-complete orders (``k-first``, ``naive``) are legal
        for CAKE execution — orders that abandon partial C surfaces
        violate the engine's no-spill contract (the MOMMS loop-order
        discussion is why those variants are excluded, not searched).
    """

    alpha: float | None = None
    mc: int | None = None
    kc: int | None = None
    nc: int | None = None
    strips: int | None = None
    workers: int | None = None
    schedule: str | None = None

    def __post_init__(self) -> None:
        if self.alpha is not None and not 0.0 < self.alpha <= MAX_ALPHA:
            raise ConfigurationError(
                f"override alpha must be in (0, {MAX_ALPHA}], got {self.alpha}"
            )
        for name in ("mc", "kc", "nc", "strips", "workers"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ConfigurationError(
                    f"override {name} must be > 0, got {value!r}"
                )
        if self.schedule is not None and self.schedule not in (
            "k-first",
            "naive",
        ):
            raise ConfigurationError(
                f"override schedule must be a reduction-complete variant "
                f"('k-first' or 'naive'), got {self.schedule!r}"
            )

    def as_dict(self) -> dict:
        """JSON-ready form (None fields included, for the plan cache)."""
        return {
            "alpha": self.alpha,
            "mc": self.mc,
            "kc": self.kc,
            "nc": self.nc,
            "strips": self.strips,
            "workers": self.workers,
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PlanOverride":
        """Inverse of :meth:`as_dict` (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}
        extra = set(doc) - known
        if extra:
            raise ConfigurationError(
                f"unknown PlanOverride fields {sorted(extra)}"
            )
        return cls(**doc)


@dataclass(frozen=True, slots=True)
class CakePlan:
    """Analytically-derived CAKE tiling for one (machine, problem) pair."""

    machine: MachineSpec
    space: ComputationSpace
    cores: int
    alpha: float
    mc: int
    kc: int

    @classmethod
    def from_problem(
        cls,
        machine: MachineSpec,
        space: ComputationSpace,
        *,
        cores: int | None = None,
        alpha: float | None = None,
        override: "PlanOverride | None" = None,
    ) -> "CakePlan":
        """Derive the plan; ``alpha=None`` selects it from DRAM bandwidth.

        An ``override`` (the autotuner's seam) replaces individual
        fields of the analytically-derived plan *after* derivation:
        ``alpha`` redirects the bandwidth scan, ``mc``/``kc`` replace
        the LRU-solved extents. Execution-only override fields
        (``strips``, ``workers``, ``schedule``) do not affect the plan
        itself and are applied by the engines.

        Alpha selection applies the Section 3.2 feasibility condition
        ``BW_avail >= BW_min(alpha) = ((alpha+1)/alpha) * mr * nr`` with
        both sides evaluated *consistently*: raising alpha lowers the
        requirement but (through the LRU sizing rule) may shrink
        ``mc = kc``, which shortens the model cycle and lowers the
        per-cycle supply too. The plan takes the smallest alpha on a
        short candidate grid that satisfies the condition; when no alpha
        is feasible (hopelessly starved DRAM), it takes the alpha with
        the most bandwidth headroom — still a closed evaluation of
        Section 3's equations, not a performance search.

        Plans are memoized on ``(machine, space, cores, alpha)``: the
        derivation is pure and every input is frozen/hashable, and the
        sweeps re-derive the same plan for every block of a problem —
        once through ``plan_for`` and again through ``analyze`` — so
        repeated calls return the *same* :class:`CakePlan` instance.
        """
        return _cake_plan(
            machine, space, _resolve_cores(machine, cores), alpha, override
        )

    @property
    def m_block(self) -> int:
        """CB block extent along M: ``p * mc``, balanced to the problem.

        The cache-derived extent fixes how many blocks M needs; the
        actual extent then splits M evenly across those blocks, so a
        2000-row problem against a nominal 1920-row block becomes two
        balanced 1000-row blocks instead of 1920 + 80 — every block keeps
        all ``p`` cores evenly loaded. This is the "analytically shaped
        to the problem" behaviour that lets CAKE avoid GOTO's
        fixed-strip load imbalance on small and skewed matrices.
        """
        return _balanced_extent(self.space.m, self.cores * self.mc)

    @property
    def n_block(self) -> int:
        """CB block extent along N: ``alpha * p * mc``, balanced likewise."""
        nominal = max(int(self.alpha * self.cores * self.mc), self.machine.nr)
        return _balanced_extent(self.space.n, nominal)

    @property
    def block(self) -> CBBlock:
        """The nominal CB block."""
        return CBBlock(m=self.m_block, n=self.n_block, k=self.kc)

    @property
    def residency_elements(self) -> int:
        """Local-memory element budget the Section 4.3 rule guarantees.

        ``C + 2(A + B)`` of the *cache-sized* nominal block
        (``p*mc x alpha*p*mc x kc``) — the LRU sizing rule solved ``mc``
        so exactly this much fits the LLC. When the problem's balanced
        blocks are smaller than nominal, the slack retains surfaces of
        earlier blocks; the engine's counters model that retention via
        :class:`repro.schedule.reuse.SurfaceResidency`.
        """
        mm = self.cores * self.mc
        nn = max(int(self.alpha * self.cores * self.mc), self.machine.nr)
        kk = self.kc
        return mm * nn + 2 * (mm * kk + kk * nn)

    @property
    def kernel(self) -> MicroKernel:
        """The register-tile micro-kernel this plan drives."""
        return MicroKernel(mr=self.machine.mr, nr=self.machine.nr, kc=self.kc)

    @property
    def cpu_params(self) -> CakeCpuParams:
        """The plan as Section 4.2 parameters (for the equation layer)."""
        return CakeCpuParams(
            p=self.cores,
            mc=self.mc,
            kc=self.kc,
            alpha=self.alpha,
            mr=self.machine.mr,
            nr=self.machine.nr,
        )

    def grid(self) -> BlockGrid:
        """Partition the problem space with this plan's CB block."""
        return BlockGrid(self.space, self.block)

    def schedule(self) -> list[BlockCoord]:
        """The K-first block order of Algorithm 2."""
        return kfirst_schedule(self.grid())


@lru_cache(maxsize=PLAN_MEMO_MAXSIZE)
def _cake_plan(
    machine: MachineSpec,
    space: ComputationSpace,
    cores: int,
    alpha: float | None,
    override: "PlanOverride | None" = None,
) -> CakePlan:
    """The memoized body of :meth:`CakePlan.from_problem` (cores resolved)."""
    if override is not None:
        if override.alpha is not None:
            alpha = override.alpha
        base = _cake_plan(machine, space, cores, alpha)
        return CakePlan(
            machine,
            space,
            cores,
            base.alpha,
            base.mc if override.mc is None else override.mc,
            base.kc if override.kc is None else override.kc,
        )
    if alpha is not None:
        mc = solve_cake_mc(
            p=cores,
            alpha=alpha,
            llc_elements=machine.llc_elements,
            l2_elements=machine.l2_elements,
            mr=machine.mr,
            nr=machine.nr,
        )
        return CakePlan(machine, space, cores, alpha, mc, mc)

    best: tuple[float, float, int] | None = None  # (headroom, alpha, mc)
    for candidate in ALPHA_GRID:
        try:
            mc = solve_cake_mc(
                p=cores,
                alpha=candidate,
                llc_elements=machine.llc_elements,
                l2_elements=machine.l2_elements,
                mr=machine.mr,
                nr=machine.nr,
            )
        except ConfigurationError:
            break  # wider blocks can only be less feasible
        available = _external_elements_per_cycle(machine, mc)
        required = (candidate + 1.0) / candidate * machine.mr * machine.nr
        headroom = available / required
        if headroom >= 1.0:
            return CakePlan(machine, space, cores, candidate, mc, mc)
        if best is None or headroom > best[0]:
            best = (headroom, candidate, mc)
    if best is None:
        raise ConfigurationError(
            f"{machine.name}: no feasible CB block for {cores} cores"
        )
    return CakePlan(machine, space, cores, best[1], best[2], best[2])


@dataclass(frozen=True, slots=True)
class GotoPlan:
    """Cache-filling GOTO tiling (Section 4.1) for the baseline engine."""

    machine: MachineSpec
    space: ComputationSpace
    cores: int
    mc: int
    kc: int
    nc: int

    @classmethod
    def from_problem(
        cls,
        machine: MachineSpec,
        space: ComputationSpace,
        *,
        cores: int | None = None,
        override: "PlanOverride | None" = None,
    ) -> "GotoPlan":
        """Derive GOTO tiles from the machine's cache sizes alone.

        An ``override`` replaces ``mc``/``kc``/``nc`` after derivation
        (``alpha`` has no meaning for GOTO and is ignored; execution-only
        fields are applied by the engine). Memoized on
        ``(machine, space, cores, override)`` like
        :meth:`CakePlan.from_problem`.
        """
        return _goto_plan(machine, space, _resolve_cores(machine, cores), override)

    @property
    def kernel(self) -> MicroKernel:
        """The register-tile micro-kernel this plan drives."""
        return MicroKernel(mr=self.machine.mr, nr=self.machine.nr, kc=self.kc)

    @property
    def cpu_params(self) -> GotoCpuParams:
        """The plan as Section 4.1 parameters (for the equation layer)."""
        return GotoCpuParams(
            p=self.cores,
            mc=self.mc,
            kc=self.kc,
            nc=self.nc,
            mr=self.machine.mr,
            nr=self.machine.nr,
        )


@lru_cache(maxsize=PLAN_MEMO_MAXSIZE)
def _goto_plan(
    machine: MachineSpec,
    space: ComputationSpace,
    cores: int,
    override: "PlanOverride | None" = None,
) -> GotoPlan:
    """The memoized body of :meth:`GotoPlan.from_problem` (cores resolved)."""
    if override is not None:
        base = _goto_plan(machine, space, cores)
        return GotoPlan(
            machine,
            space,
            cores,
            mc=base.mc if override.mc is None else override.mc,
            kc=base.kc if override.kc is None else override.kc,
            nc=base.nc if override.nc is None else override.nc,
        )
    params = solve_goto_tiles(
        p=cores,
        llc_elements=machine.llc_elements,
        l2_elements=machine.l2_elements,
        mr=machine.mr,
        nr=machine.nr,
    )
    return GotoPlan(
        machine, space, cores, mc=params.mc, kc=params.kc, nc=params.nc
    )


def plan_cache_info() -> dict[str, object]:
    """Hit/miss/size counters for both plan memos (for audits and tests)."""
    return {
        "maxsize": PLAN_MEMO_MAXSIZE,
        "cake": _cake_plan.cache_info()._asdict(),
        "goto": _goto_plan.cache_info()._asdict(),
    }


def clear_plan_memos() -> None:
    """Drop every memoized plan (tests; never needed for correctness)."""
    _cake_plan.cache_clear()
    _goto_plan.cache_clear()
